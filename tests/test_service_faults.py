"""Seeded fault-injection suite for the serving layer's robustness tier.

Every scenario here drives :class:`~repro.service.QueryService` through a
pinned :class:`~repro.service.FaultPlan`, so the chaos is reproducible:
worker kills recover bit-identically through the journal, deadline misses
degrade within their budget-derived (ε, δ) contract, and exhausted retry
budgets surface as typed, provenance-carrying errors.
"""

from __future__ import annotations

import os
import pickle
import signal
import warnings

import pytest

from repro.core.solver import PHomSolver
from repro.exceptions import (
    DeadlineExceededError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.graphs.classes import GraphClass
from repro.service import (
    Fault,
    FaultPlan,
    QueryService,
    ServiceRequest,
    epsilon_for_budget,
)
from repro.service.jsonl import RETRYABLE_ERROR_CLASSES, failure_record
from repro.service.worker import FAULT_KILL_EXIT_CODE
from repro.workloads.generators import (
    attach_random_probabilities,
    intractable_workload,
    make_instance,
    query_traffic_trace,
)


def build_instance(seed: int):
    graph = make_instance(GraphClass.UNION_DOWNWARD_TREE, True, 16, seed)
    return attach_random_probabilities(graph, seed)


def trace_queries(seed: int, count: int = 8):
    trace = query_traffic_trace(
        count, 5, skew=1.2, query_class=GraphClass.ONE_WAY_PATH, rng=seed
    )
    return trace.queries()


def exact_answers(queries, instance):
    solver = PHomSolver()
    return [str(solver.solve(query, instance).probability) for query in queries]


class TestFaultPlan:
    def test_invalid_faults_are_rejected(self):
        with pytest.raises(ServiceError):
            Fault(kind="segfault")
        with pytest.raises(ServiceError):
            Fault(kind="kill", after_messages=-1)
        with pytest.raises(ServiceError):
            Fault(kind="delay", seconds=-0.5)
        with pytest.raises(ServiceError):
            Fault(kind="delay")  # a delay needs seconds > 0

    def test_targeting_and_incarnation_arming(self):
        everyone = Fault(kind="kill")
        only_one = Fault(kind="drop", worker=1)
        repeating = Fault(kind="corrupt", worker=0, repeat=True)
        plan = FaultPlan(faults=(everyone, only_one, repeating), seed=3)
        assert plan.targets(0) == (everyone, repeating)
        assert plan.targets(1) == (everyone, only_one)
        # Only repeat=True faults re-arm on a respawned incarnation.
        assert plan.targets(0, incarnation=1) == (repeating,)
        assert plan.targets(1, incarnation=2) == ()

    def test_injector_fires_after_the_armed_message_count(self):
        plan = FaultPlan(faults=(Fault(kind="kill", after_messages=2),))
        injector = plan.for_worker(0)
        assert injector.on_message() == []
        assert injector.on_message() == []
        fired = injector.on_message()
        assert [fault.kind for fault in fired] == ["kill"]
        # A fault fires once per arming.
        assert injector.on_message() == []

    def test_solver_error_faults_are_consumed_per_request(self):
        plan = FaultPlan(faults=(Fault(kind="solver-error"),))
        injector = plan.for_worker(0)
        assert injector.on_message() == []  # routed internally, not returned
        assert injector.take_solver_error()
        assert not injector.take_solver_error()

    def test_corrupt_bytes_are_seed_deterministic(self):
        plan = FaultPlan(faults=(Fault(kind="corrupt"),), seed=11)
        first = plan.for_worker(2, 1).corrupt_bytes()
        second = plan.for_worker(2, 1).corrupt_bytes()
        other = plan.for_worker(3, 1).corrupt_bytes()
        assert first == second
        assert first != other

    def test_epsilon_ladder(self):
        assert epsilon_for_budget(10) == 0.5
        assert epsilon_for_budget(50) == 0.25
        assert epsilon_for_budget(100) == 0.25
        assert epsilon_for_budget(500) == 0.1
        assert epsilon_for_budget(5000) == 0.05
        assert epsilon_for_budget(None, floor=0.3) == 0.3
        assert epsilon_for_budget(10, floor=0.6) == 0.6


class TestDeadlinePolicies:
    """Inline-mode deadline semantics, driven by injected delays."""

    def _delayed_service(self, **kwargs):
        plan = FaultPlan(
            faults=(Fault(kind="delay", seconds=0.08, after_messages=1, repeat=True),),
            seed=5,
        )
        return QueryService(num_workers=0, fault_plan=plan, seed=5, **kwargs)

    def test_error_policy_raises_typed_deadline_error(self):
        instance = build_instance(21)
        with self._delayed_service() as service:
            instance_id = service.register_instance(instance)
            query = trace_queries(21, 1)[0]
            with pytest.raises(DeadlineExceededError):
                service.submit(query, instance_id, deadline_ms=20.0)
            assert service.stats().deadline_hits == 1

    def test_error_policy_returns_typed_retryable_result(self):
        instance = build_instance(22)
        with self._delayed_service() as service:
            instance_id = service.register_instance(instance)
            query = trace_queries(22, 1)[0]
            (outcome,) = service.submit_many(
                [ServiceRequest(query, instance_id, deadline_ms=20.0)],
                on_error="return",
            )
            assert outcome.timed_out
            assert outcome.error_class == "DeadlineExceededError"
            assert outcome.retryable

    def test_partial_policy_keeps_the_healthy_answers(self):
        instance = build_instance(23)
        # The delay arms after 2 messages (register + first solve), so the
        # first deadline request answers in time and the second times out.
        plan = FaultPlan(
            faults=(Fault(kind="delay", seconds=0.08, after_messages=2),), seed=7
        )
        with QueryService(num_workers=0, fault_plan=plan) as service:
            instance_id = service.register_instance(instance)
            fast, slow = trace_queries(23, 2)
            results = service.submit_many(
                [
                    ServiceRequest(
                        fast, instance_id, deadline_ms=5000.0, on_deadline="partial"
                    ),
                    ServiceRequest(
                        slow, instance_id, deadline_ms=20.0, on_deadline="partial"
                    ),
                ]
            )  # on_error="raise": partial timeouts must not raise
            assert results[0].result is not None and not results[0].timed_out
            assert results[1].result is None and results[1].timed_out
            assert results[1].error_class == "DeadlineExceededError"

    def test_degrade_policy_meets_its_epsilon_contract(self):
        workload = intractable_workload(8, rng=31)
        with warnings.catch_warnings():
            # The ground truth is exponential by design; the fallback
            # warning is expected here, not actionable.
            warnings.simplefilter("ignore")
            exact = float(
                PHomSolver(allow_brute_force=True)
                .solve(workload.query, workload.instance, precision="exact")
                .probability
            )
        deadline_ms = 50.0
        epsilon = epsilon_for_budget(deadline_ms)
        assert epsilon == 0.25
        with self._delayed_service() as service:
            instance_id = service.register_instance(
                pickle.loads(pickle.dumps(workload.instance)), "hard"
            )
            outcome = service.submit(
                workload.query,
                instance_id,
                deadline_ms=deadline_ms,
                on_deadline="degrade",
                seed=1234,
            )
            stats = service.stats()
        assert outcome.degraded
        assert outcome.worker == -1  # answered by the coordinator's tier
        assert "degraded=True" in outcome.result.notes
        assert "original_method=auto" in outcome.result.notes
        assert f"epsilon={epsilon:g}" in outcome.result.notes
        estimate = float(outcome.result.probability)
        assert exact > 0
        assert abs(estimate - exact) / exact <= epsilon
        assert stats.deadline_hits == 1 and stats.degraded == 1

    def test_degraded_answers_are_seed_reproducible(self):
        workload = intractable_workload(8, rng=33)
        estimates = []
        for _ in range(2):
            with self._delayed_service() as service:
                instance_id = service.register_instance(
                    pickle.loads(pickle.dumps(workload.instance)), "hard"
                )
                outcome = service.submit(
                    workload.query,
                    instance_id,
                    deadline_ms=40.0,
                    on_deadline="degrade",
                    seed=99,
                )
                estimates.append(float(outcome.result.probability))
        assert estimates[0] == estimates[1]

    def test_injected_solver_fault_is_a_per_request_error(self):
        plan = FaultPlan(faults=(Fault(kind="solver-error", after_messages=0),))
        instance = build_instance(24)
        with QueryService(num_workers=0, fault_plan=plan) as service:
            instance_id = service.register_instance(instance)
            query = trace_queries(24, 1)[0]
            (outcome,) = service.submit_many(
                [(query, instance_id)], on_error="return"
            )
            assert outcome.error is not None
            assert "injected solver fault" in outcome.error
            assert not outcome.retryable  # deterministic, not transient
            # The fault is consumed: the retried line then succeeds.
            again = service.submit(query, instance_id)
            assert again.result is not None


class TestPoolRecovery:
    """Multi-process chaos: kills, drops, corruption, retry exhaustion."""

    def _chaos_service(self, plan, **kwargs):
        kwargs.setdefault("num_workers", 2)
        kwargs.setdefault("seed", 19)
        kwargs.setdefault("backoff_base", 0.01)
        return QueryService(fault_plan=plan, **kwargs)

    def test_kill_and_recover_is_bit_identical(self):
        instance = build_instance(41)
        queries = trace_queries(41, 8)
        expected = exact_answers(queries, instance)
        plan = FaultPlan(faults=(Fault(kind="kill", after_messages=2),), seed=19)
        with self._chaos_service(plan) as service:
            instance_id = service.register_instance(instance)
            results = [service.submit(query, instance_id) for query in queries]
            stats = service.stats()
            log = list(service.restart_log)
        assert [str(r.result.probability) for r in results] == expected
        assert stats.restarts >= 1 and stats.retries >= 1
        assert any(r.attempts > 1 for r in results)
        assert log and log[0]["instances_replayed"] == 1
        assert "died" in log[0]["reason"]
        assert f"exit code {FAULT_KILL_EXIT_CODE}" in log[0]["reason"]

    def test_journal_replays_updates_after_a_kill(self):
        instance = build_instance(42)
        edges = sorted(instance.uncertain_edges())[:2]
        queries = trace_queries(42, 4)
        # The kill fires well after the updates are journaled, so the
        # respawned worker must reconstruct snapshot + updates exactly.
        plan = FaultPlan(faults=(Fault(kind="kill", after_messages=5),), seed=23)
        with self._chaos_service(plan) as service:
            instance_id = service.register_instance(instance)
            for edge in edges:
                service.update_probability(instance_id, edge, "1/3")
            results = [service.submit(query, instance_id) for query in queries]
            assert service.stats().restarts >= 1
        # `update_probability` mutated the caller's registered object too,
        # so it is the ground truth for the post-update probabilities.
        assert [str(r.result.probability) for r in results] == exact_answers(
            queries, instance
        )

    def test_drop_fault_times_out_then_recovers(self):
        instance = build_instance(43)
        queries = trace_queries(43, 3)
        expected = exact_answers(queries, instance)
        plan = FaultPlan(faults=(Fault(kind="drop", after_messages=1),), seed=29)
        with self._chaos_service(plan, timeout=0.4) as service:
            instance_id = service.register_instance(instance)
            results = [service.submit(query, instance_id) for query in queries]
            stats = service.stats()
            log = list(service.restart_log)
        assert [str(r.result.probability) for r in results] == expected
        assert stats.restarts >= 1
        assert any("unresponsive" in entry["reason"] for entry in log)

    def test_corrupt_reply_is_rejected_and_retried(self):
        instance = build_instance(44)
        queries = trace_queries(44, 3)
        expected = exact_answers(queries, instance)
        plan = FaultPlan(faults=(Fault(kind="corrupt", after_messages=1),), seed=31)
        with self._chaos_service(plan) as service:
            instance_id = service.register_instance(instance)
            results = [service.submit(query, instance_id) for query in queries]
            stats = service.stats()
            log = list(service.restart_log)
        assert [str(r.result.probability) for r in results] == expected
        assert stats.restarts >= 1
        assert any("malformed reply" in entry["reason"] for entry in log)

    def test_retry_exhaustion_is_a_typed_unavailable_error(self):
        instance = build_instance(45)
        # Every incarnation of every worker dies on its first message, so
        # the retry budget (1 retry) must exhaust.
        plan = FaultPlan(
            faults=(Fault(kind="kill", after_messages=0, repeat=True),), seed=37
        )
        with self._chaos_service(plan, max_retries=1) as service:
            with pytest.raises(ServiceUnavailableError) as excinfo:
                service.register_instance(instance)
            # stats() would itself be killed (repeat=True), so read the
            # coordinator-side restart log directly.
            assert len(service.restart_log) >= 2
        error = excinfo.value
        # The attempt provenance rides along in the notes.
        assert len(error.notes) == 2
        assert all("attempt" in note for note in error.notes)
        assert "exhausted its retry budget" in str(error)

    def test_close_is_idempotent_after_sigkill(self):
        instance = build_instance(46)
        service = QueryService(num_workers=2, seed=19)
        try:
            instance_id = service.register_instance(instance)
            query = trace_queries(46, 1)[0]
            assert service.submit(query, instance_id).result is not None
            victim = service._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            assert not victim.is_alive()
        finally:
            # close() must survive the dead worker, and stay idempotent.
            service.close()
            service.close()
        with pytest.raises(ServiceError):
            service.submit(trace_queries(46, 1)[0], instance)


class TestFailureRecords:
    def test_schema_and_retryable_classification(self):
        record = failure_record("boom", "ServiceUnavailableError", 7, "r1")
        assert record == {
            "error": "boom",
            "error_class": "ServiceUnavailableError",
            "line": 7,
            "retryable": True,
            "id": "r1",
        }
        assert not failure_record("bad", "ServiceError", 2)["retryable"]
        assert "id" not in failure_record("bad", None, 2)
        for error_class in RETRYABLE_ERROR_CLASSES:
            assert failure_record("x", error_class, 1)["retryable"]
