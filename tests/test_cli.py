"""Unit tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.graphs.builders import one_way_path, star_tree
from repro.graphs.serialization import save_graph
from repro.probability.prob_graph import ProbabilisticGraph


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestTablesCommand:
    def test_tables_prints_all_three(self):
        code, out, _err = run_cli(["tables"])
        assert code == 0
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out
        assert out.count("PTIME") + out.count("#P-hard") == 75


class TestClassifyCommand:
    def test_classify_known_cells(self):
        code, out, _err = run_cli(
            ["classify", "--query-class", "1WP", "--instance-class", "DWT", "--setting", "labeled"]
        )
        assert code == 0
        assert "PTIME" in out and "4.10" in out

        code, out, _err = run_cli(
            ["classify", "--query-class", "2wp", "--instance-class", "pt", "--setting", "unlabeled"]
        )
        assert code == 0
        assert "#P-hard" in out and "5.6" in out

    def test_unknown_class_is_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["classify", "--query-class", "hypercube", "--instance-class", "DWT"])


class TestSolveCommand:
    @pytest.fixture
    def files(self, tmp_path):
        query = one_way_path(["R", "S"], prefix="q")
        instance = ProbabilisticGraph(
            star_tree(1, label="R"), {("s0", "s1"): "1/2"}
        )
        # Extend the star into a small DWT with an S edge below.
        graph = instance.graph.copy()
        graph.add_edge("s1", "s2", "S")
        instance = ProbabilisticGraph(graph, {("s0", "s1"): "1/2", ("s1", "s2"): "1/4"})
        query_path = tmp_path / "query.json"
        instance_path = tmp_path / "instance.json"
        save_graph(query, str(query_path))
        save_graph(instance, str(instance_path))
        return str(query_path), str(instance_path)

    def test_solve_reports_probability_and_method(self, files):
        query_path, instance_path = files
        code, out, _err = run_cli(["solve", query_path, instance_path])
        assert code == 0
        assert "probability = 1/8" in out
        assert "labeled-dwt" in out or "connected-2wp" in out

    def test_solve_with_explicit_method(self, files):
        query_path, instance_path = files
        code, out, _err = run_cli(["solve", query_path, instance_path, "--method", "brute-force-worlds"])
        assert code == 0
        assert "probability = 1/8" in out

    def test_solve_prefers_flavour(self, files):
        query_path, instance_path = files
        code, out, _err = run_cli(["solve", query_path, instance_path, "--prefer", "lineage"])
        assert code == 0
        assert "probability = 1/8" in out

    def test_solve_unknown_method_fails_cleanly(self, files):
        query_path, instance_path = files
        code, _out, err = run_cli(["solve", query_path, instance_path, "--method", "sorcery"])
        assert code == 1
        assert "error" in err

    def test_solve_missing_file_fails_cleanly(self, tmp_path, files):
        query_path, _instance_path = files
        code, _out, err = run_cli(["solve", query_path, str(tmp_path / "missing.json")])
        assert code == 2
        assert "could not load" in err

    def test_solve_float_precision(self, files):
        query_path, instance_path = files
        code, out, _err = run_cli(["solve", query_path, instance_path, "--precision", "float"])
        assert code == 0
        assert "probability = 0.125" in out


class TestBenchCommand:
    def test_bench_smoke_without_writing(self):
        code, out, _err = run_cli(["bench", "--smoke", "--output", "-"])
        assert code == 0
        assert "hotpath benchmark" in out
        assert "solve_many_float" in out
        assert "report written" not in out

    def test_bench_writes_report(self, tmp_path):
        target = tmp_path / "bench.json"
        code, out, _err = run_cli(["bench", "--smoke", "--output", str(target)])
        assert code == 0
        assert target.exists()
        import json

        report = json.loads(target.read_text())
        assert report["benchmark"] == "hotpaths"
        assert {w["name"] for w in report["workloads"]} == {
            "labeled-dwt", "connected-2wp", "unlabeled-union-dwt"
        }
        for workload in report["workloads"]:
            assert workload["float_max_abs_error"] <= 1e-9


class TestApproxSolve:
    @pytest.fixture
    def hard_files(self, tmp_path):
        from repro.workloads.generators import intractable_workload

        workload = intractable_workload(8, rng=19)
        query_path = tmp_path / "query.json"
        instance_path = tmp_path / "instance.json"
        save_graph(workload.query, str(query_path))
        save_graph(workload.instance, str(instance_path))
        return workload, str(query_path), str(instance_path)

    def test_approx_solve_samples_the_hard_cell(self, hard_files):
        import warnings

        from repro.core.solver import phom_probability

        workload, query_path, instance_path = hard_files
        code, out, _err = run_cli(
            ["solve", query_path, instance_path, "--precision", "approx",
             "--epsilon", "0.1", "--delta", "0.05", "--seed", "20170514"]
        )
        assert code == 0
        assert "karp-luby" in out
        assert "sampled estimate" in out and "seed=20170514" in out
        # Brute force was NOT used.
        assert "brute force was used" not in out
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            exact = float(phom_probability(workload.query, workload.instance, precision="float"))
        reported = float(out.splitlines()[0].split("(")[1].rstrip(")"))
        assert abs(reported - exact) <= 0.1 * exact

    def test_approx_solve_is_seed_reproducible(self, hard_files):
        _workload, query_path, instance_path = hard_files
        args = ["solve", query_path, instance_path, "--precision", "approx",
                "--epsilon", "0.2", "--delta", "0.2", "--seed", "7"]
        code_a, out_a, _ = run_cli(args)
        code_b, out_b, _ = run_cli(args)
        assert code_a == code_b == 0
        assert out_a == out_b

    def test_bad_epsilon_fails_cleanly(self, hard_files):
        _workload, query_path, instance_path = hard_files
        code, _out, err = run_cli(
            ["solve", query_path, instance_path, "--precision", "approx", "--epsilon", "1.5"]
        )
        assert code == 1
        assert "epsilon" in err


class TestBenchSamplingCommand:
    def test_bench_sampling_smoke_without_writing(self):
        code, out, _err = run_cli(
            ["bench", "sampling", "--smoke", "--output", "-",
             "--min-sampling-speedup", "1.5", "--max-epsilon-ratio", "1"]
        )
        assert code == 0
        assert "sampling benchmark" in out
        assert "accuracy curve" in out
        assert "report written" not in out

    def test_bench_sampling_writes_report(self, tmp_path):
        target = tmp_path / "sampling.json"
        code, _out, _err = run_cli(["bench", "sampling", "--smoke", "--output", str(target)])
        assert code == 0
        import json

        report = json.loads(target.read_text())
        assert report["suite"] == "sampling"
        assert all(row["within_epsilon"] for row in report["speedup"])
        assert report["accuracy_curve"]["points"]

    def test_bench_sampling_threshold_failure(self):
        code, _out, err = run_cli(
            ["bench", "sampling", "--smoke", "--output", "-",
             "--min-sampling-speedup", "1e9"]
        )
        assert code == 1
        assert "speedup" in err
