"""Unit tests for d-DNNF circuits (Definition 5.3)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import LineageError
from repro.lineage.ddnnf import DDNNF, GateKind


def _xor_circuit() -> DDNNF:
    """The d-DNNF for x XOR y: (x ∧ ¬y) ∨ (¬x ∧ y)."""
    circuit = DDNNF()
    left = circuit.add_and([circuit.add_var("x"), circuit.add_not("y")])
    right = circuit.add_and([circuit.add_not("x"), circuit.add_var("y")])
    circuit.set_root(circuit.add_or([left, right]))
    return circuit


class TestConstruction:
    def test_literal_gates_are_cached(self):
        circuit = DDNNF()
        assert circuit.add_var("x") == circuit.add_var("x")
        assert circuit.add_not("x") == circuit.add_not("x")
        assert circuit.add_var("x") != circuit.add_not("x")
        assert circuit.add_true() == circuit.add_true()

    def test_empty_and_or_are_constants(self):
        circuit = DDNNF()
        true_gate = circuit.add_and([])
        false_gate = circuit.add_or([])
        assert circuit.gate(true_gate).kind is GateKind.TRUE
        assert circuit.gate(false_gate).kind is GateKind.FALSE

    def test_single_child_gates_collapse(self):
        circuit = DDNNF()
        x = circuit.add_var("x")
        assert circuit.add_and([x]) == x
        assert circuit.add_or([x]) == x

    def test_unknown_child_rejected(self):
        circuit = DDNNF()
        with pytest.raises(LineageError):
            circuit.add_and([0, 99])

    def test_root_must_be_set(self):
        circuit = DDNNF()
        circuit.add_var("x")
        with pytest.raises(LineageError):
            _ = circuit.root

    def test_size_measures(self):
        circuit = _xor_circuit()
        assert circuit.num_gates() == 7
        assert circuit.num_wires() == 6
        assert circuit.variables() == {"x", "y"}


class TestSemantics:
    def test_evaluate_xor(self):
        circuit = _xor_circuit()
        assert circuit.evaluate({"x": True, "y": False})
        assert circuit.evaluate({"x": False, "y": True})
        assert not circuit.evaluate({"x": True, "y": True})
        assert not circuit.evaluate({})

    def test_probability_xor(self):
        circuit = _xor_circuit()
        probabilities = {"x": Fraction(1, 2), "y": Fraction(1, 3)}
        expected = Fraction(1, 2) * Fraction(2, 3) + Fraction(1, 2) * Fraction(1, 3)
        assert circuit.probability(probabilities) == expected

    def test_constants(self):
        circuit = DDNNF()
        circuit.set_root(circuit.add_true())
        assert circuit.probability({}) == 1
        circuit2 = DDNNF()
        circuit2.set_root(circuit2.add_false())
        assert circuit2.probability({}) == 0

    def test_probability_matches_exhaustive_evaluation(self):
        circuit = _xor_circuit()
        probabilities = {"x": Fraction(1, 4), "y": Fraction(2, 3)}
        total = Fraction(0)
        for x_value in (False, True):
            for y_value in (False, True):
                if circuit.evaluate({"x": x_value, "y": y_value}):
                    weight = (probabilities["x"] if x_value else 1 - probabilities["x"]) * (
                        probabilities["y"] if y_value else 1 - probabilities["y"]
                    )
                    total += weight
        assert circuit.probability(probabilities) == total


class TestPropertyCheckers:
    def test_xor_circuit_is_valid_ddnnf(self):
        circuit = _xor_circuit()
        assert circuit.is_decomposable()
        assert circuit.is_deterministic()

    def test_non_decomposable_and_is_detected(self):
        circuit = DDNNF()
        gate = circuit.add_and([circuit.add_var("x"), circuit.add_var("x"), circuit.add_var("y")])
        circuit.set_root(gate)
        assert not circuit.is_decomposable()

    def test_non_deterministic_or_is_detected(self):
        circuit = DDNNF()
        gate = circuit.add_or([circuit.add_var("x"), circuit.add_var("y")])
        circuit.set_root(gate)
        assert not circuit.is_deterministic()

    def test_determinism_check_support_limit(self):
        circuit = DDNNF()
        children = []
        for index in range(3):
            children.append(circuit.add_and([circuit.add_var(f"v{index}"), circuit.add_not(f"w{index}")]))
        circuit.set_root(circuit.add_or(children))
        with pytest.raises(LineageError):
            circuit.is_deterministic(max_support=2)
