"""Tests for the performance subsystem: numeric backends, the batch API and
the cached graph metadata.

The precision contract under test is the one documented in the README:
``precision="exact"`` returns bit-exact :class:`~fractions.Fraction` values
(identical to the seed implementation), ``precision="float"`` returns native
floats agreeing with exact mode to within ``1e-9`` on every tractable
dispatch route.
"""

import random
import warnings
from fractions import Fraction

import pytest

from repro.exceptions import GraphError, IntractableFallbackWarning, ReproError
from repro.graphs.classes import GraphClass, graph_class_of
from repro.graphs.digraph import DiGraph, Edge
from repro.numeric import EXACT, FAST, resolve_context
from repro.probability.prob_graph import ProbabilisticGraph
from repro.core.solver import PHomSolver, phom_probability
from repro.workloads import workload_for_cell

TOLERANCE = 1e-9

#: One cell per tractable dispatch route of Tables 1-3 (and both trivial
#: short-circuits), exercised by the float-agreement property test.
TRACTABLE_CELLS = [
    # (query class, instance class, labeled) -> expected route
    (GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True),      # labeled-dwt
    (GraphClass.ONE_WAY_PATH, GraphClass.UNION_DOWNWARD_TREE, True),  # labeled-dwt + Lemma 3.7
    (GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True),       # connected-2wp
    (GraphClass.DOWNWARD_TREE, GraphClass.UNION_TWO_WAY_PATH, True),  # connected-2wp + Lemma 3.7
    (GraphClass.ALL, GraphClass.UNION_DOWNWARD_TREE, False),        # graded-collapse
    (GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False),         # polytree-dp
    (GraphClass.UNION_DOWNWARD_TREE, GraphClass.UNION_POLYTREE, False),  # polytree + Lemma 3.7
]


def _workload(query_class, instance_class, labeled, seed, query_size=3, instance_size=12):
    return workload_for_cell(
        query_class, instance_class, labeled, query_size, instance_size,
        rng=random.Random(seed),
    )


class TestFloatAgreesWithExact:
    @pytest.mark.parametrize("query_class,instance_class,labeled", TRACTABLE_CELLS)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_auto_dispatch_agreement(self, query_class, instance_class, labeled, seed):
        workload = _workload(query_class, instance_class, labeled, seed)
        solver = PHomSolver()
        exact = solver.solve(workload.query, workload.instance)
        fast = solver.solve(workload.query, workload.instance, precision="float")
        assert isinstance(exact.probability, Fraction)
        assert isinstance(fast.probability, float)
        assert fast.method == exact.method
        assert abs(float(exact.probability) - fast.probability) <= TOLERANCE

    @pytest.mark.parametrize(
        "method",
        [
            "labeled-dwt-dp",
            "labeled-dwt-lineage",
            "connected-2wp-dp",
            "connected-2wp-lineage",
            "graded-collapse",
            "polytree-dp",
            "polytree-automaton",
            "generic-lineage",
            "brute-force-worlds",
            "brute-force-matches",
        ],
    )
    def test_explicit_methods_agreement(self, method):
        if method.startswith("labeled-dwt"):
            workload = _workload(GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, 7)
        elif method.startswith("connected-2wp"):
            workload = _workload(GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True, 7)
        elif method in ("graded-collapse", "polytree-dp", "polytree-automaton"):
            workload = _workload(
                GraphClass.DOWNWARD_TREE, GraphClass.UNION_DOWNWARD_TREE, False, 7
            )
        else:
            workload = _workload(
                GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, 7,
                query_size=2, instance_size=5,
            )
        solver = PHomSolver()
        exact = solver.solve(workload.query, workload.instance, method=method)
        fast = solver.solve(workload.query, workload.instance, method=method, precision="float")
        assert isinstance(exact.probability, Fraction)
        assert isinstance(fast.probability, float)
        assert abs(float(exact.probability) - fast.probability) <= TOLERANCE

    def test_brute_force_fallback_agreement(self):
        # A #P-hard cell: general labeled query on a general instance.
        workload = _workload(GraphClass.ALL, GraphClass.ALL, True, 11, query_size=2, instance_size=4)
        solver = PHomSolver()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            exact = solver.solve(workload.query, workload.instance)
            fast = solver.solve(workload.query, workload.instance, precision="float")
        assert abs(float(exact.probability) - fast.probability) <= TOLERANCE

    def test_trivial_cases_use_backend_constants(self):
        instance = ProbabilisticGraph(DiGraph(edges=[("a", "b", "R")]), default="0.5")
        edgeless = DiGraph(vertices=["q"])
        mismatched = DiGraph(edges=[("x", "y", "Z")])
        solver = PHomSolver()
        assert solver.solve(edgeless, instance).probability == Fraction(1)
        assert solver.solve(edgeless, instance, precision="float").probability == 1.0
        assert isinstance(
            solver.solve(edgeless, instance, precision="float").probability, float
        )
        assert solver.solve(mismatched, instance, precision="float").probability == 0.0

    def test_phom_probability_precision_keyword(self):
        workload = _workload(GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, 5)
        exact = phom_probability(workload.query, workload.instance)
        fast = phom_probability(workload.query, workload.instance, precision="float")
        assert isinstance(exact, Fraction)
        assert isinstance(fast, float)
        assert abs(float(exact) - fast) <= TOLERANCE

    def test_resolve_context(self):
        assert resolve_context(None) is EXACT
        assert resolve_context("exact") is EXACT
        assert resolve_context("float") is FAST
        assert resolve_context(FAST) is FAST
        with pytest.raises(ReproError):
            resolve_context("double")


class TestSolveMany:
    @pytest.mark.parametrize("precision", ["exact", "float"])
    def test_matches_repeated_solve(self, precision):
        rng = random.Random(21)
        instance = _workload(
            GraphClass.ONE_WAY_PATH, GraphClass.UNION_DOWNWARD_TREE, True, 21,
            instance_size=14,
        ).instance
        queries = [
            _workload(GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, seed).query
            for seed in rng.sample(range(1000), 8)
        ]
        solver = PHomSolver()
        batch = solver.solve_many(queries, instance, precision=precision)
        singles = [solver.solve(q, instance, precision=precision) for q in queries]
        assert [r.probability for r in batch] == [r.probability for r in singles]
        assert [r.method for r in batch] == [r.method for r in singles]

    def test_exact_batch_is_bit_identical_to_cold_solver(self):
        workload = _workload(GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True, 31)
        queries = [workload.query] * 3
        batch = PHomSolver().solve_many(queries, workload.instance)
        cold_instance = ProbabilisticGraph(
            workload.instance.graph.copy(), workload.instance.probabilities()
        )
        cold = PHomSolver().solve(workload.query, cold_instance)
        for result in batch:
            assert result.probability == cold.probability

    def test_empty_batch(self):
        workload = _workload(GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, 41)
        assert PHomSolver().solve_many([], workload.instance) == []


class TestEdgeOrdering:
    def test_mixed_type_vertices_sort(self):
        edges = [Edge(2, "b"), Edge("a", 1), Edge(1, 2), Edge("a", "b", "R")]
        ordered = sorted(edges)  # seed raised TypeError: int vs str comparison
        assert ordered == sorted(edges, key=lambda e: e.sort_key())

    def test_graph_with_mixed_type_vertices(self):
        graph = DiGraph(edges=[(1, "x"), ("x", 2), (2, 1)])
        assert len(graph.edges()) == 3  # edges() sorts deterministically
        assert graph.edges() == graph.edges()

    def test_order_is_total_and_consistent_with_eq(self):
        a, b = Edge(1, 2, "R"), Edge(1, 2, "R")
        assert a <= b and a >= b and not (a < b) and not (a > b)
        assert (a < Edge(1, 3)) != (a > Edge(1, 3))


class TestGraphCaching:
    def test_freeze_blocks_mutation(self):
        graph = DiGraph(edges=[("a", "b")])
        graph.freeze()
        assert graph.frozen
        with pytest.raises(GraphError):
            graph.add_edge("b", "c")
        with pytest.raises(GraphError):
            graph.add_vertex("z")
        with pytest.raises(GraphError):
            graph.remove_edge("a", "b")

    def test_copy_of_frozen_graph_is_mutable(self):
        graph = DiGraph(edges=[("a", "b")]).freeze()
        clone = graph.copy()
        assert not clone.frozen
        clone.add_edge("b", "c")
        assert clone.num_edges() == 2
        assert graph.num_edges() == 1

    def test_mutation_invalidates_caches(self):
        graph = DiGraph(edges=[("a", "b")])
        assert graph.is_weakly_connected()
        assert [e.endpoints for e in graph.edges()] == [("a", "b")]
        assert graph_class_of(graph) is GraphClass.ONE_WAY_PATH
        graph.add_vertex("lonely")
        assert not graph.is_weakly_connected()
        assert len(graph.weakly_connected_components()) == 2
        graph.add_edge("b", "lonely")
        assert graph.is_weakly_connected()
        assert [e.endpoints for e in graph.edges()] == [("a", "b"), ("b", "lonely")]
        assert graph.out_edges("b") == [graph.get_edge("b", "lonely")]
        assert graph.out_label_set("b") == {"_"}

    def test_instance_graph_is_frozen(self):
        instance = ProbabilisticGraph(DiGraph(edges=[("a", "b")]), default="0.5")
        assert instance.graph.frozen
        with pytest.raises(GraphError):
            instance.graph.add_edge("b", "c")

    def test_single_bfs_connectivity(self):
        path = DiGraph(edges=[(i, i + 1) for i in range(50)])
        assert path.is_weakly_connected()
        two = DiGraph(edges=[(0, 1), (2, 3)])
        assert not two.is_weakly_connected()
        assert not DiGraph().is_weakly_connected()


class TestProbabilisticGraphCaches:
    def _instance(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "d"), ("d", "e")])
        return ProbabilisticGraph(graph, default="0.5")

    def test_probabilities_view_is_live_and_read_only(self):
        instance = self._instance()
        view = instance.probabilities_view()
        edge = instance.graph.get_edge("a", "b")
        assert view[edge] == Fraction(1, 2)
        instance.set_probability(("a", "b"), "0.25")
        assert view[edge] == Fraction(1, 4)
        with pytest.raises(TypeError):
            view[edge] = Fraction(1)

    def test_float_probabilities_memoised_and_invalidated(self):
        instance = self._instance()
        table = instance.float_probabilities()
        assert instance.float_probabilities() is table
        edge = instance.graph.get_edge("a", "b")
        assert table[edge] == 0.5
        instance.set_probability(("a", "b"), "0.75")
        assert instance.float_probabilities()[edge] == 0.75

    def test_connected_components_cached_and_invalidated(self):
        instance = self._instance()
        first = instance.connected_components()
        second = instance.connected_components()
        assert [c.graph.vertices for c in first] == [c.graph.vertices for c in second]
        assert first[0] is second[0]  # shared, not rebuilt
        instance.set_probability(("c", "d"), "0.125")
        refreshed = instance.connected_components()
        cd = [c for c in refreshed if c.graph.has_edge("c", "d")][0]
        assert cd.probability(("c", "d")) == Fraction(1, 8)

    def test_mutating_shared_component_does_not_corrupt_parent(self):
        # Regression: components are shared through the parent's cache, so a
        # caller mutating one must detach the cache, not poison the parent.
        graph = DiGraph(edges=[(1, 2), (3, 4)])
        instance = ProbabilisticGraph(graph, default=Fraction(1, 2))
        from repro.graphs.builders import unlabeled_path

        query = unlabeled_path(1)
        solver = PHomSolver()
        before = solver.probability(query, instance)
        component = instance.connected_components()[0]
        component.set_probability(component.graph.edges()[0].endpoints, 0)
        assert solver.probability(query, instance) == before == Fraction(3, 4)

    def test_out_edges_mutation_does_not_poison_cache(self):
        graph = DiGraph(edges=[(1, 2, "a"), (1, 3, "b")])
        listing = graph.out_edges(1)
        listing.reverse()
        assert [e.label for e in graph.out_edges(1)] == ["a", "b"]
        graph.in_edges(2).clear()
        assert len(graph.in_edges(2)) == 1

    def test_float_probabilities_read_only(self):
        instance = self._instance()
        table = instance.float_probabilities()
        with pytest.raises(TypeError):
            table[instance.graph.get_edge("a", "b")] = 0.0

    def test_restrict_to_component_preserves_probabilities(self):
        instance = self._instance()
        instance.set_probability(("c", "d"), "0.375")
        component = instance.restrict_to_component(["c", "d", "e"])
        assert component.probability(("c", "d")) == Fraction(3, 8)
        assert component.probability(("d", "e")) == Fraction(1, 2)
        assert component.graph.num_vertices() == 3


class TestPlanCacheInvalidation:
    """Compiled plans are structural; every probability-side change must be
    reflected (plans re-read the live table) and every structural change must
    bypass the cached plan (the cache keys on canonical query content)."""

    def _instance(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "d")])
        return ProbabilisticGraph(graph, default=Fraction(1, 2))

    def test_probability_mutation_is_picked_up_by_cached_plan(self):
        from repro.graphs.builders import unlabeled_path

        instance = self._instance()
        query = unlabeled_path(1)
        solver = PHomSolver()
        before = solver.solve(query, instance).probability
        assert before == Fraction(3, 4)
        instance.set_probability(("a", "b"), 0)
        after = solver.solve(query, instance).probability
        assert after == Fraction(1, 2)
        # The structural plan was reused, not recompiled...
        assert solver.plan_cache.stats["compiles"] == 1
        # ...and matches a cache-less solver on the mutated instance.
        cold = PHomSolver(plan_cache_size=0).solve(query, instance).probability
        assert after == cold

    def test_detaching_a_shared_component_does_not_corrupt_cached_plans(self):
        from repro.graphs.builders import unlabeled_path

        instance = self._instance()
        query = unlabeled_path(1)
        solver = PHomSolver()
        before = solver.solve(query, instance).probability
        # Mutating a component handed out by the parent's cache detaches it;
        # the parent's cached plan must keep answering from the parent's own
        # (unchanged) probabilities.
        component = instance.connected_components()[0]
        component.set_probability(component.graph.edges()[0].endpoints, 0)
        assert solver.solve(query, instance).probability == before == Fraction(3, 4)

    def test_unfrozen_query_edit_bypasses_the_cached_plan(self):
        from repro.graphs.builders import unlabeled_path

        instance = self._instance()
        query = unlabeled_path(1)  # query graphs stay mutable
        solver = PHomSolver()
        first = solver.solve(query, instance)
        assert first.probability == Fraction(3, 4)
        # Editing the query graph changes its canonical form: the old plan
        # must not be served for the new structure.
        query.add_edge("v1", "v2")
        second = solver.solve(query, instance)
        assert solver.plan_cache.stats["compiles"] == 2
        cold = PHomSolver(plan_cache_size=0).solve(query, instance)
        assert second.probability == cold.probability

    def test_new_instance_object_compiles_fresh_plans(self):
        from repro.graphs.builders import unlabeled_path

        instance = self._instance()
        query = unlabeled_path(1)
        solver = PHomSolver()
        solver.solve(query, instance)
        rebuilt = ProbabilisticGraph(instance.graph.copy(), instance.probabilities())
        solver.solve(query, rebuilt)
        assert solver.plan_cache.stats["compiles"] == 2
