"""Unit tests for Propositions 5.4 and 5.5 (unlabeled queries on polytree instances)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ClassConstraintError
from repro.core.unlabeled_pt import (
    collapse_query_to_path_length,
    phom_unlabeled_path_on_polytree,
    phom_unlabeled_tree_query_on_polytree,
)
from repro.graphs.builders import disjoint_union, downward_tree, star_tree, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_downward_tree, random_polytree
from repro.graphs.homomorphism import homomorphic_equivalent
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestQueryCollapse:
    def test_dwt_collapses_to_height(self):
        tree = downward_tree({"b": "a", "c": "a", "d": "b"})
        assert collapse_query_to_path_length(tree) == 2
        assert homomorphic_equivalent(tree, unlabeled_path(2))

    def test_union_collapses_to_max_height(self):
        union = disjoint_union([unlabeled_path(1), downward_tree({"b": "a", "c": "b", "d": "c"})])
        assert collapse_query_to_path_length(union) == 3

    def test_star_collapses_to_single_edge(self):
        assert collapse_query_to_path_length(star_tree(5)) == 1

    def test_rejects_non_dwt_queries(self):
        two_way = DiGraph(edges=[("a", "b"), ("c", "b")])
        with pytest.raises(ClassConstraintError):
            collapse_query_to_path_length(two_way)


class TestPathOnPolytree:
    def test_path_instance_needs_all_edges(self):
        instance = ProbabilisticGraph(
            unlabeled_path(3), {("v0", "v1"): "1/2", ("v1", "v2"): "1/3", ("v2", "v3"): "1/5"}
        )
        expected = Fraction(1, 2) * Fraction(1, 3) * Fraction(1, 5)
        assert phom_unlabeled_path_on_polytree(3, instance, "automaton") == expected
        assert phom_unlabeled_path_on_polytree(3, instance, "dp") == expected

    def test_length_zero_is_certain(self):
        instance = ProbabilisticGraph(unlabeled_path(1), {("v0", "v1"): "1/9"})
        assert phom_unlabeled_path_on_polytree(0, instance) == 1

    def test_length_longer_than_instance_is_impossible(self):
        instance = ProbabilisticGraph.with_uniform_probability(unlabeled_path(2), "1/2")
        assert phom_unlabeled_path_on_polytree(5, instance) == 0

    def test_methods_agree_with_brute_force(self, rng):
        for _ in range(15):
            graph = random_polytree(rng.randint(2, 7), ("_",), rng)
            instance = attach_random_probabilities(graph, rng)
            for length in (1, 2, 3):
                reference = brute_force_phom(unlabeled_path(length), instance)
                assert phom_unlabeled_path_on_polytree(length, instance, "automaton") == reference
                assert phom_unlabeled_path_on_polytree(length, instance, "dp") == reference

    def test_rejects_non_polytree_instances(self):
        cyclic = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(ClassConstraintError):
            phom_unlabeled_path_on_polytree(1, ProbabilisticGraph(cyclic))

    def test_rejects_negative_length_and_unknown_method(self):
        instance = ProbabilisticGraph(unlabeled_path(1))
        with pytest.raises(ValueError):
            phom_unlabeled_path_on_polytree(-1, instance)
        with pytest.raises(ValueError):
            phom_unlabeled_path_on_polytree(1, instance, "magic")

    def test_upward_and_downward_edges_combine(self):
        # c -> b <- a ... a directed path of length 2 needs consistently
        # oriented edges, so the "V" shape never yields one.
        vee = DiGraph(edges=[("a", "b"), ("c", "b")])
        instance = ProbabilisticGraph.with_uniform_probability(vee, "1/2")
        assert phom_unlabeled_path_on_polytree(2, instance) == 0
        # Whereas a -> b -> c does, with probability 1/4.
        chain = ProbabilisticGraph.with_uniform_probability(unlabeled_path(2), "1/2")
        assert phom_unlabeled_path_on_polytree(2, chain) == Fraction(1, 4)


class TestTreeQueryOnPolytree:
    def test_dwt_query_agrees_with_brute_force(self, rng):
        for _ in range(15):
            graph = random_polytree(rng.randint(2, 6), ("_",), rng)
            instance = attach_random_probabilities(graph, rng)
            query = random_downward_tree(rng.randint(1, 4), ("_",), rng, prefix="q")
            reference = brute_force_phom(query, instance)
            assert phom_unlabeled_tree_query_on_polytree(query, instance, "automaton") == reference
            assert phom_unlabeled_tree_query_on_polytree(query, instance, "dp") == reference

    def test_union_dwt_query(self, rng):
        graph = random_polytree(6, ("_",), rng)
        instance = attach_random_probabilities(graph, rng)
        query = disjoint_union([star_tree(2), unlabeled_path(2)], prefix="q")
        reference = brute_force_phom(query, instance)
        assert phom_unlabeled_tree_query_on_polytree(query, instance) == reference
