"""Unit tests for the X-property and the Theorem 4.13 homomorphism algorithm."""

from __future__ import annotations

import pytest

from repro.exceptions import ClassConstraintError, GraphError
from repro.csp.xproperty import (
    has_x_property,
    x_property_has_homomorphism,
    x_property_homomorphism,
)
from repro.graphs.builders import one_way_path, two_way_path
from repro.graphs.classes import two_way_path_order
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_connected_graph, random_two_way_path
from repro.graphs.homomorphism import has_homomorphism


class TestXPropertyCheck:
    def test_two_way_paths_have_the_x_property(self, rng):
        # The key observation of the Proposition 4.11 proof: subpaths of a
        # 2WP trivially satisfy the X-property w.r.t. the path order.
        for _ in range(10):
            path = random_two_way_path(rng.randint(1, 6), ("R", "S"), rng)
            order = two_way_path_order(path)
            assert has_x_property(path, order)

    def test_counterexample_graph(self):
        # n0 -R-> n3 and n1 -R-> n2 with n0 < n1, n2 < n3 but no n0 -R-> n2.
        graph = DiGraph(edges=[("n0", "n3", "R"), ("n1", "n2", "R")])
        order = ["n0", "n1", "n2", "n3"]
        assert not has_x_property(graph, order)
        graph.add_edge("n0", "n2", "R")
        assert has_x_property(graph, order)

    def test_x_property_is_per_label(self):
        graph = DiGraph(edges=[("n0", "n3", "R"), ("n1", "n2", "S")])
        assert has_x_property(graph, ["n0", "n1", "n2", "n3"])

    def test_order_must_cover_all_vertices(self):
        graph = DiGraph(edges=[("a", "b", "R")])
        with pytest.raises(GraphError):
            has_x_property(graph, ["a"])
        with pytest.raises(GraphError):
            has_x_property(graph, ["a", "b", "b"])


class TestXPropertyHomomorphism:
    def test_agrees_with_backtracking_on_2wp_targets(self, rng):
        for _ in range(20):
            target = random_two_way_path(rng.randint(1, 5), ("R", "S"), rng)
            order = two_way_path_order(target)
            query = random_connected_graph(rng.randint(2, 4), 0.3, ("R", "S"), rng, prefix="q")
            expected = has_homomorphism(query, target)
            assert x_property_has_homomorphism(query, target, order) == expected

    def test_returns_an_actual_homomorphism(self):
        target = two_way_path([("R", "forward"), ("S", "backward"), ("R", "forward")])
        order = two_way_path_order(target)
        query = one_way_path(["R"], prefix="q")
        hom = x_property_homomorphism(query, target, order)
        assert hom is not None
        for edge in query.edges():
            assert target.has_edge(hom[edge.source], hom[edge.target], edge.label)

    def test_no_homomorphism_returns_none(self):
        target = one_way_path(["R", "R"])
        order = two_way_path_order(target)
        query = one_way_path(["S"], prefix="q")
        assert x_property_homomorphism(query, target, order) is None

    def test_verify_property_flag(self):
        bad_target = DiGraph(edges=[("n0", "n3", "R"), ("n1", "n2", "R")])
        order = ["n0", "n1", "n2", "n3"]
        query = one_way_path(["R"], prefix="q")
        with pytest.raises(ClassConstraintError):
            x_property_homomorphism(query, bad_target, order, verify_property=True)

    def test_empty_query_rejected(self):
        target = one_way_path(["R"])
        with pytest.raises(GraphError):
            x_property_homomorphism(DiGraph(), target, two_way_path_order(target))

    def test_min_assignment_on_monotone_target(self):
        # A target closed under coordinatewise minima (a "staircase") that is
        # not a path: the algorithm must still find the minimal homomorphism.
        target = DiGraph(
            edges=[("1", "2", "R"), ("1", "3", "R"), ("2", "3", "R"), ("2", "4", "R"), ("1", "4", "R")]
        )
        order = ["1", "2", "3", "4"]
        assert has_x_property(target, order)
        query = one_way_path(["R", "R"], prefix="q")
        hom = x_property_homomorphism(query, target, order)
        assert hom is not None
        assert has_homomorphism(query, target)
