"""Integration tests reproducing the paper's worked examples and figure constructions."""

from __future__ import annotations

import warnings
from fractions import Fraction

import pytest

from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning
from repro.graphs.builders import one_way_path, two_way_path_from_signs
from repro.graphs.classes import (
    GraphClass,
    graph_in_class,
    is_one_way_path,
    is_polytree,
    is_two_way_path,
)
from repro.probability.brute_force import brute_force_phom
from repro.reductions.bipartite import BipartiteGraph, count_edge_covers
from repro.reductions.edge_cover import prop33_reduction, prop34_reduction
from repro.reductions.pp2dnf import (
    PP2DNF,
    count_satisfying_valuations,
    prop41_reduction,
    prop56_reduction,
)


class TestExample22:
    """Example 2.2: Pr(G ⇝ H) = 0.7 · (1 − 0.9 · 0.2) = 0.574."""

    def test_brute_force_matches_the_paper(self, figure1_instance, example22_query):
        assert brute_force_phom(example22_query, figure1_instance) == Fraction(287, 500)

    def test_dispatcher_matches_the_paper(self, figure1_instance, example22_query):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            result = PHomSolver().solve(example22_query, figure1_instance)
        assert float(result.probability) == pytest.approx(0.574)

    def test_collapsed_query_gives_the_same_answer(self, figure1_instance):
        # In Example 2.2 the variable t can be mapped to y, so the query is
        # equivalent to the plain R-S path; our solvers exploit no such
        # simplification but must agree with it.
        collapsed = one_way_path(["R", "S"], prefix="c")
        assert brute_force_phom(collapsed, figure1_instance) == Fraction(287, 500)


class TestFigure5Construction:
    """Figure 5: the Proposition 3.3 reduction applied to a 2+3-vertex bipartite graph."""

    #: The bipartite graph of Figure 5: X = {x1, x2}, Y = {y1, y2, y3},
    #: edges e1=(x1,y1), e2=(x1,y2), e3=(x2,y2), e4=(x2,y3).
    FIGURE5_GRAPH = BipartiteGraph(2, 3, ((1, 1), (1, 2), (2, 2), (2, 3)))

    def test_instance_shape(self):
        query, instance = prop33_reduction(self.FIGURE5_GRAPH)
        assert is_one_way_path(instance.graph)
        # One component per vertex of the bipartite graph.
        assert len(query.weakly_connected_components()) == 5
        # Instance length: m+1 C edges, one V edge per bipartite edge, plus
        # l_j L-edges and r_j R-edges per bipartite edge.
        expected_edges = (4 + 1) + 4 + sum(l for l, _ in self.FIGURE5_GRAPH.edges) + sum(
            r for _, r in self.FIGURE5_GRAPH.edges
        )
        assert instance.graph.num_edges() == expected_edges

    def test_counting_identity(self):
        query, instance = prop33_reduction(self.FIGURE5_GRAPH)
        probability = brute_force_phom(query, instance)
        assert probability * 2 ** self.FIGURE5_GRAPH.num_edges == count_edge_covers(
            self.FIGURE5_GRAPH
        )


class TestProposition34Construction:
    def test_unlabeled_expansion_preserves_the_count(self):
        graph = BipartiteGraph(1, 2, ((1, 1), (1, 2)))
        query, instance = prop34_reduction(graph)
        assert graph_in_class(query, GraphClass.UNION_TWO_WAY_PATH)
        assert is_two_way_path(instance.graph)
        probability = brute_force_phom(query, instance)
        assert probability * 2 ** graph.num_edges == count_edge_covers(graph)


class TestFigure7Construction:
    """Figure 7: the Proposition 4.1 reduction for X1Y2 ∨ X1Y1 ∨ X2Y2."""

    FIGURE7_FORMULA = PP2DNF(2, 2, ((1, 2), (1, 1), (2, 2)))

    def test_instance_shape(self):
        query, instance = prop41_reduction(self.FIGURE7_FORMULA)
        graph = instance.graph
        assert is_polytree(graph)
        assert is_one_way_path(query)
        # Query of Figure 7: T -> S^{m+3} -> T with m = 3 clauses.
        assert query.num_edges() == 8
        # Vertices: R, X1, X2, Y1, Y2, the 4·3 chain vertices, 3 A's and 3 B's.
        assert graph.num_vertices() == 1 + 4 + 12 + 6
        # Valuation edges: one per variable, probability 1/2.
        assert len(instance.uncertain_edges()) == 4

    def test_counting_identity(self):
        query, instance = prop41_reduction(self.FIGURE7_FORMULA)
        probability = brute_force_phom(query, instance)
        assert probability * 2 ** 4 == count_satisfying_valuations(self.FIGURE7_FORMULA)


class TestFigure8Construction:
    """Figure 8: the Proposition 5.6 reduction for the same formula, unlabeled."""

    def test_query_is_the_figure8_two_way_path(self):
        formula = PP2DNF(2, 2, ((1, 2), (1, 1), (2, 2)))
        query, instance = prop56_reduction(formula)
        assert is_two_way_path(query)
        assert is_polytree(instance.graph)
        # →→→ (→→←)^{m+3} →→→ with m = 3.
        reference = two_way_path_from_signs([1, 1, 1] + [1, 1, -1] * 6 + [1, 1, 1])
        assert query.num_edges() == reference.num_edges() == 24
        from repro.graphs.homomorphism import homomorphic_equivalent

        assert homomorphic_equivalent(query, reference)

    def test_counting_identity_on_a_tiny_formula(self):
        formula = PP2DNF(1, 1, ((1, 1),))
        query, instance = prop56_reduction(formula)
        probability = brute_force_phom(query, instance)
        assert probability * 2 ** 2 == count_satisfying_valuations(formula)
