"""Unit tests for uncertain binary trees and the polytree binary encoding."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import AutomatonError, ClassConstraintError
from repro.automata.binary_tree import (
    LABEL_DOWN,
    LABEL_EPSILON,
    LABEL_UP,
    BinaryTreeNode,
    UncertainBinaryTree,
    encode_polytree,
)
from repro.graphs.builders import downward_tree, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_polytree
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestBinaryTreeNodes:
    def test_leaf_and_internal_nodes(self):
        leaf = BinaryTreeNode(LABEL_EPSILON)
        assert leaf.is_leaf()
        internal = BinaryTreeNode(LABEL_UP, left=BinaryTreeNode(LABEL_EPSILON), right=BinaryTreeNode(LABEL_EPSILON))
        assert not internal.is_leaf()
        UncertainBinaryTree(root=internal)

    def test_half_node_is_rejected(self):
        broken = BinaryTreeNode(LABEL_UP, left=BinaryTreeNode(LABEL_EPSILON))
        with pytest.raises(AutomatonError):
            UncertainBinaryTree(root=broken)

    def test_node_traversal_and_depth(self):
        leaf = lambda: BinaryTreeNode(LABEL_EPSILON)  # noqa: E731 - local helper
        root = BinaryTreeNode(LABEL_UP, left=BinaryTreeNode(LABEL_DOWN, left=leaf(), right=leaf()), right=leaf())
        tree = UncertainBinaryTree(root=root)
        assert tree.num_nodes() == 5
        assert tree.depth() == 2


class TestEncodePolytree:
    def test_single_vertex(self):
        instance = ProbabilisticGraph(DiGraph(vertices=["only"]))
        tree = encode_polytree(instance)
        assert tree.root.is_leaf()
        assert tree.variables == []

    def test_single_edge_orientation(self):
        down = ProbabilisticGraph(DiGraph(edges=[("a", "b")]), {("a", "b"): "1/2"})
        tree = encode_polytree(down, root="a")
        assert tree.root.label == LABEL_DOWN
        assert tree.root.probability == Fraction(1, 2)
        up = ProbabilisticGraph(DiGraph(edges=[("b", "a")]), {("b", "a"): "1/3"})
        tree_up = encode_polytree(up, root="a")
        assert tree_up.root.label == LABEL_UP
        assert tree_up.root.probability == Fraction(1, 3)

    def test_every_edge_appears_exactly_once(self, rng):
        for _ in range(10):
            graph = random_polytree(rng.randint(2, 8), ("_",), rng)
            instance = attach_random_probabilities(graph, rng)
            tree = encode_polytree(instance)
            assert sorted(tree.variables, key=repr) == sorted(graph.edges(), key=repr)
            attach_nodes = [n for n in tree.nodes() if n.variable is not None]
            assert len(attach_nodes) == graph.num_edges()

    def test_tree_is_full_binary(self, rng):
        graph = random_polytree(7, ("_",), rng)
        instance = attach_random_probabilities(graph, rng)
        tree = encode_polytree(instance)
        for node in tree.nodes():
            assert (node.left is None) == (node.right is None)

    def test_structural_nodes_have_probability_one(self, rng):
        graph = random_polytree(6, ("_",), rng)
        tree = encode_polytree(ProbabilisticGraph.with_uniform_probability(graph, "1/2"))
        for node in tree.nodes():
            if node.variable is None:
                assert node.label == LABEL_EPSILON
                assert node.probability == 1
            else:
                assert node.label in (LABEL_UP, LABEL_DOWN)
                assert node.probability == Fraction(1, 2)

    def test_node_count_is_linear_in_instance(self):
        path = unlabeled_path(10)
        tree = encode_polytree(ProbabilisticGraph(path))
        # One attach node per edge plus one ε leaf per vertex.
        assert tree.num_nodes() == path.num_edges() + path.num_vertices()

    def test_rejects_non_polytrees(self):
        cyclic = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(ClassConstraintError):
            encode_polytree(ProbabilisticGraph(cyclic))
        disconnected = DiGraph(edges=[("a", "b")])
        disconnected.add_vertex("z")
        with pytest.raises(ClassConstraintError):
            encode_polytree(ProbabilisticGraph(disconnected))

    def test_unknown_root_rejected(self):
        instance = ProbabilisticGraph(unlabeled_path(2))
        with pytest.raises(AutomatonError):
            encode_polytree(instance, root="nope")

    def test_rooting_choice_changes_encoding_not_variables(self):
        tree = downward_tree({"b": "a", "c": "a", "d": "b"})
        instance = ProbabilisticGraph.with_uniform_probability(tree, "1/2")
        first = encode_polytree(instance, root="a")
        second = encode_polytree(instance, root="d")
        assert set(first.variables) == set(second.variables)
