"""Differential fuzz tests for compiled query plans.

Random drift sequences exercise the three ways probabilities reach a plan —
``plan.update`` serving streams, ``instance.set_probability`` drift under a
live plan cache (including across cache-eviction boundaries), and override
tables — and assert the results stay *bit-identical* (exact Fractions) to a
fresh ``solve()`` after every step.  Seeds are pinned (``REPRO_FUZZ_SEED``
overrides), so failures reproduce deterministically.

Also home to the mutation-time validation contract: plans must reject
out-of-range (or non-finite) probabilities at the call that introduces
them, on every plan kind.
"""

from __future__ import annotations

import os
import random
import warnings
from fractions import Fraction

import pytest

from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning, PlanError, ProbabilityError
from repro.graphs.builders import one_way_path
from repro.graphs.classes import GraphClass
from repro.plan import ComponentPlan, ConstantPlan, FallbackPlan
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads.generators import intractable_workload, workload_for_cell

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20170514"))

#: One entry per compiled-plan route: (query class, instance class, labeled,
#: solver kwargs).  The last two exercise the polytree DP and the d-DNNF
#: circuit (whose update() path is truly incremental).
PLAN_ROUTES = [
    (GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, {}),
    (GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True, {}),
    (GraphClass.DOWNWARD_TREE, GraphClass.UNION_DOWNWARD_TREE, False, {}),
    (GraphClass.UNION_ONE_WAY_PATH, GraphClass.UNION_POLYTREE, False, {}),
    (GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False, {"prefer": "automaton"}),
]


def fresh_exact(query, instance):
    """The ground truth: a cache-less exact solve."""
    solver = PHomSolver(plan_cache_size=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", IntractableFallbackWarning)
        return solver.solve(query, instance).probability


def random_probability(rng: random.Random) -> Fraction:
    """A random rational in [0, 1], hitting the 0 and 1 boundaries too."""
    roll = rng.random()
    if roll < 0.1:
        return Fraction(0)
    if roll < 0.2:
        return Fraction(1)
    return Fraction(rng.randint(1, 15), 16)


class TestServingUpdateStream:
    @pytest.mark.parametrize("route", range(len(PLAN_ROUTES)))
    def test_update_stream_matches_fresh_solve(self, route):
        query_class, instance_class, labeled, solver_kwargs = PLAN_ROUTES[route]
        rng = random.Random(SEED + route)
        workload = workload_for_cell(
            query_class, instance_class, labeled,
            query_size=rng.randint(2, 3), instance_size=rng.randint(5, 8), rng=rng,
        )
        solver = PHomSolver(**solver_kwargs)
        plan = solver.compile(workload.query, workload.instance)
        assert isinstance(plan, (ComponentPlan, ConstantPlan))
        # The mirror receives the same updates through set_probability, so a
        # fresh solve on it is the ground truth for the serving table.
        mirror = ProbabilisticGraph(
            workload.instance.graph, workload.instance.probabilities()
        )
        edges = workload.instance.edges()
        for step in range(25):
            edge = edges[rng.randrange(len(edges))]
            value = random_probability(rng)
            # Alternate Edge-object and (source, target) tuple keys.
            key = edge if step % 2 == 0 else (edge.source, edge.target)
            served = plan.update(key, value)
            mirror.set_probability(edge, value)
            assert served == fresh_exact(workload.query, mirror), (
                f"route {route} diverged at step {step} after setting "
                f"{edge!r} to {value}"
            )

    def test_reset_serving_reseeds_from_the_instance(self):
        rng = random.Random(SEED)
        workload = workload_for_cell(
            GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True,
            query_size=2, instance_size=6, rng=rng,
        )
        solver = PHomSolver()
        plan = solver.compile(workload.query, workload.instance)
        edge = workload.instance.edges()[0]
        plan.update(edge, Fraction(1, 3))
        plan.reset_serving()
        # After the reset the serving table must match the (unmutated)
        # instance again, not the drifted table.
        assert plan.update(edge, workload.instance.probability(edge)) == fresh_exact(
            workload.query, workload.instance
        )


class TestDriftAcrossCacheEviction:
    def test_solves_stay_exact_across_evictions(self):
        rng = random.Random(SEED + 1000)
        instance_workload = workload_for_cell(
            GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True,
            query_size=2, instance_size=8, rng=rng,
        )
        instance = instance_workload.instance
        queries = [
            one_way_path(labels, prefix=f"q{i}")
            for i, labels in enumerate([["R"], ["S"], ["R", "S"], ["S", "R"], ["R", "R"]])
        ]
        solver = PHomSolver(plan_cache_size=2)
        edges = instance.edges()
        for step in range(40):
            if step % 3 == 0:
                edge = edges[rng.randrange(len(edges))]
                instance.set_probability(edge, random_probability(rng))
            query = queries[rng.randrange(len(queries))]
            got = solver.solve(query, instance).probability
            assert got == fresh_exact(query, instance), f"diverged at step {step}"
        stats = solver.plan_cache.stats
        assert stats["size"] <= 2
        # Five distinct canonical forms through a 2-entry cache: evictions
        # and recompiles must actually have happened for this test to bite.
        assert stats["compiles"] > len(queries)

    def test_fallback_plans_follow_drift_too(self):
        rng = random.Random(SEED + 2000)
        workload = intractable_workload(7, rng)
        solver = PHomSolver()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            for step in range(5):
                edge = workload.instance.edges()[rng.randrange(workload.instance.graph.num_edges())]
                workload.instance.set_probability(edge, random_probability(rng))
                got = solver.solve(workload.query, workload.instance).probability
                assert got == fresh_exact(workload.query, workload.instance)


class TestMutationTimeValidation:
    @pytest.fixture
    def component_plan(self):
        rng = random.Random(SEED)
        workload = workload_for_cell(
            GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True,
            query_size=2, instance_size=6, rng=rng,
        )
        plan = PHomSolver().compile(workload.query, workload.instance)
        assert isinstance(plan, ComponentPlan)
        return workload, plan

    @pytest.mark.parametrize("bad", [Fraction(3, 2), -0.25, 2, float("nan"), float("inf"), "2/0"])
    def test_component_plan_update_rejects_bad_probabilities(self, component_plan, bad):
        workload, plan = component_plan
        edge = workload.instance.edges()[0]
        before = plan.evaluate()
        with pytest.raises(ProbabilityError):
            plan.update(edge, bad)
        # The failed update must not have touched the serving state.
        assert plan.evaluate() == before

    @pytest.mark.parametrize("bad", [Fraction(3, 2), -0.25, float("nan")])
    def test_evaluate_override_tables_reject_bad_probabilities(self, component_plan, bad):
        workload, plan = component_plan
        edge = workload.instance.edges()[0]
        with pytest.raises(ProbabilityError):
            plan.evaluate(probabilities={edge: bad})

    def test_constant_plan_update_validates_probability(self):
        rng = random.Random(SEED)
        workload = workload_for_cell(
            GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True,
            query_size=2, instance_size=6, rng=rng,
        )
        # A query over a label the instance lacks compiles to a constant.
        query = one_way_path(["Z"], prefix="q")
        plan = PHomSolver().compile(query, workload.instance)
        assert isinstance(plan, ConstantPlan)
        edge = workload.instance.edges()[0]
        assert plan.update(edge, Fraction(1, 2)) == 0
        with pytest.raises(ProbabilityError):
            plan.update(edge, Fraction(5, 2))
        with pytest.raises(ProbabilityError):
            plan.update(edge, float("nan"))
        # evaluate() overrides are validated on constant plans too, even
        # though the verdict never reads the table.
        with pytest.raises(ProbabilityError):
            plan.evaluate(probabilities={edge: 5})
        assert plan.evaluate(probabilities={edge: Fraction(1, 2)}) == 0

    def test_instance_mutation_validates(self):
        rng = random.Random(SEED)
        workload = intractable_workload(6, rng)
        edge = workload.instance.edges()[0]
        with pytest.raises(ProbabilityError):
            workload.instance.set_probability(edge, float("inf"))
        with pytest.raises(ProbabilityError):
            workload.instance.set_probability(edge, "not-a-number")

    def test_fallback_plan_has_no_update(self):
        rng = random.Random(SEED)
        workload = intractable_workload(6, rng)
        plan = PHomSolver().compile(workload.query, workload.instance)
        assert isinstance(plan, FallbackPlan)
        with pytest.raises(PlanError):
            plan.update(workload.instance.edges()[0], Fraction(1, 2))
