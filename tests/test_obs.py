"""Unit tests for the observability substrate (`repro.obs`).

The metrics registry and the tracer are dependency-free and process-local
by design; these tests pin their contracts — snapshot shapes, merge
semantics, the sampling decision, span parenting, suppression depth,
the write-behind sink, and the trace-file invariants `repro trace
--validate` enforces.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    MetricsRegistry,
    counter_samples,
    counter_total,
    counter_value,
    histogram_quantile,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import (
    CLOCK_SLACK_S,
    NULL_TRACER,
    SINK_BATCH,
    Span,
    Tracer,
    current_tracer,
    read_trace,
    render_trace,
    set_tracer,
    validate_trace,
)


class TestMetricsFamilies:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        served = registry.counter("t_requests_total", "Requests.", ("route",))
        served.labels("exact-dp").inc()
        served.labels("exact-dp").inc(2)
        served.labels("karp-luby").inc(5)
        snap = registry.snapshot()
        assert counter_value(snap, "t_requests_total", ("exact-dp",)) == 3.0
        assert counter_value(snap, "t_requests_total", ("karp-luby",)) == 5.0
        assert counter_total(snap, "t_requests_total") == 8.0
        assert counter_value(snap, "t_requests_total", ("missing",)) == 0.0
        assert counter_samples(snap, "absent") == []

    def test_counters_are_monotone(self):
        counter = MetricsRegistry().counter("t_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("t_depth")
        gauge.set(4)
        gauge.labels().inc()
        gauge.labels().inc(-2)
        assert gauge.value() == 3.0

    def test_histogram_buckets_observe_inclusive_upper_bound(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_ms", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            histogram.observe(value)
        sample = registry.snapshot()["histograms"]["t_ms"]["samples"][0][1]
        assert sample["counts"] == [2, 0, 1, 1]  # 1.0 lands in the <=1 bucket
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(104.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("t_ms", buckets=(2.0, 1.0))

    def test_get_or_create_is_idempotent_but_typed(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total", "x", ("a",))
        assert registry.counter("t_total", "x", ("a",)) is first
        with pytest.raises(ValueError):
            registry.gauge("t_total")
        with pytest.raises(ValueError):
            registry.counter("t_total", "x", ("other",))

    def test_label_arity_is_checked(self):
        served = MetricsRegistry().counter("t_total", labelnames=("route",))
        with pytest.raises(ValueError):
            served.labels("a", "b")

    def test_default_buckets_are_log_scale(self):
        assert DEFAULT_BUCKETS_MS[0] == 0.001
        assert len(DEFAULT_BUCKETS_MS) == 28
        ratios = {
            round(b / a)
            for a, b in zip(DEFAULT_BUCKETS_MS, DEFAULT_BUCKETS_MS[1:])
        }
        assert ratios == {2}


class TestSnapshotsAndMerging:
    def _snapshot(self, route_count):
        registry = MetricsRegistry()
        registry.counter("t_requests_total", "Requests.", ("route",)).labels(
            "exact-dp"
        ).inc(route_count)
        registry.gauge("t_depth").set(route_count)
        histogram = registry.histogram("t_ms")
        histogram.observe(0.5)
        return registry.snapshot()

    def test_snapshot_is_json_roundtrippable(self):
        snap = self._snapshot(2)
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_sums_counters_and_histograms_keeps_last_gauge(self):
        merged = merge_snapshots([self._snapshot(2), self._snapshot(5)])
        assert counter_value(merged, "t_requests_total", ("exact-dp",)) == 7.0
        assert merged["gauges"]["t_depth"]["samples"][0][1] == 5.0
        sample = merged["histograms"]["t_ms"]["samples"][0][1]
        assert sample["count"] == 2 and sum(sample["counts"]) == 2

    def test_merge_leaves_inputs_untouched(self):
        one, two = self._snapshot(1), self._snapshot(1)
        merge_snapshots([one, two])
        assert counter_total(one, "t_requests_total") == 1.0

    def test_merge_rejects_mismatched_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("t_ms", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([self._snapshot(1), registry.snapshot()])

    def test_render_prometheus_text_format(self):
        text = render_prometheus(self._snapshot(3))
        assert "# TYPE t_requests_total counter" in text
        assert 't_requests_total{route="exact-dp"} 3' in text
        assert "# TYPE t_ms histogram" in text
        assert 't_ms_bucket{le="+Inf"} 1' in text
        assert "t_ms_count 1" in text
        assert render_prometheus({"counters": {}}) == ""


class TestHistogramQuantile:
    def test_interpolates_within_the_winning_bucket(self):
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 4, 0, 0]  # four observations in (1, 2]
        assert histogram_quantile(bounds, counts, 0.5) == pytest.approx(1.5)
        assert histogram_quantile(bounds, counts, 1.0) == pytest.approx(2.0)

    def test_overflow_bucket_clamps_to_last_bound(self):
        assert histogram_quantile((1.0, 2.0), [0, 0, 3], 0.99) == 2.0

    def test_empty_histogram_and_bad_quantile(self):
        assert histogram_quantile((1.0,), [0, 0], 0.5) == 0.0
        with pytest.raises(ValueError):
            histogram_quantile((1.0,), [1, 0], 1.5)


class TestNullTracer:
    def test_disabled_path_is_inert(self):
        assert not NULL_TRACER
        assert current_tracer() is NULL_TRACER
        span = NULL_TRACER.span("anything")
        assert not span
        with span as inner:
            inner.attrs["dropped"] = True  # discarded, not stored
        assert dict(inner.attrs) == {}
        assert NULL_TRACER.span("x") is span  # one shared no-op span
        assert NULL_TRACER.context() is None
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.phase_totals(NULL_TRACER.mark()) == {}

    def test_set_tracer_installs_and_restores(self):
        tracer = Tracer(sample_rate=1.0)
        previous = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(previous)
        assert current_tracer() is NULL_TRACER


class TestTracer:
    def test_sample_rate_is_validated(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_nested_spans_parent_under_the_stack_top(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        records = tracer.drain()
        assert [r["name"] for r in records] == ["child", "root"]
        assert records[0]["parent"] == records[1]["span"]
        assert records[1]["parent"] is None
        assert validate_trace(records) == []

    def test_span_records_wall_and_cpu_time_and_attrs(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("work") as span:
            span.attrs["route"] = "exact-dp"
            sum(range(10000))
        (record,) = tracer.drain()
        assert record["dur_ms"] >= 0.0 and record["cpu_ms"] >= 0.0
        assert record["status"] == "ok"
        assert record["attrs"] == {"route": "exact-dp"}
        assert record["ts"] > 0

    def test_exception_marks_the_span_status_error(self):
        tracer = Tracer(sample_rate=1.0)
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        (record,) = tracer.drain()
        assert record["status"] == "error"

    def test_unsampled_root_suppresses_the_whole_tree(self):
        tracer = Tracer(sample_rate=0.0)
        with tracer.span("root") as root:
            assert not root
            with tracer.span("child") as child:
                assert not child
        assert tracer.drain() == []
        # Recording state is balanced: a fully sampled tracer still works.
        sampled = Tracer(sample_rate=1.0)
        with sampled.span("after"):
            pass
        assert len(sampled.drain()) == 1

    def test_sampling_decision_is_per_root_and_seeded(self):
        decisions = []
        for _ in range(2):
            tracer = Tracer(sample_rate=0.5, seed=7)
            run = []
            for _ in range(32):
                with tracer.span("root") as root:
                    run.append(bool(root))
            decisions.append(run)
        assert decisions[0] == decisions[1]  # seeded: same draws run to run
        assert any(decisions[0]) and not all(decisions[0])

    def test_detached_spans_and_explicit_end(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("root") as root:
            op = tracer.start_span("dispatch", parent=root)
            tracer.end(op, "retried")
            retry = tracer.start_span("dispatch", parent=(root.trace_id, root.span_id))
            tracer.end(retry, "ok")
        records = tracer.drain()
        statuses = {r["name"]: r["status"] for r in records if r["name"] == "root"}
        assert statuses["root"] == "ok"
        dispatch = [r for r in records if r["name"] == "dispatch"]
        assert [d["status"] for d in dispatch] == ["retried", "ok"]
        assert all(d["parent"] == root.span_id for d in dispatch)
        assert validate_trace(records) == []

    def test_context_adopt_release_parent_remote_work(self):
        coordinator = Tracer(sample_rate=1.0)
        worker = Tracer(sample_rate=0.0)  # adoption-only, like a pool worker
        worker._prefix = "w0"  # ids are pid-prefixed; fake the child process
        with coordinator.span("service.submit_many") as root:
            context = coordinator.context(root)
            assert context == (root.trace_id, root.span_id)
            token = worker.adopt(context)
            with worker.span("worker.solve") as solve:
                assert solve  # adopted work records even at rate 0.0
                assert solve.trace_id == root.trace_id
                assert solve.parent_id == root.span_id
            worker.release(token)
            with worker.span("idle") as idle:
                assert not idle  # released: back to the 0.0 sampling decision
            coordinator.ingest(worker.drain())
        records = coordinator.drain()
        assert validate_trace(records) == []
        assert {r["name"] for r in records} == {
            "service.submit_many", "worker.solve"
        }

    def test_adopting_none_is_a_no_op(self):
        worker = Tracer(sample_rate=0.0)
        token = worker.adopt(None)
        with worker.span("work") as span:
            assert not span
        worker.release(token)
        assert worker.drain() == []

    def test_mark_and_phase_totals_cover_only_the_suffix(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("solve"):
            with tracer.span("compile"):
                pass
            with tracer.span("compile"):
                pass
        totals = tracer.phase_totals(mark)
        assert set(totals) == {"solve", "compile"}
        assert totals["compile"] >= 0.0
        assert tracer.phase_totals(tracer.mark()) == {}

    def test_ring_is_bounded(self):
        tracer = Tracer(sample_rate=1.0, ring_size=8)
        for _ in range(20):
            with tracer.span("s"):
                pass
        assert len(tracer.drain()) == 8


class TestSink:
    def test_sink_is_write_behind_and_complete_after_close(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sample_rate=1.0, sink_path=path)
        for _ in range(3):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        tracer.close()
        records = read_trace(path)
        assert len(records) == 6
        assert validate_trace(records) == []

    def test_sink_flushes_on_its_own_past_the_batch_threshold(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sample_rate=1.0, sink_path=path)
        for _ in range(SINK_BATCH + 10):
            with tracer.span("s"):
                pass
        written = read_trace(path)  # before close: at least one batch is out
        assert len(written) >= SINK_BATCH
        tracer.close()
        assert len(read_trace(path)) == SINK_BATCH + 10

    def test_close_is_idempotent_and_flush_without_sink_is_a_no_op(self, tmp_path):
        Tracer(sample_rate=1.0).flush()  # no sink: nothing to do
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sample_rate=1.0, sink_path=path)
        with tracer.span("s"):
            pass
        tracer.close()
        tracer.close()
        assert len(read_trace(path)) == 1


class TestTraceFileChecks:
    def _records(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        return tracer.drain()

    def test_valid_trace_has_no_violations(self):
        assert validate_trace(self._records()) == []

    def test_orphan_parent_is_reported(self):
        records = self._records()
        records[0]["parent"] = "nope-1"
        problems = validate_trace(records)
        assert any("orphan" in p for p in problems)

    def test_duplicate_span_ids_are_reported(self):
        records = self._records()
        records[1]["span"] = records[0]["span"]
        assert any("duplicate" in p for p in validate_trace(records))

    def test_unclosed_status_and_negative_duration_are_reported(self):
        records = self._records()
        records[0]["status"] = "open"
        records[1]["dur_ms"] = -1.0
        problems = validate_trace(records)
        assert any("not closed" in p for p in problems)
        assert any("negative duration" in p for p in problems)

    def test_child_starting_before_its_parent_is_reported(self):
        records = self._records()
        child = next(r for r in records if r["name"] == "child")
        child["ts"] = min(r["ts"] for r in records) - 10 * CLOCK_SLACK_S
        assert any("before its parent" in p for p in validate_trace(records))

    def test_missing_fields_are_reported(self):
        assert any(
            "missing field" in p for p in validate_trace([{"span": "x"}])
        )

    def test_cross_trace_parent_is_reported(self):
        records = self._records()
        child = next(r for r in records if r["name"] == "child")
        child["trace"] = "t-other"
        assert any("another trace" in p for p in validate_trace(records))

    def test_render_trace_shows_tree_totals_and_coverage(self):
        text = render_trace(self._records())
        assert "root" in text and "child" in text
        assert "phase totals:" in text
        assert "coverage:" in text
        assert text.index("root") < text.index("child")

    def test_read_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sample_rate=1.0, sink_path=path)
        with tracer.span("s") as span:
            span.attrs["k"] = "v"
        tracer.close()
        (record,) = read_trace(path)
        assert record["name"] == "s" and record["attrs"] == {"k": "v"}


class TestSpanObject:
    def test_span_record_matches_ring_record(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.span("s") as span:
            pass
        assert isinstance(span, Span)
        record = span.record()
        (ring_record,) = tracer.drain()
        ring_record.pop("seq")
        assert record == ring_record
