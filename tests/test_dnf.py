"""Unit tests for positive DNF formulas and their probability evaluation."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import LineageError
from repro.lineage.dnf import PositiveDNF


def _uniform(variables, value=Fraction(1, 2)):
    return {v: value for v in variables}


class TestBasics:
    def test_empty_formula_is_false(self):
        formula = PositiveDNF()
        assert formula.is_false()
        assert not formula.is_true()
        assert not formula.evaluate({"x": True})
        assert formula.probability({}) == 0

    def test_empty_clause_is_true(self):
        formula = PositiveDNF([[]])
        assert formula.is_true()
        assert formula.evaluate({})
        assert formula.probability({}) == 1
        assert formula.probability_by_enumeration({}) == 1
        assert formula.probability_inclusion_exclusion({}) == 1

    def test_duplicate_clauses_collapse(self):
        formula = PositiveDNF([["x", "y"], ["y", "x"]])
        assert formula.num_clauses() == 1
        assert len(formula) == 1

    def test_variables_and_evaluation(self):
        formula = PositiveDNF([["x", "y"], ["z"]])
        assert formula.variables() == {"x", "y", "z"}
        assert formula.evaluate({"z": True})
        assert formula.evaluate({"x": True, "y": True})
        assert not formula.evaluate({"x": True})
        assert not formula.evaluate({})


class TestProbability:
    def test_single_clause(self):
        formula = PositiveDNF([["x", "y"]])
        probabilities = {"x": Fraction(1, 2), "y": Fraction(1, 3)}
        expected = Fraction(1, 6)
        assert formula.probability(probabilities) == expected
        assert formula.probability_by_enumeration(probabilities) == expected
        assert formula.probability_inclusion_exclusion(probabilities) == expected

    def test_two_disjoint_clauses(self):
        formula = PositiveDNF([["x"], ["y"]])
        probabilities = {"x": Fraction(1, 2), "y": Fraction(1, 3)}
        expected = 1 - Fraction(1, 2) * Fraction(2, 3)
        assert formula.probability(probabilities) == expected

    def test_overlapping_clauses(self):
        formula = PositiveDNF([["x", "y"], ["y", "z"]])
        probabilities = _uniform("xyz")
        # Pr(y and (x or z)) = 1/2 * 3/4.
        assert formula.probability(probabilities) == Fraction(3, 8)

    def test_all_methods_agree_on_small_formulas(self, rng):
        variables = list("abcde")
        for _ in range(20):
            clauses = []
            for _ in range(rng.randint(1, 4)):
                size = rng.randint(1, 3)
                clauses.append(rng.sample(variables, size))
            formula = PositiveDNF(clauses)
            probabilities = {v: Fraction(rng.randint(0, 4), 4) for v in variables}
            reference = formula.probability_by_enumeration(probabilities)
            assert formula.probability(probabilities) == reference
            assert formula.probability_inclusion_exclusion(probabilities) == reference

    def test_explicit_order(self):
        formula = PositiveDNF([["x", "y"], ["y", "z"]])
        probabilities = _uniform("xyz")
        assert formula.probability(probabilities, order=["y", "x", "z"]) == Fraction(3, 8)

    def test_order_missing_variable_raises(self):
        formula = PositiveDNF([["x", "y"]])
        with pytest.raises(LineageError):
            formula.probability(_uniform("xy"), order=["x"])

    def test_variables_with_probability_zero_or_one(self):
        formula = PositiveDNF([["x", "y"], ["z"]])
        probabilities = {"x": Fraction(1), "y": Fraction(1, 2), "z": Fraction(0)}
        assert formula.probability(probabilities) == Fraction(1, 2)


class TestBetaAcyclicity:
    def test_nested_clauses_are_beta_acyclic(self):
        formula = PositiveDNF([["a"], ["a", "b"], ["a", "b", "c"]])
        assert formula.is_beta_acyclic()
        order = formula.beta_elimination_order()
        assert order is not None

    def test_triangle_clauses_are_not_beta_acyclic(self):
        formula = PositiveDNF([["a", "b"], ["b", "c"], ["a", "c"]])
        assert not formula.is_beta_acyclic()
        assert formula.beta_elimination_order() is None

    def test_non_beta_acyclic_probability_still_exact(self):
        formula = PositiveDNF([["a", "b"], ["b", "c"], ["a", "c"]])
        probabilities = _uniform("abc")
        assert formula.probability(probabilities) == formula.probability_by_enumeration(
            probabilities
        )


class TestEquality:
    def test_equality_is_clause_set_equality(self):
        assert PositiveDNF([["x"], ["y"]]) == PositiveDNF([["y"], ["x"]])
        assert PositiveDNF([["x"]]) != PositiveDNF([["y"]])
        assert PositiveDNF() != "not a formula"
