"""End-to-end observability tests for the serving stack.

Covers the traced request path (per-phase timing on results, the span
forest on disk, dispatch→solve parenting across the worker pipes), the
registry-backed ``ServiceStats`` consistency guarantee under stealing and
restarts, chaos tracing (killed workers close their in-flight dispatch
spans ``retried`` and retries parent cleanly), the JSONL result schema,
the slow-query log, and the ``repro metrics`` / ``trace`` / ``top`` CLI.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main as cli_main
from repro.core.solver import PHomSolver
from repro.graphs.classes import GraphClass
from repro.graphs.serialization import (
    graph_to_dict,
    probabilistic_graph_to_dict,
)
from repro.obs.trace import (
    NULL_TRACER,
    current_tracer,
    read_trace,
    render_trace,
    validate_trace,
)
from repro.service import (
    Fault,
    FaultPlan,
    QueryService,
    ServiceRequest,
    run_jsonl_session,
)
from repro.workloads.generators import (
    attach_random_probabilities,
    make_instance,
    query_traffic_trace,
)


def build_instance(seed: int):
    graph = make_instance(GraphClass.UNION_DOWNWARD_TREE, True, 16, seed)
    return attach_random_probabilities(graph, seed)


def trace_queries(seed: int, count: int = 8):
    trace = query_traffic_trace(
        count, 5, skew=1.2, query_class=GraphClass.ONE_WAY_PATH, rng=seed
    )
    return trace.queries()


def skewed_batch(ids, queries):
    """All-cold batch concentrating work on ``ids[0]`` — trips stealing."""
    requests = [ServiceRequest(query, ids[0]) for query in queries]
    requests += [ServiceRequest(queries[0], inst) for inst in ids[1:]]
    return requests


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = cli_main(argv, out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestTracedService:
    def test_inline_run_times_phases_and_writes_a_valid_trace(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        queries = trace_queries(11, 4)
        with QueryService(
            num_workers=0, trace_sample_rate=1.0, trace_path=sink
        ) as service:
            inst = service.register_instance(build_instance(11))
            results = service.submit_many(
                [ServiceRequest(query, inst) for query in queries]
            )
            # The installed tracer is restored on close.
            assert current_tracer() is not NULL_TRACER
        assert current_tracer() is NULL_TRACER
        for result in results:
            assert result.duration_ms is not None and result.duration_ms >= 0
            assert result.timing is not None
            assert "worker.solve" in result.timing
        # A cold exact-dp request breaks down into plan phases too.
        cold = results[0].timing
        assert "plan.lookup" in cold
        records = read_trace(sink)
        assert validate_trace(records) == []
        names = {record["name"] for record in records}
        assert "service.submit_many" in names
        assert "worker.solve" in names
        assert "plan.compile" in names

    def test_pool_run_parents_worker_spans_under_dispatch(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        queries = trace_queries(13, 6)
        with QueryService(
            num_workers=2, trace_sample_rate=1.0, trace_path=sink
        ) as service:
            ids = [service.register_instance(build_instance(s)) for s in (13, 14)]
            results = service.submit_many(skewed_batch(ids, queries))
        assert not any(result.error for result in results)
        assert all(result.timing for result in results if not result.coalesced)
        records = read_trace(sink)
        assert validate_trace(records) == []
        by_id = {record["span"]: record for record in records}
        solves = [r for r in records if r["name"] == "worker.solve"]
        dispatches = [r for r in records if r["name"] == "service.dispatch"]
        assert solves and dispatches
        for solve in solves:
            parent = by_id[solve["parent"]]
            assert parent["name"] == "service.dispatch"
            # The worker that ran the span is the worker it was sent to.
            assert solve["attrs"]["worker"] == parent["attrs"]["worker"]
        roots = [r for r in records if r["parent"] is None]
        assert {r["name"] for r in roots} == {"service.submit_many"}
        for dispatch in dispatches:
            assert by_id[dispatch["parent"]]["name"] == "service.submit_many"

    def test_phase_sums_cover_the_batch_wall_time(self, tmp_path):
        # The acceptance bar: the rendered tree's per-phase sums account
        # for the bulk of root wall time (the bench artifact shows ~95%;
        # assert a conservative floor to stay robust on noisy CPUs).
        sink = str(tmp_path / "trace.jsonl")
        queries = trace_queries(17, 12)
        with QueryService(
            num_workers=2, trace_sample_rate=1.0, trace_path=sink
        ) as service:
            ids = [service.register_instance(build_instance(s)) for s in (17, 18)]
            service.submit_many(skewed_batch(ids, queries))
        records = read_trace(sink)
        assert validate_trace(records) == []
        children_ms = {}
        for record in records:
            if record["parent"] is not None:
                children_ms[record["parent"]] = (
                    children_ms.get(record["parent"], 0.0) + record["dur_ms"]
                )
        roots = [r for r in records if r["parent"] is None]
        root_ms = sum(r["dur_ms"] for r in roots)
        covered_ms = sum(children_ms.get(r["span"], 0.0) for r in roots)
        assert root_ms > 0.0
        assert covered_ms >= 0.5 * root_ms
        rendered = render_trace(records)
        assert "coverage:" in rendered and "phase totals:" in rendered

    def test_sampling_rate_zero_point_means_partial_traces(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with QueryService(
            num_workers=0, trace_sample_rate=0.5, trace_path=sink, seed=3
        ) as service:
            inst = service.register_instance(build_instance(19))
            for query in trace_queries(19, 10):
                service.submit_many([ServiceRequest(query, inst)])
        records = read_trace(sink)
        assert validate_trace(records) == []
        roots = [r for r in records if r["parent"] is None]
        # Seeded per-root sampling: some batches traced, some not.
        assert 0 < len(roots) < 10

    def test_default_off_requests_carry_duration_but_no_timing(self):
        with QueryService(num_workers=0) as service:
            inst = service.register_instance(build_instance(23))
            (result,) = service.submit_many(
                [ServiceRequest(trace_queries(23, 1)[0], inst)]
            )
        assert result.duration_ms is not None
        assert result.timing is None
        assert current_tracer() is NULL_TRACER


class TestStatsConsistency:
    def test_totals_equal_worker_rows_under_steals_and_restarts(self):
        # Satellite regression: ServiceStats and the per-worker rows are
        # two renderings of one registry snapshot.  Stealing moves work
        # off the owning shard and a kill forces a restart + retries —
        # the exact history that used to let independently-kept tallies
        # drift apart.
        queries = trace_queries(31, 10)
        plan = FaultPlan(
            faults=(Fault(kind="kill", worker=1, after_messages=1),), seed=7
        )
        with QueryService(
            num_workers=2, fault_plan=plan, backoff_base=0.01
        ) as service:
            ids = [service.register_instance(build_instance(s)) for s in (31, 32)]
            results = service.submit_many(skewed_batch(ids, queries))
            stats = service.stats()
        assert not any(result.error for result in results)
        assert stats.steals >= 1
        assert stats.restarts >= 1
        rows = {row["worker"]: row for row in stats.workers}
        assert sorted(rows) == [0, 1]
        assert stats.dispatched == sum(
            row["dispatched"] for row in stats.workers
        )
        assert stats.requests == len(queries) + 1
        assert stats.coalesced == stats.requests - stats.dispatched
        # The same registry also feeds the merged Prometheus snapshot.
        snapshot = None
        with QueryService(num_workers=2) as service:
            ids = [service.register_instance(build_instance(s)) for s in (33, 34)]
            service.submit_many(skewed_batch(ids, queries))
            stats = service.stats()
            snapshot = service.metrics_snapshot()
        from repro.obs.metrics import counter_total

        assert counter_total(
            snapshot, "repro_service_dispatched_total"
        ) == stats.dispatched
        assert counter_total(
            snapshot, "repro_worker_requests_total"
        ) == sum(row["requests"] for row in stats.workers)


class TestChaosTracing:
    def test_killed_worker_spans_close_retried_and_retries_parent_cleanly(
        self, tmp_path
    ):
        sink = str(tmp_path / "trace.jsonl")
        queries = trace_queries(41, 8)
        # Worker 0 owns the hot shard of the skewed batch; killing it on
        # its second message lands the SIGKILL while its solve dispatch
        # is in flight.
        plan = FaultPlan(
            faults=(Fault(kind="kill", worker=0, after_messages=1),), seed=5
        )
        with QueryService(
            num_workers=2,
            fault_plan=plan,
            backoff_base=0.01,
            trace_sample_rate=1.0,
            trace_path=sink,
            seed=5,
        ) as service:
            ids = [service.register_instance(build_instance(s)) for s in (41, 42)]
            results = service.submit_many(skewed_batch(ids, queries))
            stats = service.stats()
        assert not any(result.error for result in results)
        assert stats.restarts >= 1
        records = read_trace(sink)
        # The invariant suite is the headline: no orphans, no duplicate
        # span ids, parents precede children — even through a SIGKILL.
        assert validate_trace(records) == []
        by_id = {record["span"]: record for record in records}
        dispatches = [r for r in records if r["name"] == "service.dispatch"]
        retried = [r for r in dispatches if r["status"] == "retried"]
        assert retried, "the kill must close at least one attempt 'retried'"
        retries = [r for r in dispatches if r["attrs"].get("attempt", 1) > 1]
        assert retries, "a fresh dispatch span must cover the retry"
        for record in retried + retries:
            assert by_id[record["parent"]]["name"] == "service.submit_many"
        # Every span the dead worker did ship still parents to a known id.
        for solve in (r for r in records if r["name"] == "worker.solve"):
            assert solve["parent"] in by_id


class TestJsonlSchema:
    def make_lines(self, instance, query):
        return [
            json.dumps(
                {
                    "op": "register",
                    "id": "inst",
                    "instance": probabilistic_graph_to_dict(instance),
                }
            ),
            json.dumps(
                {
                    "op": "solve",
                    "id": "r1",
                    "instance": "inst",
                    "query": graph_to_dict(query),
                }
            ),
        ]

    def test_result_records_carry_worker_and_duration(self):
        lines = self.make_lines(build_instance(51), trace_queries(51, 1)[0])
        out = io.StringIO()
        with QueryService(num_workers=0) as service:
            assert run_jsonl_session(lines, out, service) == 0
        record = next(
            json.loads(line)
            for line in out.getvalue().splitlines()
            if json.loads(line).get("id") == "r1"
        )
        assert record["worker"] == 0
        assert isinstance(record["duration_ms"], float)
        assert record["duration_ms"] >= 0.0
        for field in (
            "id", "probability", "float", "method", "proposition",
            "query_class", "instance_class", "worker", "cached", "coalesced",
            "duration_ms",
        ):
            assert field in record
        # Untraced sessions have no per-phase breakdown to ship.
        assert "timing" not in record

    def test_traced_session_ships_timing_in_records(self, tmp_path):
        lines = self.make_lines(build_instance(53), trace_queries(53, 1)[0])
        out = io.StringIO()
        sink = str(tmp_path / "trace.jsonl")
        with QueryService(
            num_workers=0, trace_sample_rate=1.0, trace_path=sink
        ) as service:
            assert run_jsonl_session(lines, out, service) == 0
        record = json.loads(out.getvalue().splitlines()[-1])
        assert record["id"] == "r1"
        assert "worker.solve" in record["timing"]


class TestSlowQueryLog:
    def test_threshold_zero_records_every_request_with_provenance(self):
        queries = trace_queries(61, 3)
        with QueryService(num_workers=0, slow_query_ms=0.0) as service:
            inst = service.register_instance(build_instance(61))
            results = service.submit_many(
                [ServiceRequest(query, inst) for query in queries]
            )
            entries = list(service.slow_queries)
        dispatched = sum(1 for result in results if not result.coalesced)
        assert len(entries) == dispatched
        for entry in entries:
            assert entry["worker"] == 0
            assert entry["duration_ms"] >= 0.0
            assert {"method", "instance", "cached", "stolen", "attempts"} <= set(
                entry
            )

    def test_high_threshold_records_nothing(self):
        with QueryService(num_workers=0, slow_query_ms=1e9) as service:
            inst = service.register_instance(build_instance(63))
            service.submit_many([ServiceRequest(trace_queries(63, 1)[0], inst)])
            assert service.slow_queries == []


class TestObsCli:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        """One traced serve --batch session: metrics snapshot + trace."""
        instance = build_instance(71)
        query = trace_queries(71, 1)[0]
        requests = tmp_path / "requests.jsonl"
        lines = TestJsonlSchema().make_lines(instance, query)
        requests.write_text("\n".join(lines) + "\n")
        snapshot = tmp_path / "metrics.json"
        trace_file = tmp_path / "trace.jsonl"
        code, _out, _err = run_cli(
            [
                "serve", "--batch", str(requests), "--workers", "0",
                "--trace", str(trace_file), "--trace-sample-rate", "1.0",
                "--metrics-out", str(snapshot),
            ]
        )
        assert code == 0
        return snapshot, trace_file

    def test_metrics_renders_prometheus_text(self, artifacts):
        snapshot, _trace = artifacts
        code, out, _err = run_cli(["metrics", str(snapshot)])
        assert code == 0
        assert "# TYPE repro_service_requests_total counter" in out
        assert 'repro_service_dispatched_total{worker="0"} 1' in out
        assert 'repro_request_duration_ms_bucket{route="exact-dp",le=' in out

    def test_trace_renders_and_validates(self, artifacts):
        _snapshot, trace_file = artifacts
        code, out, _err = run_cli(["trace", str(trace_file)])
        assert code == 0
        assert "service.submit_many" in out
        assert "worker.solve" in out
        assert "phase totals:" in out
        code, out, _err = run_cli(["trace", "--validate", str(trace_file)])
        assert code == 0
        assert "all invariants hold" in out

    def test_trace_validate_fails_on_a_broken_file(self, tmp_path, artifacts):
        _snapshot, trace_file = artifacts
        records = read_trace(str(trace_file))
        records[-1]["parent"] = "missing-9"
        broken = tmp_path / "broken.jsonl"
        broken.write_text(
            "\n".join(json.dumps(record) for record in records) + "\n"
        )
        code, _out, err = run_cli(["trace", "--validate", str(broken)])
        assert code == 1
        assert "orphan" in err

    def test_top_renders_the_dashboard(self, artifacts):
        snapshot, _trace = artifacts
        code, out, _err = run_cli(["top", str(snapshot)])
        assert code == 0
        assert "exact-dp" in out
        assert "requests" in out
        code, out, _err = run_cli(
            [
                "top", "--watch", "--interval", "0.01", "--iterations", "2",
                str(snapshot),
            ]
        )
        assert code == 0
        assert "exact-dp" in out
