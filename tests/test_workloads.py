"""Unit tests for the benchmark workload generators."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ReproError
from repro.graphs.classes import GraphClass, graph_in_class
from repro.graphs.builders import one_way_path
from repro.workloads import attach_random_probabilities, make_query, workload_for_cell


class TestAttachRandomProbabilities:
    def test_probabilities_are_valid(self, rng):
        instance = attach_random_probabilities(one_way_path(["R"] * 10), rng)
        for probability in instance.probabilities().values():
            assert 0 < probability <= 1

    def test_certain_fraction_extremes(self, rng):
        all_certain = attach_random_probabilities(one_way_path(["R"] * 10), rng, certain_fraction=1.0)
        assert all(p == 1 for p in all_certain.probabilities().values())
        none_certain = attach_random_probabilities(one_way_path(["R"] * 10), rng, certain_fraction=0.0)
        assert all(p < 1 for p in none_certain.probabilities().values())

    def test_probabilities_use_requested_denominator(self, rng):
        instance = attach_random_probabilities(
            one_way_path(["R"] * 6), rng, certain_fraction=0.0, denominator=4
        )
        for probability in instance.probabilities().values():
            assert probability.denominator in (1, 2, 4)


class TestMakeQuery:
    @pytest.mark.parametrize("query_class", list(GraphClass))
    @pytest.mark.parametrize("labeled", [True, False])
    def test_generated_queries_belong_to_their_class(self, query_class, labeled, rng):
        query = make_query(query_class, labeled, 4, rng)
        assert graph_in_class(query, query_class)
        if not labeled:
            assert query.is_unlabeled()

    def test_size_knob_is_monotone_in_expectation(self, rng):
        small = make_query(GraphClass.DOWNWARD_TREE, True, 2, rng)
        large = make_query(GraphClass.DOWNWARD_TREE, True, 12, rng)
        assert large.num_vertices() > small.num_vertices()


class TestWorkloadForCell:
    @pytest.mark.parametrize(
        "query_class,instance_class,labeled",
        [
            (GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True),
            (GraphClass.CONNECTED, GraphClass.TWO_WAY_PATH, True),
            (GraphClass.UNION_DOWNWARD_TREE, GraphClass.POLYTREE, False),
            (GraphClass.ALL, GraphClass.DOWNWARD_TREE, False),
        ],
    )
    def test_workload_matches_requested_cell(self, query_class, instance_class, labeled, rng):
        workload = workload_for_cell(query_class, instance_class, labeled, 3, 6, rng)
        assert graph_in_class(workload.query, query_class)
        assert graph_in_class(workload.instance.graph, instance_class)
        assert workload.query_class is query_class
        assert workload.instance_class is instance_class
        assert workload.labeled is labeled

    def test_workloads_are_reproducible_from_seed(self):
        first = workload_for_cell(GraphClass.ONE_WAY_PATH, GraphClass.POLYTREE, True, 3, 6, rng=7)
        second = workload_for_cell(GraphClass.ONE_WAY_PATH, GraphClass.POLYTREE, True, 3, 6, rng=7)
        assert first.query == second.query
        assert first.instance.graph == second.instance.graph
        assert first.instance.probabilities() == second.instance.probabilities()
