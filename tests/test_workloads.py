"""Unit tests for the benchmark workload generators."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ReproError
from repro.graphs.classes import GraphClass, graph_in_class
from repro.graphs.builders import one_way_path
from repro.workloads import (
    attach_random_probabilities,
    chaos_traffic_trace,
    make_query,
    query_traffic_trace,
    workload_for_cell,
    zipf_ranks,
)


class TestAttachRandomProbabilities:
    def test_probabilities_are_valid(self, rng):
        instance = attach_random_probabilities(one_way_path(["R"] * 10), rng)
        for probability in instance.probabilities().values():
            assert 0 < probability <= 1

    def test_certain_fraction_extremes(self, rng):
        all_certain = attach_random_probabilities(one_way_path(["R"] * 10), rng, certain_fraction=1.0)
        assert all(p == 1 for p in all_certain.probabilities().values())
        none_certain = attach_random_probabilities(one_way_path(["R"] * 10), rng, certain_fraction=0.0)
        assert all(p < 1 for p in none_certain.probabilities().values())

    def test_probabilities_use_requested_denominator(self, rng):
        instance = attach_random_probabilities(
            one_way_path(["R"] * 6), rng, certain_fraction=0.0, denominator=4
        )
        for probability in instance.probabilities().values():
            assert probability.denominator in (1, 2, 4)


class TestMakeQuery:
    @pytest.mark.parametrize("query_class", list(GraphClass))
    @pytest.mark.parametrize("labeled", [True, False])
    def test_generated_queries_belong_to_their_class(self, query_class, labeled, rng):
        query = make_query(query_class, labeled, 4, rng)
        assert graph_in_class(query, query_class)
        if not labeled:
            assert query.is_unlabeled()

    def test_size_knob_is_monotone_in_expectation(self, rng):
        small = make_query(GraphClass.DOWNWARD_TREE, True, 2, rng)
        large = make_query(GraphClass.DOWNWARD_TREE, True, 12, rng)
        assert large.num_vertices() > small.num_vertices()


class TestWorkloadForCell:
    @pytest.mark.parametrize(
        "query_class,instance_class,labeled",
        [
            (GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True),
            (GraphClass.CONNECTED, GraphClass.TWO_WAY_PATH, True),
            (GraphClass.UNION_DOWNWARD_TREE, GraphClass.POLYTREE, False),
            (GraphClass.ALL, GraphClass.DOWNWARD_TREE, False),
        ],
    )
    def test_workload_matches_requested_cell(self, query_class, instance_class, labeled, rng):
        workload = workload_for_cell(query_class, instance_class, labeled, 3, 6, rng)
        assert graph_in_class(workload.query, query_class)
        assert graph_in_class(workload.instance.graph, instance_class)
        assert workload.query_class is query_class
        assert workload.instance_class is instance_class
        assert workload.labeled is labeled

    def test_workloads_are_reproducible_from_seed(self):
        first = workload_for_cell(GraphClass.ONE_WAY_PATH, GraphClass.POLYTREE, True, 3, 6, rng=7)
        second = workload_for_cell(GraphClass.ONE_WAY_PATH, GraphClass.POLYTREE, True, 3, 6, rng=7)
        assert first.query == second.query
        assert first.instance.graph == second.instance.graph
        assert first.instance.probabilities() == second.instance.probabilities()


class TestZipfTraffic:
    def test_ranks_are_in_range_and_reproducible(self):
        first = zipf_ranks(200, 10, 1.1, rng=5)
        second = zipf_ranks(200, 10, 1.1, rng=5)
        assert first == second
        assert all(0 <= rank < 10 for rank in first)

    def test_skew_concentrates_traffic_on_the_head(self):
        skewed = zipf_ranks(2000, 20, 1.5, rng=9)
        uniform = zipf_ranks(2000, 20, 0.0, rng=9)
        head_share = skewed.count(0) / len(skewed)
        uniform_share = uniform.count(0) / len(uniform)
        assert head_share > 2 * uniform_share
        assert uniform_share == pytest.approx(1 / 20, abs=0.03)

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ReproError):
            zipf_ranks(-1, 10, 1.0)
        with pytest.raises(ReproError):
            zipf_ranks(10, 0, 1.0)
        with pytest.raises(ReproError):
            zipf_ranks(10, 10, -0.5)

    def test_trace_queries_share_pool_objects(self):
        trace = query_traffic_trace(50, 5, skew=1.2, rng=13)
        queries = trace.queries()
        assert len(queries) == 50
        assert len(trace.pool) == 5
        assert all(any(q is p for p in trace.pool) for q in queries)
        assert 0 < trace.distinct_fraction() <= 0.1 + 5 / 50

    def test_trace_is_reproducible_and_class_constrained(self):
        first = query_traffic_trace(
            30, 4, skew=1.0, query_class=GraphClass.TWO_WAY_PATH, rng=17
        )
        second = query_traffic_trace(
            30, 4, skew=1.0, query_class=GraphClass.TWO_WAY_PATH, rng=17
        )
        assert first.requests == second.requests
        assert [q.edge_set() for q in first.pool] == [q.edge_set() for q in second.pool]
        for query in first.pool:
            assert graph_in_class(query, GraphClass.TWO_WAY_PATH)


class TestChaosTraffic:
    def test_hard_positions_are_salted_and_reproducible(self):
        trace, hard, positions = chaos_traffic_trace(
            100, 6, hard_every=25, num_uncertain_edges=6, rng=23
        )
        assert positions == (24, 49, 74, 99)
        assert len(trace.pool) == 7
        hard_index = len(trace.pool) - 1
        assert trace.pool[hard_index] is hard.query
        for position, request in enumerate(trace.requests):
            if position in positions:
                assert request == hard_index
            else:
                assert request < hard_index
        assert len(hard.instance.uncertain_edges()) == 6
        again, _, _ = chaos_traffic_trace(
            100, 6, hard_every=25, num_uncertain_edges=6, rng=23
        )
        assert again.requests == trace.requests

    def test_hard_every_must_be_positive(self):
        with pytest.raises(ReproError):
            chaos_traffic_trace(10, 2, hard_every=0)
