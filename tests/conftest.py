"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random
import signal
from fractions import Fraction

import pytest

from repro.graphs.builders import downward_tree, one_way_path, two_way_path
from repro.graphs.digraph import DiGraph
from repro.probability.prob_graph import ProbabilisticGraph

#: Hard wall-clock ceiling (seconds) for any single serving-layer test.
#: The supervision loop is designed never to hang — a worker that dies or
#: goes silent is restarted and its requests retried — so a service test
#: that exceeds this budget IS the regression, and the alarm turns a stuck
#: CI job into a stack trace.  Override with REPRO_SERVICE_TEST_TIMEOUT.
SERVICE_TEST_TIMEOUT_S = float(os.environ.get("REPRO_SERVICE_TEST_TIMEOUT", "120"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: slower end-to-end checks (example-script subprocesses); "
        "CI runs them once in the docs job and excludes them from the "
        'matrix tier-1 step with -m "not tier2"',
    )


@pytest.fixture(autouse=True)
def _service_wall_clock_guard(request):
    """SIGALRM guard on every test in the ``test_service*`` modules.

    Multi-process supervision bugs manifest as hangs, not failures; the
    alarm converts them into a loud ``Failed`` with the offending test's
    name inside the timeout budget of any CI runner.
    """
    module = getattr(request.node, "module", None)
    name = getattr(module, "__name__", "")
    if "test_service" not in name or SERVICE_TEST_TIMEOUT_S <= 0:
        yield
        return
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _expired(signum, frame):
        raise pytest.fail.Exception(
            f"service test exceeded its {SERVICE_TEST_TIMEOUT_S:g}s "
            f"wall-clock guard (likely a supervision hang)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, SERVICE_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for reproducible tests."""
    return random.Random(20170514)  # PODS'17 started on May 14, 2017


@pytest.fixture
def figure1_instance() -> ProbabilisticGraph:
    """A probabilistic graph reproducing the computation of Example 2.2.

    The graph has two ``R`` edges entering ``b`` (probabilities 0.1 and 0.8)
    and one ``S`` edge leaving it (probability 0.7), so that the query
    ``-R-> -S-> <-S-`` of Example 2.2 has probability
    ``0.7 · (1 − 0.9 · 0.2) = 0.574``.
    """
    graph = DiGraph()
    graph.add_edge("a", "b", "R")
    graph.add_edge("d", "b", "R")
    graph.add_edge("b", "c", "S")
    graph.add_edge("a", "d", "R")
    graph.add_edge("e", "c", "S")
    return ProbabilisticGraph(
        graph,
        {
            ("a", "b"): Fraction(1, 10),
            ("d", "b"): Fraction(4, 5),
            ("b", "c"): Fraction(7, 10),
            ("a", "d"): Fraction(1),
            ("e", "c"): Fraction(1, 20),
        },
    )


@pytest.fixture
def example22_query() -> DiGraph:
    """The query of Example 2.2: ``-R-> -S-> <-S-`` (∃xyzt R(x,y) ∧ S(y,z) ∧ S(t,z))."""
    return two_way_path([("R", "forward"), ("S", "forward"), ("S", "backward")], prefix="q")


@pytest.fixture
def small_dwt_instance() -> ProbabilisticGraph:
    """A small labeled downward-tree instance used across solver tests."""
    graph = downward_tree(
        {"b": "a", "c": "a", "d": "b", "e": "b", "f": "c"},
        labels={"b": "R", "c": "S", "d": "S", "e": "R", "f": "R"},
    )
    return ProbabilisticGraph(
        graph,
        {
            ("a", "b"): Fraction(1, 2),
            ("a", "c"): Fraction(3, 4),
            ("b", "d"): Fraction(1, 3),
            ("b", "e"): Fraction(1),
            ("c", "f"): Fraction(2, 5),
        },
    )


@pytest.fixture
def rs_path_query() -> DiGraph:
    """The labeled path query ``-R-> -S->``."""
    return one_way_path(["R", "S"], prefix="q")


def random_fraction(rng: random.Random, denominator: int = 8) -> Fraction:
    """A random probability ``k / denominator`` with ``0 ≤ k ≤ denominator``."""
    return Fraction(rng.randint(0, denominator), denominator)
