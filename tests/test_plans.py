"""Tests for the compiled-plan subsystem: compile/evaluate halves, the plan
cache, batch deduplication, and incremental updates.

The contract under test: ``PHomSolver.compile(query, instance)`` captures
everything probability-independent, ``plan.evaluate`` is bit-identical to
the one-shot API in exact mode (and 1e-9-close in float mode), and
``plan.update`` matches a full re-solve after every single-edge change.
"""

import random
import warnings
from fractions import Fraction

import pytest

from repro.exceptions import GraphError, IntractableFallbackWarning, PlanError
from repro.graphs.builders import one_way_path, unlabeled_path
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph
from repro.lineage.ddnnf import DDNNF, CircuitEvaluator
from repro.numeric import EXACT, FAST
from repro.plan import ComponentPlan, ConstantPlan, FallbackPlan, PlanCache, canonical_query_key
from repro.probability.prob_graph import ProbabilisticGraph
from repro.core.solver import PHomSolver
from repro.workloads import workload_for_cell

TOLERANCE = 1e-9

#: One cell per tractable dispatch route (mirrors test_precision_and_batch).
TRACTABLE_CELLS = [
    (GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True),
    (GraphClass.ONE_WAY_PATH, GraphClass.UNION_DOWNWARD_TREE, True),
    (GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True),
    (GraphClass.DOWNWARD_TREE, GraphClass.UNION_TWO_WAY_PATH, True),
    (GraphClass.ALL, GraphClass.UNION_DOWNWARD_TREE, False),
    (GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False),
    (GraphClass.UNION_DOWNWARD_TREE, GraphClass.UNION_POLYTREE, False),
]


def _workload(query_class, instance_class, labeled, seed, query_size=3, instance_size=12):
    return workload_for_cell(
        query_class, instance_class, labeled, query_size, instance_size,
        rng=random.Random(seed),
    )


class TestCompileEvaluateMatchesOneShot:
    @pytest.mark.parametrize("query_class,instance_class,labeled", TRACTABLE_CELLS)
    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("prefer", ["dp", "automaton"])
    def test_exact_bit_identical_and_float_close(
        self, query_class, instance_class, labeled, seed, prefer
    ):
        workload = _workload(query_class, instance_class, labeled, seed)
        solver = PHomSolver(prefer=prefer)
        baseline = PHomSolver(prefer=prefer, plan_cache_size=0)
        plan = solver.compile(workload.query, workload.instance)
        exact = baseline.solve(workload.query, workload.instance)
        assert plan.evaluate() == exact.probability
        assert plan.method == exact.method
        assert plan.proposition == exact.proposition
        fast = plan.evaluate(precision="float")
        assert isinstance(fast, float)
        assert abs(float(exact.probability) - fast) <= TOLERANCE

    def test_trivial_plans(self):
        instance = ProbabilisticGraph(DiGraph(edges=[("a", "b", "R")]), default="0.5")
        solver = PHomSolver()
        edgeless = solver.compile(DiGraph(vertices=["q"]), instance)
        assert isinstance(edgeless, ConstantPlan)
        assert edgeless.evaluate() == Fraction(1)
        assert edgeless.evaluate(precision="float") == 1.0
        mismatch = solver.compile(DiGraph(edges=[("x", "y", "Z")]), instance)
        assert mismatch.evaluate() == Fraction(0)
        assert mismatch.method == "trivial-label-mismatch"

    def test_evaluate_with_override_table(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c")])
        instance = ProbabilisticGraph(graph, default=Fraction(1, 2))
        query = unlabeled_path(1)
        solver = PHomSolver()
        plan = solver.compile(query, instance)
        base = plan.evaluate()
        overridden = plan.evaluate(probabilities={("a", "b"): 0})
        # Overriding must not touch the instance or the plan's base answer.
        assert overridden == Fraction(1, 2)
        assert plan.evaluate() == base
        assert instance.probability(("a", "b")) == Fraction(1, 2)

    def test_fallback_plan_warns_and_rejects_overrides(self):
        # Labeled 1WP query on a polytree instance: #P-hard (Table 2).
        polytree = DiGraph(edges=[("a", "b", "R"), ("c", "b", "S"), ("b", "d", "R")])
        instance = ProbabilisticGraph.with_uniform_probability(polytree, "1/2")
        query = one_way_path(["R", "R"], prefix="q")
        solver = PHomSolver()
        plan = solver.compile(query, instance)
        assert isinstance(plan, FallbackPlan)
        with pytest.warns(IntractableFallbackWarning):
            value = plan.evaluate()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            exact = PHomSolver(plan_cache_size=0).solve(query, instance)
        assert value == exact.probability
        with pytest.raises(PlanError):
            plan.evaluate(probabilities={})
        with pytest.raises(PlanError):
            plan.update(instance.edges()[0], "0.5")

    def test_fallback_plan_snapshots_the_query(self):
        # Regression: a cached fallback plan must keep answering for the
        # query shape it was compiled for, even if the caller mutates the
        # original (mutable) query graph afterwards.
        polytree = DiGraph(edges=[("a", "b", "R"), ("c", "b", "S"), ("b", "d", "R")])
        instance = ProbabilisticGraph.with_uniform_probability(polytree, "1/2")
        original = DiGraph(edges=[("q0", "q1", "R"), ("q1", "q2", "R")])
        twin = DiGraph(edges=[("q0", "q1", "R"), ("q1", "q2", "R")])
        solver = PHomSolver()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            first = solver.solve(original, instance).probability
            original.add_edge("q2", "q3", "Z")
            cached = solver.solve(twin, instance).probability  # hits the old key
            cold = PHomSolver(plan_cache_size=0).solve(twin, instance).probability
        assert cached == cold == first


class TestCanonicalQueryKey:
    def test_isomorphic_paths_share_a_key(self):
        a = one_way_path(["R", "S"], prefix="a")
        b = one_way_path(["R", "S"], prefix="b")
        assert canonical_query_key(a) == canonical_query_key(b)

    def test_reversed_two_way_path_shares_a_key(self):
        forward = DiGraph(edges=[("x1", "x2", "R"), ("x3", "x2", "S")])
        # The same 2WP with vertex names that make the recogniser traverse
        # the path from the other endpoint.
        backward = DiGraph(edges=[("z9", "z5", "R"), ("z1", "z5", "S")])
        assert canonical_query_key(forward) == canonical_query_key(backward)

    def test_different_labels_different_keys(self):
        assert canonical_query_key(one_way_path(["R", "S"])) != canonical_query_key(
            one_way_path(["R", "T"])
        )

    def test_mutation_changes_the_key(self):
        query = DiGraph(edges=[("a", "b", "R")])
        before = canonical_query_key(query)
        query.add_edge("b", "c", "S")
        assert canonical_query_key(query) != before

    def test_non_path_queries_key_on_content(self):
        tree = DiGraph(edges=[("r", "a"), ("r", "b")])
        same = DiGraph(edges=[("r", "a"), ("r", "b")])
        other = DiGraph(edges=[("r", "a"), ("a", "b")])
        assert canonical_query_key(tree) == canonical_query_key(same)
        assert canonical_query_key(tree) != canonical_query_key(other)

    def test_repr_collisions_do_not_merge_distinct_queries(self):
        # Regression: distinct vertex objects whose reprs collide must not
        # collapse to one cache key (keys are value-based, not repr-based).
        class V:
            def __repr__(self):
                return "v"

        a, b, c = V(), V(), V()
        triangle = DiGraph(edges=[(a, b), (b, c), (a, c)])
        star_hub, l1, l2, l3 = V(), V(), V(), V()
        star = DiGraph(edges=[(star_hub, l1), (star_hub, l2), (star_hub, l3)])
        assert canonical_query_key(triangle) != canonical_query_key(star)
        instance = ProbabilisticGraph(
            DiGraph(edges=[("x", "y")]), default=Fraction(1, 2)
        )
        solver = PHomSolver()
        first = solver.solve(triangle, instance).probability
        second = solver.solve(star, instance).probability
        cold = PHomSolver(plan_cache_size=0)
        assert first == cold.solve(triangle, instance).probability
        assert second == cold.solve(star, instance).probability


class TestPlanCache:
    def test_solve_many_compiles_duplicates_once(self):
        workload = _workload(GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, 5)
        solver = PHomSolver()
        queries = [workload.query] * 6
        results = solver.solve_many(queries, workload.instance)
        assert len(results) == 6
        assert solver.plan_cache.stats["compiles"] == 1
        assert len({r.probability for r in results}) == 1

    def test_isomorphic_duplicates_compile_once(self):
        instance = _workload(
            GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, 6
        ).instance
        queries = [one_way_path(["a", "b"], prefix=f"q{i}_") for i in range(5)]
        solver = PHomSolver()
        results = solver.solve_many(queries, instance)
        assert solver.plan_cache.stats["compiles"] == 1
        assert len({r.probability for r in results}) == 1

    def test_repeated_solve_hits_the_cache(self):
        workload = _workload(GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True, 7)
        solver = PHomSolver()
        solver.solve(workload.query, workload.instance)
        solver.solve(workload.query, workload.instance)
        stats = solver.plan_cache.stats
        assert stats["compiles"] == 1
        assert stats["hits"] >= 1

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        instance = ProbabilisticGraph(DiGraph(edges=[("a", "b")]), default="0.5")
        solver = PHomSolver()
        plans = [
            solver.compile(unlabeled_path(1), instance),
            solver.compile(unlabeled_path(1), instance),
            solver.compile(unlabeled_path(1), instance),
        ]
        for index, plan in enumerate(plans):
            cache.store(("key", index), instance, plan)
        assert len(cache) == 2
        assert cache.lookup(("key", 0), instance) is None
        assert cache.lookup(("key", 2), instance) is plans[2]

    def test_cache_disabled_with_zero_size(self):
        solver = PHomSolver(plan_cache_size=0)
        assert solver.plan_cache is None
        workload = _workload(GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, 8)
        # Still solves correctly, just without caching.
        result = solver.solve(workload.query, workload.instance)
        reference = PHomSolver().solve(workload.query, workload.instance)
        assert result.probability == reference.probability


class TestIncrementalUpdate:
    def _polytree_setup(self, seed=9, instance_size=10):
        workload = _workload(
            GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False, seed,
            instance_size=instance_size,
        )
        solver = PHomSolver(prefer="automaton")
        plan = solver.compile(workload.query, workload.instance)
        return workload, plan

    def test_update_matches_full_resolve_exact(self):
        workload, plan = self._polytree_setup()
        baseline = PHomSolver(prefer="automaton", plan_cache_size=0)
        rng = random.Random(3)
        edges = workload.instance.edges()
        for _ in range(10):
            edge = rng.choice(edges)
            probability = Fraction(rng.randint(0, 8), 8)
            updated = plan.update(edge, probability)
            workload.instance.set_probability(edge, probability)
            full = baseline.solve(workload.query, workload.instance).probability
            assert updated == full  # exact mode: bit-identical

    def test_update_matches_full_resolve_float(self):
        workload, plan = self._polytree_setup(seed=10)
        baseline = PHomSolver(prefer="automaton", plan_cache_size=0)
        rng = random.Random(4)
        edges = workload.instance.edges()
        for _ in range(10):
            edge = rng.choice(edges)
            probability = Fraction(rng.randint(0, 16), 16)
            updated = plan.update(edge, probability, precision="float")
            workload.instance.set_probability(edge, probability)
            full = baseline.solve(
                workload.query, workload.instance, precision="float"
            ).probability
            assert abs(updated - full) <= TOLERANCE

    def test_update_does_not_mutate_the_instance(self):
        workload, plan = self._polytree_setup(seed=11)
        edge = workload.instance.edges()[0]
        before = workload.instance.probability(edge)
        plan.update(edge, Fraction(1, 7))
        assert workload.instance.probability(edge) == before

    def test_interleaved_evaluate_does_not_corrupt_serving_state(self):
        workload, plan = self._polytree_setup(seed=12)
        instance = workload.instance
        edges = instance.edges()
        plan.update(edges[0], Fraction(1, 3))
        # A stateless evaluation against the (unchanged) instance...
        plan.evaluate()
        # ...must not disturb the serving table of subsequent updates.
        updated = plan.update(edges[0], Fraction(2, 3))
        instance.set_probability(edges[0], Fraction(2, 3))
        full = PHomSolver(prefer="automaton", plan_cache_size=0).solve(
            workload.query, instance
        ).probability
        assert updated == full

    def test_update_on_dp_plans_recomputes_arithmetic(self):
        # Non-circuit plans fall back to a full (arithmetic-only) re-evaluation.
        workload = _workload(GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True, 13)
        solver = PHomSolver()
        plan = solver.compile(workload.query, workload.instance)
        assert isinstance(plan, ComponentPlan)
        edge = workload.instance.edges()[0]
        updated = plan.update(edge, Fraction(1, 5))
        workload.instance.set_probability(edge, Fraction(1, 5))
        full = PHomSolver(plan_cache_size=0).solve(
            workload.query, workload.instance
        ).probability
        assert updated == full

    def test_update_unknown_edge_raises(self):
        _workload_, plan = self._polytree_setup(seed=14)
        with pytest.raises(GraphError):
            plan.update(("nope", "nada"), "0.5")

    def test_precision_switch_mid_serving_raises_until_reset(self):
        workload, plan = self._polytree_setup(seed=15)
        edge = workload.instance.edges()[0]
        plan.update(edge, Fraction(1, 4), precision="float")
        with pytest.raises(PlanError):
            plan.update(edge, Fraction(1, 2))  # defaults to exact: mismatch
        plan.reset_serving()
        updated = plan.update(edge, Fraction(1, 2))  # fresh exact session
        workload.instance.set_probability(edge, Fraction(1, 2))
        full = PHomSolver(prefer="automaton", plan_cache_size=0).solve(
            workload.query, workload.instance
        ).probability
        assert updated == full

    def test_compile_returns_shared_cached_plan(self):
        workload, plan = self._polytree_setup(seed=16)
        solver = PHomSolver(prefer="automaton")
        first = solver.compile(workload.query, workload.instance)
        second = solver.compile(workload.query, workload.instance)
        assert first is second  # documented: serving state is shared
        assert solver.plan_cache.stats["compiles"] == 1


class TestCircuitEvaluator:
    def _circuit(self):
        circuit = DDNNF()
        x, y = circuit.add_var("x"), circuit.add_var("y")
        not_x = circuit.add_not("x")
        both = circuit.add_and([x, y])
        neither = circuit.add_and([not_x, circuit.add_not("y")])
        circuit.set_root(circuit.add_or([both, neither]))
        return circuit

    def test_evaluate_matches_probability(self):
        circuit = self._circuit()
        table = {"x": Fraction(1, 3), "y": Fraction(1, 4)}
        evaluator = CircuitEvaluator(circuit)
        assert evaluator.evaluate(table) == circuit.probability(table)

    def test_update_matches_fresh_evaluation(self):
        circuit = self._circuit()
        table = {"x": Fraction(1, 3), "y": Fraction(1, 4)}
        evaluator = CircuitEvaluator(circuit)
        evaluator.evaluate(table)
        updated = evaluator.update("x", Fraction(5, 6))
        assert updated == circuit.probability({"x": Fraction(5, 6), "y": Fraction(1, 4)})
        updated = evaluator.update("y", Fraction(0))
        assert updated == circuit.probability({"x": Fraction(5, 6), "y": Fraction(0)})
        assert evaluator.current_value() == updated

    def test_update_of_absent_variable_is_a_noop(self):
        circuit = self._circuit()
        table = {"x": Fraction(1, 2), "y": Fraction(1, 2)}
        evaluator = CircuitEvaluator(circuit)
        before = evaluator.evaluate(table)
        assert evaluator.update("z", Fraction(1)) == before

    def test_update_before_evaluate_raises(self):
        from repro.exceptions import LineageError

        evaluator = CircuitEvaluator(self._circuit())
        with pytest.raises(LineageError):
            evaluator.update("x", Fraction(1, 2))

    def test_float_context_update(self):
        circuit = self._circuit()
        evaluator = CircuitEvaluator(circuit)
        evaluator.evaluate({"x": 0.25, "y": 0.75}, context=FAST)
        updated = evaluator.update("x", 0.5)
        expected = circuit.probability({"x": 0.5, "y": 0.75}, context=FAST)
        assert abs(updated - expected) <= TOLERANCE


class TestDDNNFMemoisation:
    def test_variables_and_supports_track_growth(self):
        circuit = DDNNF()
        circuit.add_var("x")
        assert circuit.variables() == {"x"}
        circuit.add_var("y")
        assert circuit.variables() == {"x", "y"}
        first = circuit._supports()
        assert circuit._supports() is first  # memoised while unchanged
        circuit.add_var("z")
        assert len(circuit._supports()) == 3

    def test_parent_index_and_literal_index(self):
        circuit = DDNNF()
        x, y = circuit.add_var("x"), circuit.add_var("y")
        gate = circuit.add_and([x, y])
        circuit.set_root(gate)
        parents = circuit.parent_index()
        assert gate in parents[x] and gate in parents[y]
        assert parents[gate] == ()
        assert circuit.literal_index() == {"x": (x,), "y": (y,)}

    def test_is_deterministic_still_detects_overlap(self):
        circuit = DDNNF()
        x, y = circuit.add_var("x"), circuit.add_var("y")
        circuit.set_root(circuit.add_or([x, y]))  # both true under x=y=1
        assert not circuit.is_deterministic()

    def test_is_deterministic_accepts_exclusive_or(self):
        circuit = DDNNF()
        x_and_not_y = circuit.add_and([circuit.add_var("x"), circuit.add_not("y")])
        y_and_not_x = circuit.add_and([circuit.add_var("y"), circuit.add_not("x")])
        circuit.set_root(circuit.add_or([x_and_not_y, y_and_not_x]))
        assert circuit.is_deterministic()


class TestBenchPlansSmoke:
    def test_cli_bench_plans_smoke(self, tmp_path):
        from repro.cli import main
        import io, json

        target = tmp_path / "plans.json"
        out, err = io.StringIO(), io.StringIO()
        code = main(
            ["bench", "plans", "--smoke", "--output", str(target),
             "--min-reuse-speedup", "1.0"],
            out=out, err=err,
        )
        assert code == 0, err.getvalue()
        report = json.loads(target.read_text())
        assert report["benchmark"] == "plans"
        assert report["summary"]["min_plan_reuse_speedup"] >= 1.0
        assert {w["name"] for w in report["workloads"]} == {
            "labeled-dwt", "connected-2wp", "unlabeled-polytree-ddnnf"
        }
