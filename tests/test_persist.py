"""Unit suite for :mod:`repro.persist`: the WAL, the plan store, and the
persistent plan-cache tier.

Every corruption here is injected through the seeded
:class:`~repro.service.faults.DiskFaultInjector` (or byte surgery where a
specific field must be hit), and every scenario asserts the durability
contract: damage is *detected* — never silently replayed — the clean
prefix survives, damaged bytes are preserved in quarantine for
post-mortems, and recovered answers stay bit-identical.
"""

from __future__ import annotations

import errno
import os
import pickle
from fractions import Fraction

import pytest

from repro.core.solver import PHomSolver
from repro.exceptions import PersistenceError, PlanError
from repro.graphs.classes import GraphClass
from repro.persist import (
    FSYNC_POLICIES,
    PersistentPlanCache,
    PlanStore,
    WriteAheadLog,
    instance_digest,
    plan_store_key,
    scan_wal,
)
from repro.persist.wal import WAL_MAGIC
from repro.probability.prob_graph import ProbabilisticGraph
from repro.service import DiskFaultInjector, Fault, FaultPlan
from repro.workloads.generators import attach_random_probabilities, make_instance


def sample_records(count: int):
    return [("update", "instance-0", ((f"v{i}", f"w{i}"),), f"{i + 1}/7")
            for i in range(count)]


def injector(kind: str, after: int = 0, seed: int = 11) -> DiskFaultInjector:
    return DiskFaultInjector(
        FaultPlan(faults=(Fault(kind=kind, after_messages=after),), seed=seed)
    )


def build_instance(seed: int, size: int = 12) -> ProbabilisticGraph:
    graph = make_instance(GraphClass.DOWNWARD_TREE, True, size, seed)
    return attach_random_probabilities(graph, seed)


def build_query(seed: int):
    return make_instance(GraphClass.ONE_WAY_PATH, True, 3, seed)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_roundtrip_and_reopen(self, tmp_path):
        records = sample_records(5)
        path = str(tmp_path / "wal")
        with WriteAheadLog(path, fsync="always") as wal:
            for record in records:
                wal.append(record)
            assert wal.replay() == records
        reopened = WriteAheadLog(path)
        assert reopened.replay() == records
        assert not reopened.recovery.corruption_detected
        assert reopened.recovery.records_replayed == len(records)
        reopened.close()

    def test_torn_tail_truncated_and_preserved(self, tmp_path):
        records = sample_records(3)
        path = str(tmp_path / "wal")
        chaos = injector("torn-write", after=2)
        with WriteAheadLog(path, fsync="always", fault_injector=chaos) as wal:
            for record in records:
                wal.append(record)
        assert chaos.fired == ["torn-write"]

        wal = WriteAheadLog(path)
        assert wal.recovery.corruption_detected
        assert wal.recovery.torn_tail_bytes > 0
        assert wal.replay() == records[:2]
        wal.close()
        # The damaged bytes are preserved for post-mortems, not deleted.
        quarantine = tmp_path / "wal" / "quarantine"
        tails = [p for p in quarantine.iterdir() if ".tail-" in p.name]
        assert len(tails) == 1
        assert tails[0].stat().st_size == wal.recovery.torn_tail_bytes
        # The repair is durable: a clean scan afterwards.
        assert not scan_wal(path).corruption_detected

    def test_truncate_tail_fault_recovers_prefix(self, tmp_path):
        records = sample_records(4)
        path = str(tmp_path / "wal")
        chaos = injector("truncate-tail", after=3)
        with WriteAheadLog(path, fsync="always", fault_injector=chaos) as wal:
            for record in records:
                wal.append(record)
        assert chaos.fired == ["truncate-tail"]
        wal = WriteAheadLog(path)
        assert wal.recovery.torn_tail_bytes > 0
        assert wal.replay() == records[:3]
        wal.close()

    def test_bit_flip_detected_and_prefix_replayed(self, tmp_path):
        records = sample_records(4)
        path = str(tmp_path / "wal")
        chaos = injector("bit-flip", after=2)
        with WriteAheadLog(path, fsync="always", fault_injector=chaos) as wal:
            for record in records:
                wal.append(record)
        wal = WriteAheadLog(path)
        # A flipped bit may land in the frame header (seen as a torn tail)
        # or the payload (seen as a CRC mismatch) — either way it must be
        # detected and the damaged record must not replay.
        assert wal.recovery.corruption_detected
        assert wal.replay() == records[:2]
        wal.close()

    def test_bad_header_segment_quarantined(self, tmp_path):
        records = sample_records(2)
        path = str(tmp_path / "wal")
        with WriteAheadLog(path, fsync="always") as wal:
            for record in records:
                wal.append(record)
        rogue = tmp_path / "wal" / "segment-000009.wal"
        rogue.write_bytes(b"XXXX" + os.urandom(16))
        wal = WriteAheadLog(path)
        assert wal.recovery.quarantined_segments == 1
        assert wal.replay() == records
        wal.close()
        assert not rogue.exists()
        quarantined = list((tmp_path / "wal" / "quarantine").iterdir())
        assert any(p.name == "segment-000009.wal" for p in quarantined)

    def test_rotation_and_compaction(self, tmp_path):
        path = str(tmp_path / "wal")
        wal = WriteAheadLog(path, fsync="batch", segment_max_bytes=256)
        records = sample_records(30)
        for record in records:
            wal.append(record)
        assert len(wal.segments) > 1
        assert wal.replay() == records

        folded = sample_records(2)
        wal.compact(folded)
        assert len(wal.segments) == 1
        assert wal.replay() == folded
        wal.close()
        # Compaction is durable across a reopen.
        wal = WriteAheadLog(path)
        assert wal.replay() == folded
        wal.close()

    def test_enospc_append_raises_and_log_survives(self, tmp_path):
        path = str(tmp_path / "wal")
        wal = WriteAheadLog(path, fsync="always", fault_injector=injector("enospc", after=1))
        wal.append(("update", "a", (), "1/2"))
        with pytest.raises(OSError) as excinfo:
            wal.append(("update", "b", (), "1/3"))
        assert excinfo.value.errno == errno.ENOSPC
        # The log stays usable: the failed append wrote nothing.
        wal.append(("update", "c", (), "1/4"))
        assert wal.replay() == [("update", "a", (), "1/2"), ("update", "c", (), "1/4")]
        wal.close()

    def test_policy_validation_and_closed_log(self, tmp_path):
        assert set(FSYNC_POLICIES) == {"always", "batch", "never"}
        with pytest.raises(PersistenceError):
            WriteAheadLog(str(tmp_path / "w1"), fsync="sometimes")
        wal = WriteAheadLog(str(tmp_path / "w2"))
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(PersistenceError):
            wal.append(("update", "a", (), "1/2"))

    def test_scan_is_read_only(self, tmp_path):
        path = str(tmp_path / "wal")
        chaos = injector("torn-write", after=1)
        with WriteAheadLog(path, fsync="always", fault_injector=chaos) as wal:
            for record in sample_records(2):
                wal.append(record)
        before = {p.name: p.stat().st_size for p in (tmp_path / "wal").iterdir()}
        report = scan_wal(path)
        assert report.corruption_detected and report.torn_tail_bytes > 0
        after = {p.name: p.stat().st_size for p in (tmp_path / "wal").iterdir()}
        assert after == before  # the detector repaired nothing


# ----------------------------------------------------------------------
# Plan store
# ----------------------------------------------------------------------
class TestPlanStore:
    def test_roundtrip_bit_identical(self, tmp_path):
        instance = build_instance(21)
        plan = PHomSolver().compile(build_query(22), instance)
        store = PlanStore(str(tmp_path / "plans"))
        digest = instance_digest(instance)
        entry = store.put("key", digest, "ns", plan)
        assert entry == plan_store_key("key", digest, "ns")
        loaded = store.get("key", digest, "ns")
        assert loaded.evaluate() == plan.evaluate()
        assert store.stats["puts"] == 1 and store.stats["hits"] == 1
        assert len(store) == 1

    def test_digest_ignores_probabilities(self):
        graph = make_instance(GraphClass.DOWNWARD_TREE, True, 10, 31)
        first = attach_random_probabilities(graph, 31)
        second = attach_random_probabilities(graph.copy(), 32)
        assert instance_digest(first) == instance_digest(second)
        # ...but not graph structure.
        other = build_instance(33, size=11)
        assert instance_digest(first) != instance_digest(other)

    def test_missing_and_namespace_isolation(self, tmp_path):
        instance = build_instance(41)
        plan = PHomSolver().compile(build_query(42), instance)
        store = PlanStore(str(tmp_path / "plans"))
        digest = instance_digest(instance)
        store.put("key", digest, "ns-a", plan)
        assert store.get("key", digest, "ns-b") is None
        assert store.get("other", digest, "ns-a") is None
        assert store.stats["misses"] == 2

    def test_corrupt_entry_quarantined_not_fatal(self, tmp_path):
        instance = build_instance(51)
        plan = PHomSolver().compile(build_query(52), instance)
        store = PlanStore(str(tmp_path / "plans"))
        digest = instance_digest(instance)
        entry = store.put("key", digest, "", plan)
        path = store.entry_path(entry)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

        assert store.verify()["corrupt"] == 1  # read-only detection first
        assert store.get("key", digest, "") is None  # quarantines, recompile
        assert store.stats["corrupt"] == 1
        assert not os.path.exists(path)
        quarantine = tmp_path / "plans" / "quarantine"
        assert len(list(quarantine.iterdir())) == 1
        assert store.verify() == {"entries": 0, "valid": 0, "corrupt": 0,
                                  "failures": {}}

    def test_bit_flip_injected_put_detected(self, tmp_path):
        instance = build_instance(61)
        plan = PHomSolver().compile(build_query(62), instance)
        store = PlanStore(str(tmp_path / "plans"), fault_injector=injector("bit-flip"))
        digest = instance_digest(instance)
        store.put("key", digest, "", plan)
        report = PlanStore(str(tmp_path / "plans")).verify()
        assert report["entries"] == 1 and report["corrupt"] == 1
        (reason,) = report["failures"].values()
        assert reason == "checksum mismatch"

    def test_enospc_put_degrades(self, tmp_path):
        instance = build_instance(71)
        plan = PHomSolver().compile(build_query(72), instance)
        store = PlanStore(str(tmp_path / "plans"), fault_injector=injector("enospc"))
        assert store.put("key", instance_digest(instance), "", plan) is None
        assert store.stats["put_errors"] == 1
        # No partial entry, no leaked temp file.
        leftovers = [
            name for _, _, files in os.walk(tmp_path / "plans") for name in files
        ]
        assert leftovers == []

    def test_inspect_rows(self, tmp_path):
        instance = build_instance(81)
        plan = PHomSolver().compile(build_query(82), instance)
        store = PlanStore(str(tmp_path / "plans"))
        digest = instance_digest(instance)
        store.put(("q", 1), digest, "ns", plan)
        (row,) = store.inspect()
        assert row["instance_digest"] == digest
        assert row["namespace"] == "ns"
        assert row["query_key"] == repr(("q", 1))
        assert row["bytes"] > 0

    def test_store_is_picklable(self, tmp_path):
        store = PlanStore(str(tmp_path / "plans"))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.directory == store.directory


# ----------------------------------------------------------------------
# Persistent plan-cache tier
# ----------------------------------------------------------------------
class TestPersistentPlanCache:
    def test_requires_store(self):
        with pytest.raises(PersistenceError):
            PersistentPlanCache(plan_store=None)

    def test_write_through_then_load_not_compile(self, tmp_path):
        instance = build_instance(91)
        query = build_query(92)
        first = PHomSolver(plan_store=str(tmp_path / "plans"))
        first.compile(query, instance)
        assert first.plan_cache.stats["compiles"] == 1
        assert first.plan_cache.stats["store"]["puts"] == 1

        second = PHomSolver(plan_store=str(tmp_path / "plans"))
        plan = second.compile(query, instance)
        stats = second.plan_cache.stats
        assert stats["compiles"] == 0 and stats["loads"] == 1
        assert plan.evaluate() == first.compile(query, instance).evaluate()

    def test_warm_preloads_without_polluting_traffic_counters(self, tmp_path):
        instance = build_instance(101)
        query = build_query(102)
        writer = PHomSolver(plan_store=str(tmp_path / "plans"))
        writer.compile(query, instance)

        reader = PHomSolver(plan_store=str(tmp_path / "plans"))
        warmed = reader.plan_cache.warm(instance)
        assert warmed == 1
        stats = reader.plan_cache.stats
        assert stats["loads"] == 1
        assert stats["hits"] == 0 and stats["misses"] == 0  # probes unbilled
        reader.compile(query, instance)
        assert reader.plan_cache.stats["hits"] == 1
        assert reader.plan_cache.stats["compiles"] == 0

    def test_solver_rejects_store_without_cache(self, tmp_path):
        with pytest.raises(ValueError):
            PHomSolver(plan_store=str(tmp_path / "plans"), plan_cache_size=0)

    def test_solver_pickles_with_store(self, tmp_path):
        solver = PHomSolver(plan_store=str(tmp_path / "plans"))
        instance = build_instance(111)
        query = build_query(112)
        expected = solver.solve(query, instance).probability
        clone = pickle.loads(pickle.dumps(solver))
        assert clone.plan_store is not None
        assert clone.solve(query, instance).probability == expected


# ----------------------------------------------------------------------
# Tape persistence
# ----------------------------------------------------------------------
def tape_batches(instance: ProbabilisticGraph, seed: int):
    """A small batch of override valuations over ``instance``'s edges."""
    edges = sorted(instance.graph.edges())
    return [
        None,
        {},
        {edges[seed % len(edges)]: Fraction(3, 7)},
        {edge: Fraction((i + seed) % 9 + 1, 11) for i, edge in enumerate(edges[:4])},
    ]


def entry_files(root) -> list:
    return [
        os.path.join(dirpath, name)
        for dirpath, _, files in os.walk(root)
        for name in files
        if name.endswith(".plan") and "quarantine" not in dirpath
    ]


class TestTapePersistence:
    """Compiled tapes are durable alongside their plans: a pickle or a
    store roundtrip carries the tape, rebinding re-targets it to the live
    instance, and a corrupt tape-bearing entry costs a recompile — never a
    crash or a wrong answer."""

    def test_pickle_store_roundtrip_rebind_matches_fresh_compile(self, tmp_path):
        instance = build_instance(141)
        query = build_query(142)
        solver = PHomSolver()
        plan = solver.compile(query, instance)
        tape = solver.tape_for(query, instance)
        batches = tape_batches(instance, 141)
        expected = plan.evaluate_many(batches)

        # compile -> pickle -> PlanStore roundtrip -> rebind -> evaluate
        store = PlanStore(str(tmp_path / "plans"))
        digest = instance_digest(instance)
        store.put("key", digest, "ns", plan)
        loaded = store.get("key", digest, "ns")
        assert loaded is not plan and loaded.has_tape()
        reweighted = attach_random_probabilities(instance.graph.copy(), 143)
        loaded.rebind(reweighted)

        fresh = PHomSolver().compile(query, reweighted)
        assert loaded.evaluate() == fresh.evaluate()
        assert loaded.evaluate_many(tape_batches(reweighted, 143)) == \
            fresh.evaluate_many(tape_batches(reweighted, 143))
        # ...and the original binding's answers were not disturbed.
        assert plan.evaluate_many(batches) == expected
        # The pickled tape is structurally the same program.
        assert loaded.tape().describe() == tape.describe()

    def test_plan_pickles_after_vectorized_evaluation(self):
        # evaluate_many materialises derived per-backend caches (packed
        # segments, edge-slot maps, possibly numpy arrays); none of that
        # may leak into the pickle, which must stay loadable anywhere.
        instance = build_instance(151)
        query = build_query(152)
        solver = PHomSolver()
        batches = tape_batches(instance, 151)
        expected = solver.evaluate_many(query, instance, batches)
        plan = solver.compile(query, instance)
        clone = pickle.loads(pickle.dumps(plan))
        clone.rebind(instance)
        assert clone.evaluate_many(batches) == expected

    def test_note_tape_refreshes_store_entry(self, tmp_path):
        instance = build_instance(161)
        query = build_query(162)
        writer = PHomSolver(plan_store=str(tmp_path / "plans"))
        writer.compile(query, instance)
        store = writer.plan_cache.plan_store
        (row,) = store.inspect()
        assert row["tape"] is False
        puts_before = store.stats["puts"]

        writer.tape_for(query, instance)
        (row,) = store.inspect()
        assert row["tape"] is True  # the entry was re-put with the tape
        assert store.stats["puts"] == puts_before + 1
        assert len(entry_files(tmp_path / "plans")) == 1  # refreshed, not duplicated

    def test_warm_restart_loads_tape_without_recompiling(self, tmp_path):
        instance = build_instance(171)
        query = build_query(172)
        writer = PHomSolver(plan_store=str(tmp_path / "plans"))
        expected = writer.evaluate_many(query, instance, tape_batches(instance, 171))

        reader = PHomSolver(plan_store=str(tmp_path / "plans"))
        assert reader.plan_cache.warm(instance) == 1
        plan = reader.compile(query, instance)
        assert plan.has_tape()  # the tape rode along with the stored plan
        assert reader.evaluate_many(query, instance, tape_batches(instance, 171)) == expected
        stats = reader.plan_cache.stats
        assert stats["compiles"] == 0 and stats["tape_compiles"] == 0
        assert stats["loads"] == 1

    def test_corrupt_tape_entry_quarantined_then_recompiled(self, tmp_path):
        instance = build_instance(181)
        query = build_query(182)
        writer = PHomSolver(plan_store=str(tmp_path / "plans"))
        expected = writer.evaluate_many(query, instance, tape_batches(instance, 181))
        (path,) = entry_files(tmp_path / "plans")
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) - 5] ^= 0x20  # hit the pickled payload (tape bytes)
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

        reader = PHomSolver(plan_store=str(tmp_path / "plans"))
        answers = reader.evaluate_many(query, instance, tape_batches(instance, 181))
        assert answers == expected  # recompiled from scratch, bit-identical
        stats = reader.plan_cache.stats
        assert stats["compiles"] == 1 and stats["tape_compiles"] == 1
        assert stats["store"]["corrupt"] == 1
        quarantine = tmp_path / "plans" / "quarantine"
        assert len(list(quarantine.iterdir())) == 1  # evidence preserved
        # The recompile was written back through — the same path now holds
        # a fresh, valid entry, tape and all.
        verifier = PlanStore(str(tmp_path / "plans"))
        assert verifier.verify() == {"entries": 1, "valid": 1, "corrupt": 0,
                                     "failures": {}}
        (row,) = verifier.inspect()
        assert row["tape"] is True


# ----------------------------------------------------------------------
# Plan rebinding
# ----------------------------------------------------------------------
class TestRebind:
    def test_rebind_same_structure_tracks_new_probabilities(self):
        graph = make_instance(GraphClass.DOWNWARD_TREE, True, 10, 121)
        original = attach_random_probabilities(graph, 121)
        reweighted = attach_random_probabilities(graph.copy(), 122)
        query = build_query(123)
        plan = PHomSolver().compile(query, original)
        baseline = PHomSolver().solve(query, reweighted).probability
        plan.rebind(reweighted)
        assert plan.evaluate() == baseline

    def test_rebind_structure_mismatch_raises(self):
        plan = PHomSolver().compile(build_query(131), build_instance(132))
        with pytest.raises(PlanError):
            plan.rebind(build_instance(133, size=13))


# ----------------------------------------------------------------------
# Disk fault injector
# ----------------------------------------------------------------------
class TestDiskFaultInjector:
    def test_only_disk_kinds_arm(self):
        plan = FaultPlan(
            faults=(Fault(kind="kill"), Fault(kind="bit-flip")), seed=3
        )
        chaos = DiskFaultInjector(plan)
        chaos.mutate_write(b"x" * 64)
        assert chaos.fired == ["bit-flip"]  # the process fault never fires

    def test_deterministic_per_seed(self):
        def mutated(seed: int) -> bytes:
            chaos = injector("torn-write", seed=seed)
            return chaos.mutate_write(bytes(range(200)))

        assert mutated(5) == mutated(5)
        assert mutated(5) != mutated(6)

    def test_header_magic_constant(self):
        # The on-disk format is pinned: changing the magic breaks every
        # existing state directory, so the constant is load-bearing.
        assert WAL_MAGIC == b"RWAL"
