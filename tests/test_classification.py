"""Unit tests for the complexity classification (Tables 1-3)."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.classification.tables import (
    Complexity,
    Setting,
    base_results,
    classify_cell,
    format_table,
    table1,
    table2,
    table3,
    table_columns,
    table_rows,
)
from repro.graphs.classes import GraphClass

P = Complexity.PTIME
H = Complexity.SHARP_P_HARD

#: Table 1 of the paper (unlabeled, disconnected queries), row by row.
EXPECTED_TABLE1 = {
    GraphClass.UNION_ONE_WAY_PATH: (P, P, P, P, H),
    GraphClass.UNION_TWO_WAY_PATH: (P, H, P, H, H),
    GraphClass.UNION_DOWNWARD_TREE: (P, P, P, P, H),
    GraphClass.UNION_POLYTREE: (P, H, P, H, H),
    GraphClass.ALL: (P, H, P, H, H),
}

#: Table 2 of the paper (labeled, connected queries).
EXPECTED_TABLE2 = {
    GraphClass.ONE_WAY_PATH: (P, P, P, H, H),
    GraphClass.TWO_WAY_PATH: (P, P, H, H, H),
    GraphClass.DOWNWARD_TREE: (P, P, H, H, H),
    GraphClass.POLYTREE: (P, P, H, H, H),
    GraphClass.CONNECTED: (P, P, H, H, H),
}

#: Table 3 of the paper (unlabeled, connected queries).
EXPECTED_TABLE3 = {
    GraphClass.ONE_WAY_PATH: (P, P, P, P, H),
    GraphClass.TWO_WAY_PATH: (P, P, P, H, H),
    GraphClass.DOWNWARD_TREE: (P, P, P, P, H),
    GraphClass.POLYTREE: (P, P, P, H, H),
    GraphClass.CONNECTED: (P, P, P, H, H),
}


def _check_table(table, expected):
    columns = table_columns()
    for row, values in expected.items():
        for column, value in zip(columns, values):
            assert table[(row, column)].complexity is value, (row, column)


class TestTablesMatchThePaper:
    def test_table1(self):
        _check_table(table1(), EXPECTED_TABLE1)

    def test_table2(self):
        _check_table(table2(), EXPECTED_TABLE2)

    def test_table3(self):
        _check_table(table3(), EXPECTED_TABLE3)

    def test_every_cell_is_determined_and_has_provenance(self):
        for table in (table1(), table2(), table3()):
            for cell in table.values():
                assert cell.complexity in (P, H)
                assert "Proposition" in cell.proposition or "Lemma" in cell.proposition

    def test_tables_cover_all_rows_and_columns(self):
        assert len(table1()) == 25
        assert len(table2()) == 25
        assert len(table3()) == 25
        assert table_rows(1)[0] is GraphClass.UNION_ONE_WAY_PATH
        assert table_rows(2) == table_rows(3)
        with pytest.raises(ReproError):
            table_rows(4)


class TestClassifyCell:
    def test_known_border_cases(self):
        assert classify_cell(
            GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, Setting.LABELED
        ).complexity is P
        assert classify_cell(
            GraphClass.ONE_WAY_PATH, GraphClass.POLYTREE, Setting.LABELED
        ).complexity is H
        assert classify_cell(
            GraphClass.TWO_WAY_PATH, GraphClass.POLYTREE, Setting.UNLABELED
        ).complexity is H
        assert classify_cell(
            GraphClass.ALL, GraphClass.UNION_DOWNWARD_TREE, Setting.UNLABELED
        ).complexity is P

    def test_labeled_hardness_does_not_leak_to_unlabeled(self):
        # PHomL(DWT, DWT) is #P-hard (Prop 4.4) but PHom#L(DWT, DWT) is PTIME (Prop 3.6).
        labeled = classify_cell(GraphClass.DOWNWARD_TREE, GraphClass.DOWNWARD_TREE, Setting.LABELED)
        unlabeled = classify_cell(
            GraphClass.DOWNWARD_TREE, GraphClass.DOWNWARD_TREE, Setting.UNLABELED
        )
        assert labeled.complexity is H
        assert unlabeled.complexity is P

    def test_labeled_tractability_transfers_to_unlabeled(self):
        labeled = classify_cell(GraphClass.CONNECTED, GraphClass.TWO_WAY_PATH, Setting.LABELED)
        unlabeled = classify_cell(GraphClass.CONNECTED, GraphClass.TWO_WAY_PATH, Setting.UNLABELED)
        assert labeled.complexity is unlabeled.complexity is P

    def test_unlabeled_hardness_transfers_to_labeled(self):
        for setting in (Setting.LABELED, Setting.UNLABELED):
            assert classify_cell(
                GraphClass.ONE_WAY_PATH, GraphClass.CONNECTED, setting
            ).complexity is H

    def test_union_instance_classes_keep_tractability(self):
        # Section 3.3: the tractable cells also hold for unions of the instance classes.
        assert classify_cell(
            GraphClass.CONNECTED, GraphClass.UNION_TWO_WAY_PATH, Setting.LABELED
        ).complexity is P
        assert classify_cell(
            GraphClass.UNION_DOWNWARD_TREE, GraphClass.UNION_POLYTREE, Setting.UNLABELED
        ).complexity is P

    def test_all_on_all_is_hard_in_both_settings(self):
        for setting in Setting:
            assert classify_cell(GraphClass.ALL, GraphClass.ALL, setting).complexity is H

    def test_no_cell_is_contradictory(self):
        for setting in Setting:
            for query_class in GraphClass:
                for instance_class in GraphClass:
                    cell = classify_cell(query_class, instance_class, setting)
                    assert cell.complexity in (P, H)


class TestPresentation:
    def test_base_results_reference_the_paper(self):
        propositions = {result.proposition for result in base_results()}
        assert any("3.6" in p for p in propositions)
        assert any("4.10" in p for p in propositions)
        assert any("4.11" in p for p in propositions)
        assert any("5.6" in p for p in propositions)

    def test_format_table_renders_every_cell(self):
        rendering = format_table(table2(), table_rows(2))
        assert rendering.count("PTIME") == 11
        assert rendering.count("#P-hard") == 14
        assert "1WP" in rendering and "Connected" in rendering
