"""Unit tests for Lemma 3.7 and Proposition 3.6."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ClassConstraintError
from repro.core.disconnected import (
    components_of_query,
    phom_on_disconnected_instance,
    phom_unlabeled_on_union_dwt,
)
from repro.core.labeled_dwt import phom_labeled_path_on_dwt
from repro.graphs.builders import disjoint_union, downward_tree, one_way_path, star_tree, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    random_downward_tree,
    random_one_way_path,
    random_unlabeled_query_dag,
)
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestLemma37:
    def test_complement_product_formula(self):
        union = disjoint_union([one_way_path(["R"]), one_way_path(["R"])])
        instance = ProbabilisticGraph.with_uniform_probability(union, "1/2")
        query = one_way_path(["R"], prefix="q")
        probability = phom_on_disconnected_instance(query, instance, brute_force_phom)
        assert probability == Fraction(3, 4)
        assert probability == brute_force_phom(query, instance)

    def test_agrees_with_brute_force_using_tractable_component_solver(self, rng):
        for _ in range(10):
            components = [
                random_downward_tree(rng.randint(1, 4), ("R", "S"), rng) for _ in range(rng.randint(2, 3))
            ]
            union = disjoint_union(components)
            instance = attach_random_probabilities(union, rng)
            query = random_one_way_path(rng.randint(1, 3), ("R", "S"), rng, prefix="q")
            via_lemma = phom_on_disconnected_instance(
                query, instance, lambda q, c: phom_labeled_path_on_dwt(q, c, "dp")
            )
            assert via_lemma == brute_force_phom(query, instance)

    def test_requires_connected_query(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        disconnected = disjoint_union([one_way_path(["R"]), one_way_path(["R"])], prefix="q")
        with pytest.raises(ClassConstraintError):
            phom_on_disconnected_instance(disconnected, instance, brute_force_phom)

    def test_connected_instance_is_a_single_component(self):
        instance = ProbabilisticGraph(one_way_path(["R", "S"]), {("v0", "v1"): "1/2"})
        query = one_way_path(["R", "S"], prefix="q")
        assert phom_on_disconnected_instance(query, instance, brute_force_phom) == Fraction(1, 2)

    def test_components_of_query(self):
        union = disjoint_union([one_way_path(["R"]), star_tree(2)], prefix="q")
        assert len(components_of_query(union)) == 2


class TestProposition36:
    def test_non_graded_query_has_probability_zero(self):
        cyclic = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        jumping = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        instance = ProbabilisticGraph.with_uniform_probability(star_tree(3), "1/2")
        assert phom_unlabeled_on_union_dwt(cyclic, instance) == 0
        assert phom_unlabeled_on_union_dwt(jumping, instance) == 0
        assert brute_force_phom(jumping, instance) == 0

    def test_graded_query_collapses_to_difference_of_levels(self):
        # Difference of levels 3 but longest directed path only 2 (see the
        # grading tests): the probability equals that of a path of length 3.
        query = DiGraph(
            edges=[("a3", "a2"), ("a2", "a1"), ("b2", "a1"), ("b2", "b1"), ("b1", "b0")]
        )
        chain = downward_tree({"b": "a", "c": "b", "d": "c", "e": "a"})
        instance = ProbabilisticGraph.with_uniform_probability(chain, "1/2")
        expected = brute_force_phom(query, instance)
        assert phom_unlabeled_on_union_dwt(query, instance) == expected
        assert expected == brute_force_phom(unlabeled_path(3), instance) == Fraction(1, 8)

    def test_agrees_with_brute_force_on_random_inputs(self, rng):
        for _ in range(15):
            components = [
                random_downward_tree(rng.randint(1, 4), ("_",), rng) for _ in range(rng.randint(1, 2))
            ]
            instance = attach_random_probabilities(disjoint_union(components), rng)
            query = random_unlabeled_query_dag(rng.randint(2, 5), 0.4, rng)
            assert phom_unlabeled_on_union_dwt(query, instance) == brute_force_phom(query, instance)
            assert phom_unlabeled_on_union_dwt(query, instance, method="dp") == brute_force_phom(
                query, instance
            )

    def test_disconnected_queries_are_allowed(self, rng):
        instance = attach_random_probabilities(random_downward_tree(5, ("_",), rng), rng)
        query = disjoint_union([unlabeled_path(1), unlabeled_path(2)], prefix="q")
        assert phom_unlabeled_on_union_dwt(query, instance) == brute_force_phom(query, instance)

    def test_edgeless_query_is_certain(self):
        instance = ProbabilisticGraph(star_tree(2))
        query = DiGraph(vertices=["x", "y"])
        assert phom_unlabeled_on_union_dwt(query, instance) == 1

    def test_requires_union_dwt_instance(self):
        polytree_instance = ProbabilisticGraph(DiGraph(edges=[("a", "b"), ("c", "b")]))
        with pytest.raises(ClassConstraintError):
            phom_unlabeled_on_union_dwt(unlabeled_path(1), polytree_instance)
