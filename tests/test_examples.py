"""Tier-2: every script in ``examples/`` must run green as-is.

The examples are runnable documentation — each one demonstrates a paper
concept against the current API (and says which, in a ``Paper concept:``
header).  Executing them in a subprocess catches API drift the unit tests
cannot see: stale imports, renamed keywords, changed return shapes.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_directory_is_covered():
    assert len(EXAMPLES) >= 7, "expected the examples/ directory to be populated"


@pytest.mark.tier2
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_green(script: Path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"


@pytest.mark.tier2
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_declares_its_paper_concept(script: Path):
    head = script.read_text(encoding="utf-8")
    assert "Paper concept:" in head.split('"""', 2)[1], (
        f"{script.name} must state the paper concept it demonstrates in its "
        "module docstring"
    )
