"""Unit tests for Proposition 4.11 (connected queries on 2WP instances)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ClassConstraintError
from repro.core.labeled_2wp import phom_connected_on_2wp, two_way_path_lineage
from repro.graphs.builders import disjoint_union, one_way_path, star_tree, two_way_path
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    random_connected_graph,
    random_downward_tree,
    random_polytree,
    random_two_way_path,
)
from repro.lineage.builders import lineage_captures_query
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestLineageConstruction:
    def test_lineage_is_beta_acyclic(self, rng):
        for _ in range(10):
            graph = random_two_way_path(rng.randint(1, 7), ("R", "S"), rng)
            instance = attach_random_probabilities(graph, rng)
            query = random_connected_graph(rng.randint(2, 4), 0.3, ("R", "S"), rng, prefix="q")
            lineage = two_way_path_lineage(query, instance)
            assert lineage.is_beta_acyclic()

    def test_lineage_captures_query(self, rng):
        for _ in range(5):
            graph = random_two_way_path(rng.randint(1, 5), ("R", "S"), rng)
            instance = attach_random_probabilities(graph, rng)
            query = random_connected_graph(rng.randint(2, 3), 0.3, ("R", "S"), rng, prefix="q")
            lineage = two_way_path_lineage(query, instance)
            assert lineage_captures_query(lineage, query, instance)

    def test_edgeless_query_lineage_is_true(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        query = DiGraph(vertices=["lonely"])
        assert two_way_path_lineage(query, instance).is_true()

    def test_requires_connected_query_and_path_instance(self):
        path_instance = ProbabilisticGraph(one_way_path(["R", "S"]))
        disconnected = disjoint_union([one_way_path(["R"]), one_way_path(["S"])], prefix="q")
        with pytest.raises(ClassConstraintError):
            two_way_path_lineage(disconnected, path_instance)
        tree_instance = ProbabilisticGraph(star_tree(3))
        with pytest.raises(ClassConstraintError):
            two_way_path_lineage(one_way_path(["R"], prefix="q"), tree_instance)


class TestSolver:
    def test_simple_forward_query(self):
        instance = ProbabilisticGraph(
            one_way_path(["R", "S", "R"]),
            {("v0", "v1"): "1/2", ("v1", "v2"): "1/3", ("v2", "v3"): "1/4"},
        )
        query = one_way_path(["R", "S"], prefix="q")
        expected = Fraction(1, 2) * Fraction(1, 3)
        assert phom_connected_on_2wp(query, instance, "dp") == expected
        assert phom_connected_on_2wp(query, instance, "lineage") == expected

    def test_two_way_query_on_two_way_instance(self):
        instance_graph = two_way_path(
            [("R", "forward"), ("S", "backward"), ("S", "forward"), ("R", "backward")]
        )
        instance = ProbabilisticGraph.with_uniform_probability(instance_graph, "1/2")
        query = two_way_path([("R", "forward"), ("S", "backward")], prefix="q")
        reference = brute_force_phom(query, instance)
        assert phom_connected_on_2wp(query, instance, "dp") == reference
        assert phom_connected_on_2wp(query, instance, "lineage") == reference

    def test_branching_and_cyclic_queries(self, rng):
        """Proposition 4.11 allows *arbitrary* connected queries, not just paths."""
        for _ in range(15):
            graph = random_two_way_path(rng.randint(1, 6), ("R", "S"), rng)
            instance = attach_random_probabilities(graph, rng)
            query = random_connected_graph(rng.randint(2, 4), 0.4, ("R", "S"), rng, prefix="q")
            reference = brute_force_phom(query, instance)
            assert phom_connected_on_2wp(query, instance, "dp") == reference
            assert phom_connected_on_2wp(query, instance, "lineage") == reference

    def test_tree_and_polytree_queries(self, rng):
        for _ in range(10):
            graph = random_two_way_path(rng.randint(1, 6), ("R", "S"), rng)
            instance = attach_random_probabilities(graph, rng)
            if rng.random() < 0.5:
                query = random_downward_tree(rng.randint(2, 4), ("R", "S"), rng, prefix="q")
            else:
                query = random_polytree(rng.randint(2, 4), ("R", "S"), rng, prefix="q")
            reference = brute_force_phom(query, instance)
            assert phom_connected_on_2wp(query, instance, "dp") == reference

    def test_edgeless_query_has_probability_one(self):
        instance = ProbabilisticGraph(one_way_path(["R"]), {("v0", "v1"): "1/5"})
        assert phom_connected_on_2wp(DiGraph(vertices=["q"]), instance) == 1

    def test_impossible_query_has_probability_zero(self):
        instance = ProbabilisticGraph(one_way_path(["R", "R"]))
        query = one_way_path(["T"], prefix="q")
        assert phom_connected_on_2wp(query, instance) == 0

    def test_unknown_method(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        with pytest.raises(ValueError):
            phom_connected_on_2wp(one_way_path(["R"], prefix="q"), instance, "magic")

    def test_single_vertex_instance(self):
        instance = ProbabilisticGraph(DiGraph(vertices=["only"]))
        query = one_way_path(["R"], prefix="q")
        assert phom_connected_on_2wp(query, instance) == 0
