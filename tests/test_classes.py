"""Unit tests for the graph-class recognisers and the Figure 2 inclusion lattice."""

from __future__ import annotations

import pytest

from repro.exceptions import ClassConstraintError, GraphError
from repro.graphs.builders import (
    disjoint_union,
    downward_tree,
    one_way_path,
    star_tree,
    two_way_path,
)
from repro.graphs.classes import (
    GraphClass,
    class_includes,
    classify_graph,
    downward_tree_root,
    graph_class_of,
    graph_in_class,
    is_connected_graph,
    is_downward_tree,
    is_one_way_path,
    is_polytree,
    is_two_way_path,
    one_way_path_order,
    two_way_path_order,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    random_downward_tree,
    random_one_way_path,
    random_polytree,
    random_two_way_path,
)


class TestPathRecognition:
    def test_single_vertex_is_a_path(self):
        graph = DiGraph(vertices=["v"])
        assert is_one_way_path(graph)
        assert is_two_way_path(graph)
        assert is_downward_tree(graph)
        assert is_polytree(graph)

    def test_figure3_examples(self):
        # Figure 3: a labeled 1WP (top) and 2WP (bottom) over {R, S, T}.
        owp = one_way_path(["R", "S", "S", "T"])
        assert is_one_way_path(owp) and is_two_way_path(owp)
        twp = two_way_path(
            [("R", "forward"), ("S", "backward"), ("S", "forward"), ("T", "backward"), ("R", "forward")]
        )
        assert is_two_way_path(twp) and not is_one_way_path(twp)

    def test_branching_is_not_a_path(self):
        assert not is_one_way_path(star_tree(3))
        assert not is_two_way_path(star_tree(3))

    def test_disconnected_is_not_a_path(self):
        union = disjoint_union([one_way_path(["R"]), one_way_path(["S"])])
        assert not is_one_way_path(union)
        assert not is_two_way_path(union)

    def test_antiparallel_pair_is_not_a_path(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "a")])
        assert not is_two_way_path(graph)

    def test_reversed_one_way_path_is_recognised(self):
        graph = DiGraph(edges=[("c", "b", "R"), ("b", "a", "R")])
        assert is_one_way_path(graph)
        assert one_way_path_order(graph) == ["c", "b", "a"]

    def test_path_orders(self):
        path = one_way_path(["R", "S"])
        assert one_way_path_order(path) == ["v0", "v1", "v2"]
        order = two_way_path_order(path)
        assert order in (["v0", "v1", "v2"], ["v2", "v1", "v0"])
        # A two-child star is still a 2WP (but not a 1WP); a three-child star is neither.
        assert two_way_path_order(star_tree(2)) in (["s1", "s0", "s2"], ["s2", "s0", "s1"])
        with pytest.raises(ClassConstraintError):
            one_way_path_order(star_tree(2))
        with pytest.raises(ClassConstraintError):
            two_way_path_order(star_tree(3))


class TestTreeRecognition:
    def test_figure4_examples(self):
        # Figure 4: an unlabeled DWT (left) and PT (right).
        dwt = downward_tree({"b": "a", "c": "a", "d": "b", "e": "b"})
        assert is_downward_tree(dwt) and is_polytree(dwt)
        pt = DiGraph(edges=[("a", "b"), ("c", "b"), ("b", "d")])
        assert is_polytree(pt) and not is_downward_tree(pt)

    def test_downward_tree_root(self):
        dwt = downward_tree({"b": "a", "c": "b"})
        assert downward_tree_root(dwt) == "a"
        with pytest.raises(ClassConstraintError):
            downward_tree_root(DiGraph(edges=[("a", "b"), ("c", "b")]))

    def test_cycle_is_not_a_polytree(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        assert not is_polytree(graph)

    def test_connected(self):
        assert is_connected_graph(one_way_path(["R"]))
        assert not is_connected_graph(disjoint_union([one_way_path(["R"]), one_way_path(["S"])]))


class TestInclusionLattice:
    def test_figure2_direct_inclusions(self):
        assert class_includes(GraphClass.ONE_WAY_PATH, GraphClass.TWO_WAY_PATH)
        assert class_includes(GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE)
        assert class_includes(GraphClass.TWO_WAY_PATH, GraphClass.POLYTREE)
        assert class_includes(GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE)
        assert class_includes(GraphClass.POLYTREE, GraphClass.CONNECTED)
        assert class_includes(GraphClass.CONNECTED, GraphClass.ALL)

    def test_union_inclusions(self):
        assert class_includes(GraphClass.ONE_WAY_PATH, GraphClass.UNION_ONE_WAY_PATH)
        assert class_includes(GraphClass.UNION_ONE_WAY_PATH, GraphClass.UNION_DOWNWARD_TREE)
        assert class_includes(GraphClass.UNION_POLYTREE, GraphClass.ALL)

    def test_non_inclusions(self):
        assert not class_includes(GraphClass.TWO_WAY_PATH, GraphClass.DOWNWARD_TREE)
        assert not class_includes(GraphClass.DOWNWARD_TREE, GraphClass.TWO_WAY_PATH)
        assert not class_includes(GraphClass.CONNECTED, GraphClass.UNION_POLYTREE)
        assert not class_includes(GraphClass.ALL, GraphClass.CONNECTED)

    def test_inclusion_is_reflexive_and_transitive(self):
        for cls in GraphClass:
            assert class_includes(cls, cls)
            assert class_includes(cls, GraphClass.ALL)

    def test_semantic_inclusion_on_random_members(self, rng):
        """Membership is monotone along the lattice: members of a class belong to its superclasses."""
        samples = [
            random_one_way_path(3, rng=rng),
            random_two_way_path(3, rng=rng),
            random_downward_tree(5, rng=rng),
            random_polytree(5, rng=rng),
        ]
        for graph in samples:
            member_of = classify_graph(graph)
            for smaller in member_of:
                for larger in GraphClass:
                    if class_includes(smaller, larger):
                        assert larger in member_of


class TestClassification:
    def test_graph_class_of_most_specific(self):
        assert graph_class_of(one_way_path(["R", "S"])) is GraphClass.ONE_WAY_PATH
        assert graph_class_of(star_tree(3)) is GraphClass.DOWNWARD_TREE
        twp = two_way_path([("R", "forward"), ("S", "backward")])
        assert graph_class_of(twp) is GraphClass.TWO_WAY_PATH
        union = disjoint_union([one_way_path(["R"]), one_way_path(["S"])])
        assert graph_class_of(union) is GraphClass.UNION_ONE_WAY_PATH

    def test_graph_class_of_general_graphs(self):
        clique = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        assert graph_class_of(clique) is GraphClass.CONNECTED
        two_cliques = disjoint_union([clique, clique])
        assert graph_class_of(two_cliques) is GraphClass.ALL

    def test_graph_in_class_empty_graph(self):
        assert not graph_in_class(DiGraph(), GraphClass.ALL)
        with pytest.raises(GraphError):
            graph_class_of(DiGraph())

    def test_union_class_membership(self):
        union = disjoint_union([star_tree(2), one_way_path(["R"])])
        assert graph_in_class(union, GraphClass.UNION_DOWNWARD_TREE)
        assert graph_in_class(union, GraphClass.UNION_POLYTREE)
        assert not graph_in_class(union, GraphClass.UNION_ONE_WAY_PATH)
        assert not graph_in_class(union, GraphClass.CONNECTED)
