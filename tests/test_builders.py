"""Unit tests for :mod:`repro.graphs.builders`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.builders import (
    BACKWARD,
    FORWARD,
    disjoint_union,
    downward_tree,
    one_way_path,
    path_query_labels,
    polytree_from_parents,
    star_tree,
    two_way_path,
    two_way_path_from_signs,
    unlabeled_path,
)
from repro.graphs.classes import (
    is_downward_tree,
    is_one_way_path,
    is_polytree,
    is_two_way_path,
)
from repro.graphs.digraph import UNLABELED


class TestPaths:
    def test_one_way_path_structure(self):
        path = one_way_path(["R", "S", "R"])
        assert path.num_vertices() == 4
        assert path.num_edges() == 3
        assert is_one_way_path(path)
        assert path.label_of("v0", "v1") == "R"
        assert path.label_of("v1", "v2") == "S"

    def test_one_way_path_empty_labels_is_single_vertex(self):
        path = one_way_path([])
        assert path.num_vertices() == 1
        assert path.num_edges() == 0
        assert is_one_way_path(path)

    def test_unlabeled_path(self):
        path = unlabeled_path(3)
        assert path.num_edges() == 3
        assert path.labels() == {UNLABELED}
        with pytest.raises(GraphError):
            unlabeled_path(-1)

    def test_two_way_path_directions(self):
        path = two_way_path([("R", FORWARD), ("S", BACKWARD)])
        assert path.has_edge("v0", "v1", "R")
        assert path.has_edge("v2", "v1", "S")
        assert is_two_way_path(path)
        assert not is_one_way_path(path)

    def test_two_way_path_bare_labels_are_forward(self):
        path = two_way_path(["R", "S"])
        assert is_one_way_path(path)

    def test_two_way_path_bad_direction(self):
        with pytest.raises(GraphError):
            two_way_path([("R", "sideways")])

    def test_two_way_path_from_signs(self):
        path = two_way_path_from_signs([1, 1, -1])
        assert path.has_edge("v0", "v1")
        assert path.has_edge("v1", "v2")
        assert path.has_edge("v3", "v2")
        with pytest.raises(GraphError):
            two_way_path_from_signs([0])

    def test_path_query_labels_roundtrip(self):
        labels = ["R", "S", "S", "T"]
        assert path_query_labels(one_way_path(labels)) == labels

    def test_path_query_labels_rejects_non_paths(self):
        with pytest.raises(GraphError):
            path_query_labels(star_tree(3))


class TestTrees:
    def test_downward_tree(self):
        tree = downward_tree({"b": "a", "c": "a", "d": "b"}, labels={"b": "R"})
        assert is_downward_tree(tree)
        assert tree.label_of("a", "b") == "R"
        assert tree.label_of("a", "c") == UNLABELED

    def test_downward_tree_single_vertex(self):
        tree = downward_tree({}, root="only")
        assert tree.num_vertices() == 1
        assert is_downward_tree(tree)

    def test_downward_tree_empty_raises(self):
        with pytest.raises(GraphError):
            downward_tree({})

    def test_polytree_from_parents(self):
        tree = polytree_from_parents(
            {"b": ("a", "R", FORWARD), "c": ("b", "S", BACKWARD)}
        )
        assert is_polytree(tree)
        assert tree.has_edge("a", "b", "R")
        assert tree.has_edge("c", "b", "S")
        assert not is_downward_tree(tree)

    def test_polytree_bad_direction(self):
        with pytest.raises(GraphError):
            polytree_from_parents({"b": ("a", "R", "diagonal")})

    def test_star_tree(self):
        star = star_tree(4)
        assert is_downward_tree(star)
        assert star.num_edges() == 4
        assert star.out_degree("s0") == 4
        with pytest.raises(GraphError):
            star_tree(-1)


class TestDisjointUnion:
    def test_disjoint_union_renames_vertices(self):
        first = one_way_path(["R"])
        second = one_way_path(["S"])
        union = disjoint_union([first, second])
        assert union.num_vertices() == 4
        assert union.num_edges() == 2
        assert len(union.weakly_connected_components()) == 2

    def test_disjoint_union_same_component_names_do_not_merge(self):
        first = one_way_path(["R"])
        union = disjoint_union([first, first])
        assert union.num_vertices() == 4

    def test_disjoint_union_empty_raises(self):
        with pytest.raises(GraphError):
            disjoint_union([])
