"""Unit tests for hypergraphs and β-acyclicity (Definition 4.7)."""

from __future__ import annotations

import pytest

from repro.exceptions import LineageError
from repro.lineage.hypergraph import (
    Hypergraph,
    beta_elimination_order,
    hypergraph_of_clauses,
    is_beta_acyclic,
)


class TestHypergraphBasics:
    def test_add_hyperedge_extends_vertices(self):
        hypergraph = Hypergraph()
        hypergraph.add_hyperedge(["a", "b"])
        assert hypergraph.vertices == frozenset({"a", "b"})
        assert len(hypergraph.hyperedges) == 1

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(LineageError):
            Hypergraph(hyperedges=[[]])

    def test_duplicate_hyperedges_merge(self):
        hypergraph = Hypergraph(hyperedges=[["a", "b"], ["b", "a"]])
        assert len(hypergraph.hyperedges) == 1

    def test_incident_hyperedges(self):
        hypergraph = Hypergraph(hyperedges=[["a", "b"], ["b", "c"]])
        assert len(hypergraph.incident_hyperedges("b")) == 2
        assert len(hypergraph.incident_hyperedges("a")) == 1
        assert hypergraph.incident_hyperedges("missing") == []

    def test_remove_vertex_drops_empty_edges(self):
        hypergraph = Hypergraph(hyperedges=[["a"], ["a", "b"]])
        reduced = hypergraph.remove_vertex("a")
        assert reduced.vertices == frozenset({"b"})
        assert reduced.hyperedges == frozenset({frozenset({"b"})})

    def test_copy_is_independent(self):
        hypergraph = Hypergraph(hyperedges=[["a", "b"]])
        clone = hypergraph.copy()
        clone.add_hyperedge(["c"])
        assert len(hypergraph.hyperedges) == 1


class TestBetaLeaves:
    def test_chain_vertex_is_beta_leaf(self):
        hypergraph = Hypergraph(hyperedges=[["a", "b"], ["a", "b", "c"]])
        assert hypergraph.is_beta_leaf("a")
        assert hypergraph.is_beta_leaf("c")

    def test_vertex_in_incomparable_edges_is_not_beta_leaf(self):
        hypergraph = Hypergraph(hyperedges=[["a", "b"], ["a", "c"]])
        assert not hypergraph.is_beta_leaf("a")
        assert hypergraph.is_beta_leaf("b")

    def test_isolated_vertex_is_beta_leaf(self):
        hypergraph = Hypergraph(vertices=["x"], hyperedges=[["a", "b"]])
        assert hypergraph.is_beta_leaf("x")


class TestBetaAcyclicity:
    def test_nested_family_is_beta_acyclic(self):
        hypergraph = Hypergraph(hyperedges=[["a"], ["a", "b"], ["a", "b", "c"]])
        assert is_beta_acyclic(hypergraph)
        order = beta_elimination_order(hypergraph)
        assert order is not None
        assert set(order) <= {"a", "b", "c"}

    def test_interval_family_is_beta_acyclic(self):
        # Connected sub-intervals of a path containing an endpoint are nested:
        # this is the structure behind Proposition 4.11.
        hypergraph = Hypergraph(
            hyperedges=[["e1"], ["e1", "e2"], ["e1", "e2", "e3"], ["e3", "e4"]]
        )
        assert is_beta_acyclic(hypergraph)

    def test_triangle_is_not_beta_acyclic(self):
        triangle = Hypergraph(hyperedges=[["a", "b"], ["b", "c"], ["a", "c"]])
        assert not is_beta_acyclic(triangle)
        assert beta_elimination_order(triangle) is None

    def test_alpha_acyclic_but_beta_cyclic_example(self):
        # The classic example: adding the big edge {a, b, c} makes the
        # triangle α-acyclic but it stays β-cyclic.
        hypergraph = Hypergraph(
            hyperedges=[["a", "b"], ["b", "c"], ["a", "c"], ["a", "b", "c"]]
        )
        assert not is_beta_acyclic(hypergraph)

    def test_empty_hypergraph_is_beta_acyclic(self):
        assert is_beta_acyclic(Hypergraph())
        assert beta_elimination_order(Hypergraph(vertices=["a", "b"])) == []

    def test_elimination_order_is_valid(self):
        hypergraph = Hypergraph(hyperedges=[["a", "b"], ["b", "c"], ["b"]])
        order = beta_elimination_order(hypergraph)
        assert order is not None
        current = hypergraph.copy()
        for vertex in order:
            assert current.is_beta_leaf(vertex)
            current = current.remove_vertex(vertex)
        assert not current.hyperedges

    def test_hypergraph_of_clauses(self):
        hypergraph = hypergraph_of_clauses([["x", "y"], ["y"]])
        assert hypergraph.vertices == frozenset({"x", "y"})
        assert len(hypergraph.hyperedges) == 2
