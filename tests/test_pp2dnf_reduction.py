"""Unit tests for PP2DNF formulas and the Propositions 4.1 / 5.6 reductions."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ReproError
from repro.graphs.classes import is_one_way_path, is_polytree, is_two_way_path
from repro.reductions.pp2dnf import (
    PP2DNF,
    count_satisfying_valuations,
    prop41_reduction,
    prop56_reduction,
    random_pp2dnf,
    satisfying_valuations_via_phom,
)


class TestPP2DNF:
    def test_construction_validation(self):
        with pytest.raises(ReproError):
            PP2DNF(0, 1, ((1, 1),))
        with pytest.raises(ReproError):
            PP2DNF(1, 1, ())
        with pytest.raises(ReproError):
            PP2DNF(1, 1, ((1, 2),))

    def test_evaluation(self):
        formula = PP2DNF(2, 2, ((1, 2), (2, 1)))
        assert formula.evaluate((True, False), (False, True))
        assert not formula.evaluate((True, False), (True, False))
        assert formula.num_clauses == 2
        assert formula.num_variables == 4

    def test_count_satisfying_valuations_known_values(self):
        # X1 ∧ Y1 over one variable each: exactly one satisfying valuation.
        assert count_satisfying_valuations(PP2DNF(1, 1, ((1, 1),))) == 1
        # X1Y1 ∨ X1Y2: X1 must be true and at least one of Y1, Y2: 1 * 3 = 3.
        assert count_satisfying_valuations(PP2DNF(1, 2, ((1, 1), (1, 2)))) == 3
        # The paper's running example X1Y2 ∨ X1Y1 ∨ X2Y2 (Figure 7) has 2+2=4
        # variables; direct enumeration gives 8 satisfying valuations.
        figure7 = PP2DNF(2, 2, ((1, 2), (1, 1), (2, 2)))
        assert count_satisfying_valuations(figure7) == 8

    def test_random_formula_respects_bounds(self, rng):
        formula = random_pp2dnf(3, 2, 4, rng)
        assert formula.num_clauses == 4
        assert len(set(formula.clauses)) == 4
        with pytest.raises(ReproError):
            random_pp2dnf(1, 1, 2, rng)


class TestProp41Reduction:
    def test_output_classes_and_shape(self):
        formula = PP2DNF(2, 2, ((1, 2), (1, 1), (2, 2)))
        query, instance = prop41_reduction(formula)
        assert is_one_way_path(query)
        assert query.num_edges() == formula.num_clauses + 5  # T + (m+3) S edges + T
        assert is_polytree(instance.graph)
        assert instance.graph.labels() == {"S", "T"}

    def test_uncertain_edges_encode_the_valuation(self):
        formula = PP2DNF(2, 3, ((1, 1), (2, 3)))
        _query, instance = prop41_reduction(formula)
        uncertain = instance.uncertain_edges()
        assert len(uncertain) == formula.num_variables
        assert all(instance.probability(e) == Fraction(1, 2) for e in uncertain)
        assert all(e.label == "S" for e in uncertain)

    def test_counting_identity_small_formulas(self):
        formulas = [
            PP2DNF(1, 1, ((1, 1),)),
            PP2DNF(1, 2, ((1, 1), (1, 2))),
            PP2DNF(2, 1, ((1, 1), (2, 1))),
            PP2DNF(2, 2, ((1, 2), (2, 1))),
        ]
        for formula in formulas:
            assert satisfying_valuations_via_phom(formula) == count_satisfying_valuations(formula)

    def test_counting_identity_random_formula(self, rng):
        formula = random_pp2dnf(2, 2, 2, rng)
        assert satisfying_valuations_via_phom(formula) == count_satisfying_valuations(formula)

    def test_inconsistent_solver_detected(self):
        formula = PP2DNF(1, 1, ((1, 1),))
        with pytest.raises(ReproError):
            satisfying_valuations_via_phom(formula, phom_solver=lambda q, i: Fraction(1, 7))


class TestProp56Reduction:
    def test_output_classes_and_shape(self):
        formula = PP2DNF(2, 2, ((1, 2), (1, 1), (2, 2)))
        query, instance = prop56_reduction(formula)
        assert is_two_way_path(query)
        assert query.is_unlabeled()
        assert is_polytree(instance.graph)
        assert instance.graph.is_unlabeled()
        # The query is →→→ (→→←)^{m+3} →→→ as in Figure 8.
        assert query.num_edges() == 3 + 3 * (formula.num_clauses + 3) + 3

    def test_uncertain_edges_count(self):
        formula = PP2DNF(1, 2, ((1, 1), (1, 2)))
        _query, instance = prop56_reduction(formula)
        assert len(instance.uncertain_edges()) == formula.num_variables

    def test_counting_identity(self):
        formula = PP2DNF(1, 1, ((1, 1),))
        assert satisfying_valuations_via_phom(formula, unlabeled=True) == 1
