"""Property-based tests (hypothesis) for the graph substrate."""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.graphs.classes import GraphClass, class_includes, classify_graph, graph_class_of
from repro.graphs.digraph import DiGraph
from repro.graphs.grading import level_mapping
from repro.graphs.homomorphism import has_homomorphism

VERTICES = ["a", "b", "c", "d", "e"]
LABELS = ["R", "S"]

edges_strategy = st.sets(
    st.tuples(st.sampled_from(VERTICES), st.sampled_from(VERTICES), st.sampled_from(LABELS)),
    min_size=1,
    max_size=8,
).map(lambda pairs: [(u, v, l) for (u, v, l) in pairs if u != v])


def _build(edge_list):
    graph = DiGraph()
    for source, target, label in edge_list:
        if not graph.has_edge(source, target):
            graph.add_edge(source, target, label)
    return graph


@settings(max_examples=60, deadline=None)
@given(edges=edges_strategy)
def test_classification_is_upward_closed_along_the_lattice(edges):
    assume(edges)
    graph = _build(edges)
    member_of = classify_graph(graph)
    assert GraphClass.ALL in member_of
    for smaller in member_of:
        for larger in GraphClass:
            if class_includes(smaller, larger):
                assert larger in member_of
    # The reported "most specific" class is indeed one the graph belongs to.
    assert graph_class_of(graph) in member_of


@settings(max_examples=60, deadline=None)
@given(edges=edges_strategy)
def test_level_mappings_satisfy_the_level_equation(edges):
    assume(edges)
    graph = _build(edges)
    mapping = level_mapping(graph)
    if mapping is None:
        return
    for edge in graph.edges():
        assert mapping.levels[edge.target] == mapping.levels[edge.source] - 1
    assert mapping.difference >= 0
    assert min(mapping.levels.values()) == 0


@settings(max_examples=60, deadline=None)
@given(edges=edges_strategy)
def test_graphs_with_a_cycle_or_jump_are_not_graded(edges):
    assume(edges)
    graph = _build(edges)
    if graph.has_directed_cycle():
        assert level_mapping(graph) is None


@settings(max_examples=40, deadline=None)
@given(edges=edges_strategy)
def test_every_graph_maps_into_itself_and_into_supergraphs(edges):
    assume(edges)
    graph = _build(edges)
    assert has_homomorphism(graph, graph)
    extended = graph.copy()
    for vertex in list(extended.vertices):
        if not extended.has_edge(vertex, "fresh"):
            extended.add_edge(vertex, "fresh", "R")
            break
    assert has_homomorphism(graph, extended)


@settings(max_examples=60, deadline=None)
@given(edges=edges_strategy)
def test_component_count_matches_component_graphs(edges):
    assume(edges)
    graph = _build(edges)
    components = graph.weakly_connected_components()
    component_graphs = graph.connected_component_graphs()
    assert len(components) == len(component_graphs)
    assert sum(len(c) for c in components) == graph.num_vertices()
    assert sum(g.num_edges() for g in component_graphs) == graph.num_edges()
