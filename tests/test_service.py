"""Tests for the parallel serving layer (:mod:`repro.service`).

The inline mode (``num_workers=0``) runs the exact worker logic in-process,
so most semantics are tested there; a smaller set of tests exercises the
real multi-process pool (sharding, cross-process updates, pinned-seed
reproducibility across worker counts).
"""

from __future__ import annotations

import io
import json
import pickle

import pytest

from repro.cli import main as cli_main
from repro.core.solver import PHomSolver
from repro.exceptions import ServiceError
from repro.graphs.builders import one_way_path
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph
from repro.graphs.serialization import probabilistic_graph_to_dict, graph_to_dict
from repro.plan import PlanCache
from repro.service import (
    QueryService,
    ServiceRequest,
    run_jsonl_session,
)
from repro.workloads.generators import (
    attach_random_probabilities,
    intractable_workload,
    make_instance,
    query_traffic_trace,
)


def build_instance(seed: int, instance_class=GraphClass.UNION_DOWNWARD_TREE, labeled=True):
    graph = make_instance(instance_class, labeled, 16, seed)
    return attach_random_probabilities(graph, seed)


def trace_queries(seed: int, count: int = 20):
    trace = query_traffic_trace(
        count, 6, skew=1.2, query_class=GraphClass.ONE_WAY_PATH, rng=seed
    )
    return trace.queries()


@pytest.fixture
def inline_service():
    with QueryService(num_workers=0) as service:
        yield service


class TestInlineService:
    def test_submit_matches_solver_exactly(self, inline_service):
        instance = build_instance(1)
        solver = PHomSolver()
        for seed in (3, 4):
            for query in trace_queries(seed, 6):
                expected = solver.solve(query, instance)
                got = inline_service.submit(query, instance)
                assert got.probability == expected.probability
                assert got.method == expected.method

    def test_mixed_precision_in_one_batch(self, inline_service):
        instance = build_instance(2)
        instance_id = inline_service.register_instance(instance)
        query = trace_queries(5, 1)[0]
        exact, floaty = inline_service.submit_many(
            [
                ServiceRequest(query, instance_id, precision="exact"),
                ServiceRequest(query, instance_id, precision="float"),
            ]
        )
        solver = PHomSolver()
        assert exact.probability == solver.solve(query, instance).probability
        assert floaty.probability == solver.solve(
            query, instance, precision="float"
        ).probability
        assert isinstance(floaty.probability, float)
        # Different precisions must not coalesce into one computation.
        assert not floaty.coalesced

    def test_duplicates_coalesce_before_dispatch(self, inline_service):
        instance = build_instance(3)
        instance_id = inline_service.register_instance(instance)
        query = trace_queries(7, 1)[0]
        results = inline_service.submit_many([(query, instance_id)] * 5)
        assert len(results) == 5
        assert len({str(r.probability) for r in results}) == 1
        assert [r.coalesced for r in results] == [False, True, True, True, True]
        stats = inline_service.stats()
        assert stats.requests == 5
        assert stats.dispatched == 1
        assert stats.coalesced == 4
        assert stats.dedupe_hit_rate() == pytest.approx(0.8)

    def test_isomorphic_path_queries_coalesce(self, inline_service):
        instance = build_instance(4)
        instance_id = inline_service.register_instance(instance)
        one = one_way_path(["R", "S"], prefix="a")
        other = one_way_path(["R", "S"], prefix="b")
        first, second = inline_service.submit_many(
            [(one, instance_id), (other, instance_id)]
        )
        assert second.coalesced
        assert second.probability == first.probability

    def test_result_cache_hits_across_batches(self, inline_service):
        instance = build_instance(5)
        instance_id = inline_service.register_instance(instance)
        query = trace_queries(9, 1)[0]
        cold = inline_service.submit(query, instance_id)
        warm = inline_service.submit(query, instance_id)
        assert not cold.cached and warm.cached
        assert warm.probability == cold.probability
        assert inline_service.stats().result_cache_hits() == 1

    def test_update_probability_invalidates_results(self, inline_service):
        instance = build_instance(6)
        instance_id = inline_service.register_instance(instance)
        query = trace_queries(11, 1)[0]
        before = inline_service.submit(query, instance_id)
        edge = instance.uncertain_edges()[0]
        inline_service.update_probability(instance_id, edge, "1/2")
        # The caller-side registered object is updated too.
        assert str(instance.probability(edge)) == "1/2"
        after = inline_service.submit(query, instance_id)
        assert not after.cached
        assert after.probability == PHomSolver().solve(query, instance).probability

    def test_bad_update_is_rejected_atomically(self, inline_service):
        instance = build_instance(7)
        instance_id = inline_service.register_instance(instance)
        edge = instance.uncertain_edges()[0]
        with pytest.raises(Exception):
            inline_service.update_probability(instance_id, edge, "7/2")
        # Neither side applied the bad value.
        assert instance.probability(edge) <= 1

    def test_unregistered_instance_id_raises(self, inline_service):
        query = trace_queries(13, 1)[0]
        with pytest.raises(ServiceError, match="not registered"):
            inline_service.submit(query, "nope")
        with pytest.raises(ServiceError, match="not registered"):
            inline_service.submit_many([ServiceRequest(query, "nope")])

    def test_failing_request_reports_its_id(self, inline_service):
        instance = build_instance(8)
        instance_id = inline_service.register_instance(instance)
        empty = DiGraph()
        empty.add_vertex("lonely")  # edge-less is fine; zero vertices is not
        bad = DiGraph()
        with pytest.raises(ServiceError, match="r-bad"):
            inline_service.submit_many(
                [
                    ServiceRequest(bad, instance_id, request_id="r-bad"),
                    ServiceRequest(empty, instance_id, request_id="r-good"),
                ]
            )

    def test_pinned_seed_approx_is_reproducible_and_cached(self, inline_service):
        workload = intractable_workload(8, rng=21)
        instance_id = inline_service.register_instance(workload.instance)
        kwargs = dict(precision="approx", epsilon=0.2, delta=0.1, seed=99)
        first = inline_service.submit(workload.query, instance_id, **kwargs)
        second = inline_service.submit(workload.query, instance_id, **kwargs)
        assert first.method == "karp-luby"
        assert float(first) == float(second)
        assert second.cached

    def test_service_level_sampling_contract_is_inherited(self):
        workload = intractable_workload(8, rng=23)
        with QueryService(
            num_workers=0, default_precision="approx",
            epsilon=0.2, delta=0.1, seed=13,
        ) as service:
            instance_id = service.register_instance(workload.instance)
            # No per-request sampling args: the service's (ε, δ, seed) apply.
            first = service.submit(workload.query, instance_id)
            second = service.submit(workload.query, instance_id)
            assert first.method == "karp-luby"
            assert "seed=13" in first.notes
            assert float(first) == float(second)
            assert second.cached  # the inherited pinned seed makes it cacheable

    def test_partial_failures_can_be_returned_instead_of_raised(self, inline_service):
        instance = build_instance(91)
        instance_id = inline_service.register_instance(instance)
        good_query = trace_queries(93, 1)[0]
        results = inline_service.submit_many(
            [
                ServiceRequest(good_query, instance_id, request_id="ok"),
                ServiceRequest(DiGraph(), instance_id, request_id="bad"),
            ],
            on_error="return",
        )
        assert results[0].error is None
        assert results[0].probability == PHomSolver().solve(good_query, instance).probability
        assert results[1].error is not None and results[1].result is None
        with pytest.raises(ServiceError, match="bad"):
            results[1].probability

    def test_unseeded_approx_is_never_cached(self, inline_service):
        workload = intractable_workload(8, rng=22)
        instance_id = inline_service.register_instance(workload.instance)
        kwargs = dict(precision="approx", epsilon=0.2, delta=0.1)
        first = inline_service.submit(workload.query, instance_id, **kwargs)
        second = inline_service.submit(workload.query, instance_id, **kwargs)
        assert not first.cached and not second.cached

    def test_stats_expose_per_worker_plan_cache(self, inline_service):
        instance = build_instance(9)
        inline_service.submit(trace_queries(15, 1)[0], instance)
        stats = inline_service.stats()
        (worker,) = stats.workers
        assert worker["plan_cache"]["compiles"] >= 1
        assert "evictions" in worker["plan_cache"]
        assert worker["instances"] == ["instance-0"]

    def test_replacing_an_instance_id_serves_the_new_instance(self, inline_service):
        first = build_instance(81)
        second = build_instance(82)
        query = trace_queries(83, 1)[0]
        inline_service.register_instance(first, "shared")
        before = inline_service.submit(query, "shared")
        inline_service.register_instance(second, "shared")
        after = inline_service.submit(query, "shared")
        assert not after.cached
        assert after.probability == PHomSolver().solve(query, second).probability
        # The displaced object is no longer known by identity: submitting it
        # registers it fresh under a new id instead of answering from "shared".
        again = inline_service.submit(query, first)
        assert again.probability == before.probability

    def test_inline_worker_holds_its_own_copy(self, inline_service):
        instance = build_instance(85)
        instance_id = inline_service.register_instance(instance)
        query = trace_queries(87, 1)[0]
        baseline = inline_service.submit(query, instance_id)
        # A direct mutation of the caller's object must not leak into the
        # worker shard (same semantics as a process pool): answers only
        # change through update_probability.
        edge = instance.uncertain_edges()[0]
        original = instance.probability(edge)
        instance.set_probability(edge, "1/16" if str(original) != "1/16" else "1/8")
        unchanged = inline_service.submit(query, instance_id)
        assert unchanged.probability == baseline.probability
        inline_service.update_probability(instance_id, edge, instance.probability(edge))
        updated = inline_service.submit(query, instance_id)
        assert updated.probability == PHomSolver().solve(query, instance).probability

    def test_closed_service_rejects_work(self):
        service = QueryService(num_workers=0)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.register_instance(build_instance(10))


class TestMultiprocessService:
    def test_exact_answers_bit_identical_to_solve_many(self):
        instances = [build_instance(s) for s in (31, 32, 33)]
        queries = trace_queries(35, 15)
        solver = PHomSolver()
        with QueryService(num_workers=2) as service:
            ids = [service.register_instance(inst) for inst in instances]
            requests = [
                (query, ids[position % 3]) for position, query in enumerate(queries)
            ]
            results = service.submit_many(requests)
            for position, query in enumerate(queries):
                expected = solver.solve(query, instances[position % 3])
                assert results[position].probability == expected.probability

    def test_affinity_is_stable_and_spreads_instances(self):
        with QueryService(num_workers=2) as service:
            owners = {
                name: service._worker_for(name)
                for name in ("instance-0", "instance-1", "instance-2", "instance-3")
            }
            assert all(0 <= worker < 2 for worker in owners.values())
            assert owners == {
                name: service._worker_for(name) for name in owners
            }

    def test_update_reaches_the_owning_worker(self):
        instance = build_instance(41)
        query = trace_queries(43, 1)[0]
        with QueryService(num_workers=2) as service:
            instance_id = service.register_instance(instance)
            service.submit(query, instance_id)
            edge = instance.uncertain_edges()[0]
            service.update_probability(instance_id, edge, "1/3")
            got = service.submit(query, instance_id)
            assert got.probability == PHomSolver().solve(query, instance).probability

    def test_pinned_seed_estimate_identical_across_worker_counts(self):
        workload = intractable_workload(8, rng=45)
        values = []
        for workers in (0, 2):
            with QueryService(num_workers=workers) as service:
                instance = pickle.loads(pickle.dumps(workload.instance))
                instance_id = service.register_instance(instance)
                result = service.submit(
                    workload.query, instance_id,
                    precision="approx", epsilon=0.2, delta=0.1, seed=7,
                )
                values.append(float(result))
        assert values[0] == values[1]


class TestJsonlProtocol:
    def make_lines(self, instance, query, extra=()):
        lines = [
            json.dumps(
                {
                    "op": "register",
                    "id": "inst",
                    "instance": probabilistic_graph_to_dict(instance),
                }
            ),
            json.dumps(
                {
                    "op": "solve",
                    "id": "r1",
                    "instance": "inst",
                    "query": graph_to_dict(query),
                }
            ),
            json.dumps(
                {
                    "op": "solve",
                    "id": "r2",
                    "instance": "inst",
                    "query": graph_to_dict(query),
                    "precision": "float",
                }
            ),
        ]
        lines.extend(extra)
        return lines

    def test_session_round_trip(self):
        instance = build_instance(51)
        query = trace_queries(53, 1)[0]
        edge = instance.uncertain_edges()[0]
        update = json.dumps(
            {
                "op": "update",
                "instance": "inst",
                "edge": [str(edge.source), str(edge.target)],
                "probability": "1/2",
            }
        )
        out = io.StringIO()
        with QueryService(num_workers=0) as service:
            code = run_jsonl_session(
                self.make_lines(instance, query, extra=[update]), out, service
            )
        assert code == 0
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        assert lines[0] == {"ok": True, "op": "register", "instance": "inst"}
        by_id = {line.get("id"): line for line in lines if "id" in line}
        assert by_id["r1"]["method"] == by_id["r2"]["method"]
        assert by_id["r1"]["float"] == pytest.approx(by_id["r2"]["float"], abs=1e-9)
        assert "/" in by_id["r1"]["probability"] or by_id["r1"]["probability"] in "01"
        assert lines[-1] == {"ok": True, "op": "update", "instance": "inst"}

    def test_bad_lines_keep_the_session_alive(self):
        instance = build_instance(55)
        query = trace_queries(57, 1)[0]
        lines = self.make_lines(instance, query)
        lines.insert(1, "not json at all")
        lines.append(json.dumps({"op": "solve", "instance": "ghost", "query": graph_to_dict(query), "id": "r3"}))
        out = io.StringIO()
        with QueryService(num_workers=0) as service:
            code = run_jsonl_session(lines, out, service)
        assert code == 1
        parsed = [json.loads(line) for line in out.getvalue().splitlines()]
        errors = [line for line in parsed if "error" in line]
        assert len(errors) == 2
        solved = [line for line in parsed if line.get("id") in ("r1", "r2")]
        assert len(solved) == 2

    def test_cli_serve_batch(self, tmp_path):
        instance = build_instance(59)
        query = trace_queries(61, 1)[0]
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join(self.make_lines(instance, query)) + "\n")
        out, err = io.StringIO(), io.StringIO()
        code = cli_main(
            ["serve", "--batch", str(requests), "--workers", "0", "--stats"],
            out=out, err=err,
        )
        assert code == 0
        assert len(out.getvalue().splitlines()) == 3
        assert "served 2 request(s)" in err.getvalue()


class TestPicklableArtifacts:
    CELLS = [
        (GraphClass.TWO_WAY_PATH, GraphClass.UNION_TWO_WAY_PATH, True, "dp"),
        (GraphClass.ONE_WAY_PATH, GraphClass.UNION_DOWNWARD_TREE, True, "dp"),
        (GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False, "dp"),
        (GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False, "automaton"),
    ]

    @pytest.mark.parametrize("query_class,instance_class,labeled,prefer", CELLS)
    def test_plans_survive_pickling(self, query_class, instance_class, labeled, prefer):
        from repro.workloads.generators import workload_for_cell

        workload = workload_for_cell(query_class, instance_class, labeled, 3, 10, rng=63)
        solver = PHomSolver(prefer=prefer)
        plan = solver.compile(workload.query, workload.instance)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.evaluate() == plan.evaluate()
        assert clone.method == plan.method

    def test_fallback_plan_estimate_reproducible_after_pickling(self):
        from repro.approx import ApproxParams

        workload = intractable_workload(8, rng=65)
        plan = PHomSolver().compile(workload.query, workload.instance)
        clone = pickle.loads(pickle.dumps(plan))
        params = ApproxParams(epsilon=0.2, delta=0.1, seed=5)
        assert plan.estimate(params=params).value == clone.estimate(params=params).value

    def test_solver_pickle_keeps_config_drops_cache(self):
        solver = PHomSolver(
            allow_brute_force=False, prefer="automaton", precision="float",
            plan_cache_size=7,
        )
        instance = build_instance(67)
        solver.solve(trace_queries(69, 1)[0], instance)
        clone = pickle.loads(pickle.dumps(solver))
        assert clone.allow_brute_force is False
        assert clone.prefer == "automaton"
        assert clone.plan_cache.maxsize == 7
        assert clone.plan_cache.stats["size"] == 0

    def test_instance_pickle_is_independent(self):
        instance = build_instance(71)
        clone = pickle.loads(pickle.dumps(instance))
        edge = instance.uncertain_edges()[0]
        clone.set_probability(edge, "1/2")
        assert instance.probability(edge) != clone.probability(edge) or str(
            instance.probability(edge)
        ) == "1/2"
        assert clone.graph.frozen


class TestPlanCacheEvictions:
    def test_eviction_counter_and_hook(self):
        evicted = []
        cache = PlanCache(maxsize=1, on_evict=lambda key, plan: evicted.append(key))
        instance = build_instance(73)
        solver = PHomSolver()
        solver._plan_cache = cache
        solver.solve(one_way_path(["R"]), instance)
        solver.solve(one_way_path(["S"]), instance)
        stats = cache.stats
        assert stats["compiles"] == 2
        assert stats["evictions"] == 1
        assert len(evicted) == 1
        assert stats["size"] == 1
        assert stats["maxsize"] == 1
