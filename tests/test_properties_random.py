"""Property-based / metamorphic tests over randomly generated instances.

A seeded in-repo generator (no external dependency) draws small random
workloads across the dispatch routes — tractable cells *and* #P-hard
fallbacks — and checks invariants that must hold for every probabilistic
instance:

* the answer is a probability: ``0 ≤ Pr ≤ 1``;
* monotonicity: raising one edge's probability cannot lower ``Pr`` (queries
  are edge-positive, so the event is upward closed in the edge set);
* the product rule over disconnected components (Lemma 3.7): for a
  connected query, ``Pr = 1 − Π_i (1 − Pr_i)`` over the instance components;
* complement consistency: ``Pr(G ⇝ H)`` plus the summed probability of the
  worlds *without* a homomorphism is exactly 1;
* differential agreement: the auto dispatcher (exact), the brute-force
  inclusion–exclusion oracle (a different algorithm), and the float backend
  all agree — exactly for the first two, within 1e-9 for the float path.

The seed is pinned (override with the ``REPRO_FUZZ_SEED`` environment
variable, which CI sets explicitly), so failures are deterministic
regressions, never flakes.
"""

from __future__ import annotations

import os
import random
import warnings
from fractions import Fraction

import pytest

from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph
from repro.graphs.homomorphism import has_homomorphism
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads.generators import (
    attach_random_probabilities,
    intractable_workload,
    make_instance,
    make_query,
    redundant_query_workload,
    workload_for_cell,
)

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20170514"))

#: (query class, instance class, labeled) cells the generator draws from —
#: one per tractable dispatch route, plus sizes that keep brute force cheap.
CELLS = [
    (GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True),
    (GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True),
    (GraphClass.DOWNWARD_TREE, GraphClass.DOWNWARD_TREE, False),
    (GraphClass.UNION_ONE_WAY_PATH, GraphClass.POLYTREE, False),
]


def random_workloads(count: int, seed_offset: int = 0):
    """Yield ``count`` small random (query, instance) pairs, mixed cells.

    The cell is selected by ``seed_offset + index`` (not ``index`` alone),
    because the parametrized tests draw one workload each with consecutive
    offsets — the mix must rotate across *calls*, not only within one call.
    Every fifth draw is a guaranteed #P-hard cell (small enough for the
    exact fallback to remain the ground truth); the rest cycle through all
    four tractable routes in ``CELLS``.
    """
    rng = random.Random(SEED + seed_offset)
    for index in range(count):
        selector = seed_offset + index
        if selector % 5 == 4:
            yield intractable_workload(rng.randint(6, 8), rng)
        else:
            query_class, instance_class, labeled = CELLS[selector % len(CELLS)]
            yield workload_for_cell(
                query_class,
                instance_class,
                labeled,
                query_size=rng.randint(2, 3),
                instance_size=rng.randint(4, 7),
                rng=rng,
                certain_fraction=0.3,
            )


def solve_exact(query, instance, **kwargs):
    solver = PHomSolver(**kwargs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", IntractableFallbackWarning)
        return solver.solve(query, instance)


class TestGeneratorCoverage:
    def test_offsets_cover_multiple_dispatch_routes(self):
        """Meta-test: the offsets used by the suite must hit several routes.

        Guards against the generator degenerating to a single cell (the
        suite's claims about route coverage depend on this rotation).
        """
        methods = {
            solve_exact(w.query, w.instance).method
            for offset in range(12)
            for w in random_workloads(1, seed_offset=offset)
        }
        assert "brute-force-worlds" in methods  # the #P-hard fallback
        assert len(methods) >= 4, f"only routes {sorted(methods)} were drawn"


class TestProbabilityRange:
    @pytest.mark.parametrize("index", range(12))
    def test_answer_is_a_probability(self, index):
        workload = next(random_workloads(1, seed_offset=index))
        result = solve_exact(workload.query, workload.instance)
        assert isinstance(result.probability, Fraction)
        assert 0 <= result.probability <= 1


class TestMonotonicity:
    @pytest.mark.parametrize("index", range(10))
    def test_raising_an_edge_probability_never_lowers_the_answer(self, index):
        workload = next(random_workloads(1, seed_offset=100 + index))
        instance = workload.instance
        uncertain = instance.uncertain_edges()
        if not uncertain:
            pytest.skip("workload drew no uncertain edges")
        before = solve_exact(workload.query, instance).probability
        rng = random.Random(SEED + index)
        edge = uncertain[rng.randrange(len(uncertain))]
        old = instance.probability(edge)
        raised = ProbabilisticGraph(instance.graph, instance.probabilities())
        raised.set_probability(edge, old + (1 - old) / 2)
        after = solve_exact(workload.query, raised).probability
        assert after >= before


class TestProductRuleOverComponents:
    @pytest.mark.parametrize("index", range(6))
    def test_connected_query_on_disjoint_union(self, index):
        rng = random.Random(SEED + 200 + index)
        query = make_query(GraphClass.ONE_WAY_PATH, True, rng.randint(2, 3), rng)
        parts = [
            attach_random_probabilities(
                make_instance(GraphClass.DOWNWARD_TREE, True, rng.randint(4, 6), rng),
                rng,
            )
            for _ in range(2)
        ]
        union_graph = DiGraph()
        union_probabilities = {}
        for tag, part in enumerate(parts):
            for vertex in part.graph.vertices:
                union_graph.add_vertex((tag, vertex))
            for edge in part.graph.edges():
                union_graph.add_edge((tag, edge.source), (tag, edge.target), edge.label)
                union_probabilities[((tag, edge.source), (tag, edge.target))] = (
                    part.probability(edge)
                )
        union = ProbabilisticGraph(union_graph, union_probabilities)

        whole = solve_exact(query, union).probability
        survival = Fraction(1)
        for part in parts:
            survival *= 1 - solve_exact(query, part).probability
        assert whole == 1 - survival


class TestComplementConsistency:
    @pytest.mark.parametrize("index", range(6))
    def test_hom_and_no_hom_worlds_sum_to_one(self, index):
        workload = next(random_workloads(1, seed_offset=300 + index))
        instance = workload.instance
        if instance.num_nonzero_worlds() > 2 ** 10:
            pytest.skip("instance too large for world enumeration")
        answer = solve_exact(workload.query, instance).probability
        no_hom = Fraction(0)
        for world in instance.possible_worlds():
            if not has_homomorphism(workload.query, world.graph):
                no_hom += world.probability
        assert answer + no_hom == 1


class TestMinimizationDifferential:
    """Minimized-vs-unminimized differential route (PR 5, query frontend).

    The Chandra–Merlin minimizer rewrites a query before classification;
    equivalence of the rewrite means the exact answer must be *identical* to
    the non-minimizing dispatcher on every instance — including redundant
    queries purpose-built so that the two dispatchers take different routes.
    """

    @pytest.mark.parametrize("index", range(8))
    def test_minimized_equals_unminimized_on_random_workloads(self, index):
        workload = next(random_workloads(1, seed_offset=500 + index))
        minimized = solve_exact(workload.query, workload.instance)
        unminimized = solve_exact(
            workload.query, workload.instance, minimize_queries=False
        )
        assert minimized.probability == unminimized.probability

    @pytest.mark.parametrize("index", range(8))
    def test_minimized_equals_unminimized_on_redundant_queries(self, index):
        rng = random.Random(SEED + 600 + index)
        core_class = [
            GraphClass.ONE_WAY_PATH,
            GraphClass.TWO_WAY_PATH,
            GraphClass.DOWNWARD_TREE,
        ][index % 3]
        workload = redundant_query_workload(
            core_class=core_class,
            core_size=rng.randint(1, 2),
            redundancy=rng.randint(1, 3),
            instance_class=GraphClass.DOWNWARD_TREE,
            instance_size=rng.randint(4, 7),
            labeled=index % 2 == 0,
            rng=rng,
        )
        minimized = solve_exact(workload.query, workload.instance)
        unminimized = solve_exact(
            workload.query, workload.instance, minimize_queries=False
        )
        assert minimized.probability == unminimized.probability
        # both agree with the possible-world oracle, closing the triangle
        from repro.probability.brute_force import brute_force_phom

        assert minimized.probability == brute_force_phom(
            workload.query, workload.instance
        )


class TestDifferentialAgreement:
    @pytest.mark.parametrize("index", range(10))
    def test_exact_float_and_oracle_agree(self, index):
        workload = next(random_workloads(1, seed_offset=400 + index))
        exact = solve_exact(workload.query, workload.instance).probability

        # A genuinely different exact algorithm: inclusion-exclusion over
        # the minimal match edge sets.
        solver = PHomSolver()
        oracle = solver.solve(
            workload.query, workload.instance, method="brute-force-matches"
        ).probability
        assert exact == oracle

        float_result = solve_exact(
            workload.query, workload.instance, precision="float"
        ).probability
        assert abs(float(exact) - float_result) <= 1e-9
