"""Unit tests for the brute-force PHom oracles."""

from __future__ import annotations

from fractions import Fraction

from repro.graphs.builders import disjoint_union, one_way_path, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_graph, random_one_way_path
from repro.probability.brute_force import brute_force_phom, brute_force_phom_over_matches
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestBruteForceWorlds:
    def test_single_edge(self):
        instance = ProbabilisticGraph(one_way_path(["R"]), {("v0", "v1"): "1/3"})
        assert brute_force_phom(one_way_path(["R"], prefix="q"), instance) == Fraction(1, 3)

    def test_impossible_query(self):
        instance = ProbabilisticGraph(one_way_path(["R"]), {("v0", "v1"): "1/3"})
        assert brute_force_phom(one_way_path(["S"], prefix="q"), instance) == 0

    def test_certain_query(self):
        instance = ProbabilisticGraph(one_way_path(["R", "R"]))
        assert brute_force_phom(one_way_path(["R"], prefix="q"), instance) == 1

    def test_union_of_two_independent_edges(self):
        graph = disjoint_union([one_way_path(["R"]), one_way_path(["R"])])
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
        query = one_way_path(["R"], prefix="q")
        # 1 - (1/2)^2 chance that at least one R edge is present.
        assert brute_force_phom(query, instance) == Fraction(3, 4)

    def test_conjunction_of_both_components(self):
        graph = disjoint_union([one_way_path(["R"]), one_way_path(["S"])])
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
        query = disjoint_union([one_way_path(["R"]), one_way_path(["S"])], prefix="q")
        assert brute_force_phom(query, instance) == Fraction(1, 4)

    def test_example22(self, figure1_instance, example22_query):
        assert brute_force_phom(example22_query, figure1_instance) == Fraction(574, 1000)

    def test_empty_query_probability_zero(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        assert brute_force_phom(DiGraph(), instance) == 0

    def test_path_of_length_two_probability(self):
        # Prop 5.1's simple query: probability that a directed path of length 2 exists.
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("b", "d")])
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
        # Need (a,b) and at least one of (b,c), (b,d): 1/2 * 3/4.
        assert brute_force_phom(unlabeled_path(2), instance) == Fraction(3, 8)


class TestBruteForceMatches:
    def test_agrees_with_world_enumeration_on_random_inputs(self, rng):
        for _ in range(15):
            instance_graph = random_graph(rng.randint(2, 4), 0.5, ("R", "S"), rng)
            instance = attach_random_probabilities(instance_graph, rng)
            query = random_one_way_path(rng.randint(1, 3), ("R", "S"), rng, prefix="q")
            assert brute_force_phom(query, instance) == brute_force_phom_over_matches(
                query, instance
            )

    def test_no_match_gives_zero(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        assert brute_force_phom_over_matches(one_way_path(["S"], prefix="q"), instance) == 0

    def test_overlapping_matches_are_not_double_counted(self):
        # Two R->S matches sharing the S edge.
        graph = DiGraph(edges=[("a", "b", "R"), ("c", "b", "R"), ("b", "d", "S")])
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
        query = one_way_path(["R", "S"], prefix="q")
        expected = Fraction(1, 2) * (1 - Fraction(1, 2) * Fraction(1, 2))
        assert brute_force_phom_over_matches(query, instance) == expected
        assert brute_force_phom(query, instance) == expected
