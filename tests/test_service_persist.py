"""Durable-serving suite: `QueryService(state_dir=...)` crash recovery.

The contract under test: any state the service acknowledged is rebuilt
from disk after a crash — including a coordinator ``SIGKILL``, the
harshest case, which no ``atexit``/``finally`` path survives — and the
rebuilt service answers **bit-identically** to an uninterrupted run.
Disk damage along the way (injected through the seeded
:class:`~repro.service.faults.DiskFaultInjector`) must be detected and
recovered from, never silently replayed, and never crash the service.

Runs under the ``test_service*`` SIGALRM wall-clock guard from
``conftest.py``.
"""

from __future__ import annotations

import os
import pickle
import signal

import pytest

from repro.core.solver import PHomSolver
from repro.exceptions import ServiceError
from repro.graphs.classes import GraphClass
from repro.persist import scan_wal
from repro.service import (
    DISK_FAULT_KINDS,
    Fault,
    FaultPlan,
    QueryService,
)
from repro.service.service import RESTART_LOG_LIMIT
from repro.workloads.generators import attach_random_probabilities, make_instance

SEED = 73


def build_instance(seed: int, size: int = 16, labeled: bool = True,
                   graph_class: GraphClass = GraphClass.UNION_DOWNWARD_TREE):
    graph = make_instance(graph_class, labeled, size, seed)
    return attach_random_probabilities(graph, seed)


def build_query(seed: int, size: int = 3, labeled: bool = True,
                graph_class: GraphClass = GraphClass.ONE_WAY_PATH):
    return make_instance(graph_class, labeled, size, seed)


def some_updates(instance, count: int, start: str = "1"):
    edges = sorted(instance.graph.edges())[:count]
    return [
        ((edge.source, edge.target), f"{index + 1}/{count + 3}")
        for index, edge in enumerate(edges)
    ]


def oracle(instance, updates, queries):
    """Exact answers of an uninterrupted run over the updated state."""
    updated = pickle.loads(pickle.dumps(instance))
    for endpoints, probability in updates:
        updated.set_probability(endpoints, probability)
    solver = PHomSolver()
    return [solver.solve(query, updated).probability for query in queries]


# ----------------------------------------------------------------------
# Clean warm restarts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_workers", [0, 2])
def test_clean_restart_is_bit_identical_and_warm(tmp_path, num_workers):
    state = str(tmp_path / "state")
    instance = build_instance(SEED)
    queries = [build_query(SEED + i) for i in range(3)]
    updates = some_updates(instance, 2)

    with QueryService(num_workers=num_workers, state_dir=state) as service:
        service.register_instance(pickle.loads(pickle.dumps(instance)), "durable")
        for endpoints, probability in updates:
            service.update_probability("durable", endpoints, probability)
        first = [service.submit(q, "durable").result.probability for q in queries]

    with QueryService(num_workers=num_workers, state_dir=state) as service:
        assert service.recovery["instances_restored"] == 1
        assert service.recovery["plans_warmed"] >= 1
        again = [service.submit(q, "durable").result.probability for q in queries]
        stats = service.stats()
        compiles = sum(
            worker["plan_cache"]["compiles"] for worker in stats.workers
        )
        loads = sum(worker["plan_cache"]["loads"] for worker in stats.workers)
        persistence = service.persistence_stats()

    assert again == first == oracle(instance, updates, queries)
    assert compiles == 0  # the hot set came from the store, not a compiler
    assert loads >= 1
    assert persistence["wal_errors"] == 0
    assert not persistence["recovery"]["wal"]["corrupt_frames"]


def test_restored_auto_ids_do_not_collide(tmp_path):
    state = str(tmp_path / "state")
    first = build_instance(SEED + 10, size=10)
    second = build_instance(SEED + 11, size=12)
    with QueryService(num_workers=0, state_dir=state) as service:
        auto_id = service.register_instance(first)
        assert auto_id == "instance-0"
    with QueryService(num_workers=0, state_dir=state) as service:
        assert service.register_instance(second) != auto_id
        assert sorted(service._instances) == ["instance-0", "instance-1"]


def test_state_dir_must_be_a_directory(tmp_path):
    bogus = tmp_path / "not-a-dir"
    bogus.write_text("file, not dir")
    with pytest.raises(ServiceError):
        QueryService(num_workers=0, state_dir=str(bogus))


# ----------------------------------------------------------------------
# SIGKILL the coordinator
# ----------------------------------------------------------------------
def test_sigkill_coordinator_recovers_bit_identically(tmp_path):
    """SIGKILL mid-session; the restart must equal an uninterrupted run.

    The child process registers three instances covering the three
    tractable plan routes (labeled 1WP on a downward tree, connected 2WP,
    unlabeled trees on a union of downward trees), applies updates with
    ``wal_fsync="always"``, reports readiness through a pipe, and is then
    killed with the one signal no cleanup handler survives.  Everything
    is pinned-seed, so the oracle is exact.
    """
    state = str(tmp_path / "state")
    cases = [
        (
            "route-1wp",
            build_instance(SEED + 20, graph_class=GraphClass.DOWNWARD_TREE),
            [build_query(SEED + 21), build_query(SEED + 22)],
        ),
        (
            "route-2wp",
            build_instance(SEED + 23, size=8, graph_class=GraphClass.TWO_WAY_PATH),
            [build_query(SEED + 24, graph_class=GraphClass.TWO_WAY_PATH)],
        ),
        (
            "route-union-dwt",
            build_instance(SEED + 25, labeled=False),
            [build_query(SEED + 26, labeled=False,
                         graph_class=GraphClass.DOWNWARD_TREE)],
        ),
    ]
    updates = {name: some_updates(instance, 2) for name, instance, _ in cases}

    ready_read, ready_write = os.pipe()
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process exits below
        try:
            os.close(ready_read)
            signal.setitimer(signal.ITIMER_REAL, 0)  # drop the pytest guard
            service = QueryService(
                num_workers=0, state_dir=state, wal_fsync="always"
            )
            for name, instance, _ in cases:
                service.register_instance(
                    pickle.loads(pickle.dumps(instance)), name
                )
                for endpoints, probability in updates[name]:
                    service.update_probability(name, endpoints, probability)
            os.write(ready_write, b"x")
            os.close(ready_write)
            while True:  # hold state in memory until the SIGKILL lands
                signal.pause()
        finally:
            os._exit(0)

    os.close(ready_write)
    assert os.read(ready_read, 1) == b"x"
    os.close(ready_read)
    os.kill(pid, signal.SIGKILL)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL

    with QueryService(num_workers=0, state_dir=state) as service:
        assert service.recovery["instances_restored"] == len(cases)
        assert not service.recovery["wal"].corruption_detected
        for name, instance, queries in cases:
            answers = [
                service.submit(query, name).result.probability
                for query in queries
            ]
            assert answers == oracle(instance, updates[name], queries)


# ----------------------------------------------------------------------
# Disk faults through the service
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", DISK_FAULT_KINDS)
def test_disk_fault_detected_and_recovered(tmp_path, kind):
    """One damaged WAL append: detect it, lose only that record, keep serving."""
    state = str(tmp_path / "state")
    instance = build_instance(SEED + 30)
    queries = [build_query(SEED + 31), build_query(SEED + 32)]
    updates = some_updates(instance, 3)
    plan = FaultPlan(
        faults=(Fault(kind=kind, after_messages=len(updates)),), seed=SEED
    )

    with QueryService(
        num_workers=0, state_dir=state, wal_fsync="always", fault_plan=plan
    ) as service:
        service.register_instance(pickle.loads(pickle.dumps(instance)), "faulty")
        for endpoints, probability in updates:
            service.update_probability("faulty", endpoints, probability)
        wal_errors = service.wal_errors
        # Serving continues through the durability fault, on full state.
        live = [service.submit(q, "faulty").result.probability for q in queries]
    assert live == oracle(instance, updates, queries)

    with QueryService(num_workers=0, state_dir=state) as service:
        recovery = service.recovery
        recovered = [
            service.submit(q, "faulty").result.probability for q in queries
        ]
    if kind == "enospc":
        assert wal_errors == 1  # the rejected append was counted...
    else:
        assert recovery["wal"].corruption_detected  # ...or the damage seen
    assert recovery["instances_restored"] == 1
    # Exactly the damaged append is gone; the durable prefix is intact.
    assert recovered == oracle(instance, updates[:-1], queries)


# ----------------------------------------------------------------------
# Bounded in-memory growth
# ----------------------------------------------------------------------
def test_journal_stays_bounded_under_sustained_updates(tmp_path):
    state = str(tmp_path / "state")
    instance = build_instance(SEED + 40, size=24)
    query = build_query(SEED + 41)
    limit = 4
    edges = sorted(instance.graph.edges())
    assert len(edges) > 3 * limit
    with QueryService(
        num_workers=0, state_dir=state, journal_update_limit=limit
    ) as service:
        service.register_instance(pickle.loads(pickle.dumps(instance)), "busy")
        applied = []
        for index, edge in enumerate(edges):
            update = ((edge.source, edge.target), f"{index + 1}/{len(edges) + 2}")
            service.update_probability("busy", *update)
            applied.append(update)
            journal = service._journal["busy"]
            assert len(journal.updates) < limit  # folded, never unbounded
        live = service.submit(query, "busy").result.probability
    assert live == oracle(instance, applied, [query])[0]

    # The fold is semantics-preserving across a restart too.
    with QueryService(num_workers=0, state_dir=state) as service:
        recovered = service.submit(query, "busy").result.probability
    assert recovered == live


def test_journal_update_limit_validated():
    with pytest.raises(ServiceError):
        QueryService(num_workers=0, journal_update_limit=0)


def test_restart_log_is_capped(tmp_path):
    instance = build_instance(SEED + 50, size=10)
    query = build_query(SEED + 51)
    chaos = FaultPlan(faults=(Fault(kind="kill", after_messages=1),), seed=SEED)
    with QueryService(
        num_workers=1, backoff_base=0.01, fault_plan=chaos
    ) as service:
        service.register_instance(instance, "crashy")
        # A crash-looping fleet must not grow the log without bound:
        # simulate a long history, then record one real restart.
        service.restart_log.extend(
            {"worker": 0, "reason": "synthetic"} for _ in range(RESTART_LOG_LIMIT)
        )
        service.submit(query, "crashy")  # trips the kill, forces a restart
        assert service.stats().restarts >= 1
        assert len(service.restart_log) <= RESTART_LOG_LIMIT
        assert service.restart_log[-1]["reason"] != "synthetic"


# ----------------------------------------------------------------------
# Offline compaction
# ----------------------------------------------------------------------
def test_compact_state_folds_the_wal(tmp_path):
    state = str(tmp_path / "state")
    instance = build_instance(SEED + 60)
    query = build_query(SEED + 61)
    updates = some_updates(instance, 4)
    with QueryService(num_workers=0, state_dir=state) as service:
        service.register_instance(pickle.loads(pickle.dumps(instance)), "packed")
        for endpoints, probability in updates:
            service.update_probability("packed", endpoints, probability)
        before = service.persistence_stats()["wal_appends"]
        assert before == 1 + len(updates)
        service.compact_state()
    # One snapshot record per instance survives; updates are folded in.
    assert scan_wal(os.path.join(state, "wal")).records_replayed == 1
    with QueryService(num_workers=0, state_dir=state) as service:
        assert service.recovery["instances_restored"] == 1
        answer = service.submit(query, "packed").result.probability
    assert answer == oracle(instance, updates, [query])[0]
