"""Unit tests for #Bipartite-Edge-Cover and the Propositions 3.3 / 3.4 reductions."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ReproError
from repro.graphs.classes import GraphClass, graph_in_class, is_one_way_path, is_two_way_path
from repro.probability.brute_force import brute_force_phom
from repro.reductions.bipartite import BipartiteGraph, count_edge_covers, random_bipartite_graph
from repro.reductions.edge_cover import (
    edge_covers_via_phom,
    prop33_reduction,
    prop34_reduction,
)


class TestBipartiteGraphs:
    def test_construction_validation(self):
        with pytest.raises(ReproError):
            BipartiteGraph(0, 1, ())
        with pytest.raises(ReproError):
            BipartiteGraph(1, 1, ((1, 2),))
        with pytest.raises(ReproError):
            BipartiteGraph(1, 1, ((1, 1), (1, 1)))

    def test_degrees_and_isolation(self):
        graph = BipartiteGraph(2, 2, ((1, 1), (1, 2)))
        assert graph.degree_left(1) == 2
        assert graph.degree_right(2) == 1
        assert graph.has_isolated_vertex()  # x2 is isolated
        full = BipartiteGraph(2, 2, ((1, 1), (2, 2)))
        assert not full.has_isolated_vertex()

    def test_count_edge_covers_known_values(self):
        # A single edge covering both vertices: exactly one cover.
        assert count_edge_covers(BipartiteGraph(1, 1, ((1, 1),))) == 1
        # K_{1,2}: both edges are needed.
        assert count_edge_covers(BipartiteGraph(1, 2, ((1, 1), (1, 2)))) == 1
        # K_{2,2}: 7 of the 16 subsets are edge covers.
        k22 = BipartiteGraph(2, 2, ((1, 1), (1, 2), (2, 1), (2, 2)))
        assert count_edge_covers(k22) == 7
        # An isolated vertex kills every cover.
        assert count_edge_covers(BipartiteGraph(2, 1, ((1, 1),))) == 0

    def test_random_generator_avoids_isolated_vertices(self, rng):
        for _ in range(10):
            graph = random_bipartite_graph(3, 2, 0.3, rng)
            assert not graph.has_isolated_vertex()
        sparse = random_bipartite_graph(2, 2, 0.0, rng, ensure_no_isolated=False)
        assert sparse.num_edges == 0


class TestProp33Reduction:
    def test_output_classes(self):
        graph = BipartiteGraph(2, 2, ((1, 1), (2, 2), (1, 2)))
        query, instance = prop33_reduction(graph)
        assert graph_in_class(query, GraphClass.UNION_ONE_WAY_PATH)
        assert not query.is_weakly_connected()
        assert is_one_way_path(instance.graph)
        assert len(query.weakly_connected_components()) == graph.num_left + graph.num_right

    def test_probabilistic_edges_are_the_v_edges(self):
        graph = BipartiteGraph(1, 2, ((1, 1), (1, 2)))
        _query, instance = prop33_reduction(graph)
        uncertain = instance.uncertain_edges()
        assert len(uncertain) == graph.num_edges
        assert all(e.label == "V" for e in uncertain)
        assert all(instance.probability(e) == Fraction(1, 2) for e in uncertain)

    def test_counting_identity_on_small_graphs(self):
        graphs = [
            BipartiteGraph(1, 1, ((1, 1),)),
            BipartiteGraph(1, 2, ((1, 1), (1, 2))),
            BipartiteGraph(2, 1, ((1, 1), (2, 1))),
            BipartiteGraph(2, 2, ((1, 1), (1, 2), (2, 2))),
            BipartiteGraph(2, 1, ((1, 1),)),  # isolated vertex: zero covers
        ]
        for graph in graphs:
            assert edge_covers_via_phom(graph) == count_edge_covers(graph)

    def test_counting_identity_on_random_graphs(self, rng):
        for _ in range(3):
            graph = random_bipartite_graph(2, 2, 0.5, rng)
            assert edge_covers_via_phom(graph) == count_edge_covers(graph)

    def test_empty_edge_set_rejected(self):
        with pytest.raises(ReproError):
            prop33_reduction(BipartiteGraph(1, 1, ()))


class TestProp34Reduction:
    def test_output_classes(self):
        graph = BipartiteGraph(1, 2, ((1, 1), (1, 2)))
        query, instance = prop34_reduction(graph)
        assert graph_in_class(query, GraphClass.UNION_TWO_WAY_PATH)
        assert is_two_way_path(instance.graph)
        assert instance.graph.is_unlabeled()
        assert query.is_unlabeled()

    def test_probability_placement(self):
        graph = BipartiteGraph(1, 1, ((1, 1),))
        _query, instance = prop34_reduction(graph)
        uncertain = instance.uncertain_edges()
        assert len(uncertain) == 1
        assert instance.probability(uncertain[0]) == Fraction(1, 2)

    def test_counting_identity(self, rng):
        graphs = [
            BipartiteGraph(1, 1, ((1, 1),)),
            BipartiteGraph(1, 2, ((1, 1), (1, 2))),
            BipartiteGraph(2, 1, ((1, 1), (2, 1))),
        ]
        for graph in graphs:
            assert edge_covers_via_phom(graph, unlabeled=True) == count_edge_covers(graph)

    def test_inconsistent_solver_detected(self):
        graph = BipartiteGraph(1, 1, ((1, 1),))
        with pytest.raises(ReproError):
            edge_covers_via_phom(graph, phom_solver=lambda q, i: Fraction(1, 3))
