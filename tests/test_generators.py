"""Unit tests for the random graph generators: class membership by construction."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import GraphError
from repro.graphs.classes import (
    GraphClass,
    graph_in_class,
    is_connected_graph,
    is_downward_tree,
    is_one_way_path,
    is_polytree,
    is_two_way_path,
)
from repro.graphs.digraph import UNLABELED
from repro.graphs.generators import (
    DEFAULT_ALPHABET,
    random_connected_graph,
    random_disjoint_union,
    random_downward_tree,
    random_graded_dag,
    random_graph,
    random_label,
    random_one_way_path,
    random_polytree,
    random_two_way_path,
    random_unlabeled_query_dag,
)
from repro.graphs.grading import is_graded


class TestSeeding:
    def test_integer_seed_is_reproducible(self):
        first = random_downward_tree(8, rng=123)
        second = random_downward_tree(8, rng=123)
        assert first == second

    def test_random_label_comes_from_alphabet(self):
        assert random_label(0, alphabet=("A", "B")) in {"A", "B"}


class TestClassMembershipByConstruction:
    @pytest.mark.parametrize("length", [1, 2, 5, 9])
    def test_one_way_paths(self, length, rng):
        graph = random_one_way_path(length, rng=rng)
        assert is_one_way_path(graph)
        assert graph.num_edges() == length
        assert graph.labels() <= set(DEFAULT_ALPHABET)

    @pytest.mark.parametrize("length", [1, 2, 5, 9])
    def test_two_way_paths(self, length, rng):
        graph = random_two_way_path(length, rng=rng)
        assert is_two_way_path(graph)
        assert graph.num_edges() == length

    @pytest.mark.parametrize("size", [1, 2, 6, 12])
    def test_downward_trees(self, size, rng):
        graph = random_downward_tree(size, rng=rng)
        assert is_downward_tree(graph)
        assert graph.num_vertices() == size

    @pytest.mark.parametrize("size", [1, 2, 6, 12])
    def test_polytrees(self, size, rng):
        graph = random_polytree(size, rng=rng)
        assert is_polytree(graph)
        assert graph.num_vertices() == size

    def test_size_validation(self):
        with pytest.raises(GraphError):
            random_downward_tree(0)
        with pytest.raises(GraphError):
            random_polytree(0)
        with pytest.raises(GraphError):
            random_connected_graph(0)
        with pytest.raises(GraphError):
            random_graph(0)

    @pytest.mark.parametrize(
        "component_class,graph_class",
        [
            ("1WP", GraphClass.UNION_ONE_WAY_PATH),
            ("2WP", GraphClass.UNION_TWO_WAY_PATH),
            ("DWT", GraphClass.UNION_DOWNWARD_TREE),
            ("PT", GraphClass.UNION_POLYTREE),
        ],
    )
    def test_disjoint_unions(self, component_class, graph_class, rng):
        graph = random_disjoint_union([2, 3, 1], component_class, rng=rng)
        assert graph_in_class(graph, graph_class)
        assert len(graph.weakly_connected_components()) == 3

    def test_disjoint_union_unknown_class(self):
        with pytest.raises(GraphError):
            random_disjoint_union([2], "CYCLE")

    def test_connected_graph(self, rng):
        graph = random_connected_graph(7, 0.3, rng=rng)
        assert is_connected_graph(graph)

    def test_random_graph_labels(self, rng):
        graph = random_graph(6, 0.4, alphabet=("A", "B", "C"), rng=rng)
        assert graph.labels() <= {"A", "B", "C"}

    def test_graded_dag_is_graded(self, rng):
        graph = random_graded_dag(4, 3, 0.5, rng=rng)
        assert is_graded(graph)
        assert not graph.has_directed_cycle()

    def test_unlabeled_query_dag(self, rng):
        graph = random_unlabeled_query_dag(6, 0.4, rng=rng)
        assert not graph.has_directed_cycle()
        assert graph.labels() <= {UNLABELED}

    def test_graded_dag_validation(self):
        with pytest.raises(GraphError):
            random_graded_dag(0, 3)
        with pytest.raises(GraphError):
            random_unlabeled_query_dag(0)


class TestVariety:
    def test_trees_are_not_always_paths(self):
        shapes = {random_downward_tree(6, rng=seed).out_degree("t0") for seed in range(20)}
        assert len(shapes) > 1

    def test_two_way_paths_use_both_orientations(self):
        rng = random.Random(3)
        graph = random_two_way_path(20, rng=rng)
        forward = sum(1 for e in graph.edges() if int(e.source[1:]) < int(e.target[1:]))
        assert 0 < forward < 20
