"""Unit tests for the longest-directed-path tree automaton (Proposition 5.4)."""

from __future__ import annotations

from itertools import product

import pytest

from repro.exceptions import AutomatonError
from repro.automata.binary_tree import encode_polytree
from repro.automata.path_automaton import PathState, build_longest_path_automaton, number_of_states
from repro.automata.tree_automaton import BottomUpTreeAutomaton
from repro.graphs.builders import unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_polytree
from repro.probability.prob_graph import ProbabilisticGraph


def _accepts_annotation(automaton, tree, annotation):
    return automaton.accepts(tree, annotation)


class TestAutomatonBasics:
    def test_negative_length_rejected(self):
        with pytest.raises(AutomatonError):
            build_longest_path_automaton(-1)
        with pytest.raises(AutomatonError):
            number_of_states(-2)

    def test_number_of_states(self):
        assert number_of_states(0) == 1
        assert number_of_states(3) == 64

    def test_zero_length_accepts_everything(self):
        automaton = build_longest_path_automaton(0)
        instance = ProbabilisticGraph(unlabeled_path(2))
        tree = encode_polytree(instance)
        edges = instance.edges()
        for bits in product((False, True), repeat=len(edges)):
            annotation = dict(zip(edges, bits))
            assert automaton.accepts(tree, annotation)

    def test_states_are_capped_at_query_length(self):
        automaton = build_longest_path_automaton(2)
        instance = ProbabilisticGraph(unlabeled_path(6))
        tree = encode_polytree(instance)
        for state in automaton.reachable_states(tree):
            assert isinstance(state, PathState)
            assert 0 <= state.up <= 2
            assert 0 <= state.down <= 2
            assert 0 <= state.best <= 2

    def test_unexpected_label_rejected(self):
        automaton = build_longest_path_automaton(1)
        assert isinstance(automaton, BottomUpTreeAutomaton)
        with pytest.raises(AutomatonError):
            automaton.initial(("weird", True))
        leaf_state = automaton.initial(("eps", True))
        with pytest.raises(AutomatonError):
            automaton.transition(("weird", True), leaf_state, leaf_state)


class TestAcceptanceSemantics:
    def _check_against_definition(self, instance_graph: DiGraph, max_length: int) -> None:
        """Acceptance must coincide with 'the annotated world has a directed path of length m'."""
        instance = ProbabilisticGraph(instance_graph)
        tree = encode_polytree(instance)
        edges = instance.edges()
        for m in range(max_length + 1):
            automaton = build_longest_path_automaton(m)
            for bits in product((False, True), repeat=len(edges)):
                annotation = dict(zip(edges, bits))
                kept = [e for e, bit in zip(edges, bits) if bit]
                world = instance_graph.subgraph_with_edges(kept)
                expected = world.longest_directed_path_length() >= m
                assert automaton.accepts(tree, annotation) == expected

    def test_one_way_path_instance(self):
        self._check_against_definition(unlabeled_path(4), 4)

    def test_branching_instance(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("b", "d"), ("e", "b")])
        self._check_against_definition(graph, 3)

    def test_two_way_instance(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "b"), ("c", "d"), ("e", "d")])
        self._check_against_definition(graph, 3)

    def test_random_polytrees(self, rng):
        for _ in range(5):
            graph = random_polytree(rng.randint(2, 6), ("_",), rng)
            self._check_against_definition(graph, 3)


class TestMaterialisation:
    def test_materialised_tables_match_callables(self):
        automaton = build_longest_path_automaton(1)
        states = [PathState(u, d, b) for u in range(2) for d in range(2) for b in range(2)]
        init, delta = automaton.materialise(states)
        assert init[("eps", True)] == PathState(0, 0, 0)
        for (letter, left, right), value in list(delta.items())[:50]:
            assert value == automaton.transition(letter, left, right)
