"""Differential tests for flat-tape compilation (:mod:`repro.tape`).

The tape backend re-implements nothing: it lowers each plan's own
arithmetic by symbolic execution, so its one correctness obligation is
*equivalence* — tape evaluation must be bit-identical (exact mode) or
ulp-close (float mode) to the object-graph evaluator on every plan route,
under randomized instances, randomized probability tables, batched
evaluation, and incremental-update streams.  This suite asserts exactly
that, extending the :mod:`tests.test_plan_fuzz` idiom: seeds are pinned
(``REPRO_FUZZ_SEED`` overrides), so failures reproduce deterministically.
"""

from __future__ import annotations

import os
import pickle
import random
import warnings
from fractions import Fraction

import pytest

import repro.numeric as repro_numeric
from repro.core.solver import PHomSolver
from repro.exceptions import (
    GraphError,
    IntractableFallbackWarning,
    PlanError,
    ReproError,
)
from repro.graphs.builders import one_way_path
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import Edge
from repro.plan import ComponentPlan, ConstantPlan, FallbackPlan
from repro.probability.prob_graph import ProbabilisticGraph
from repro.tape import (
    OP_COMPL,
    OPCODE_NAMES,
    TapeEvaluator,
    compile_plan_tape,
)
from repro.workloads.generators import intractable_workload, workload_for_cell

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20170514"))

#: The compiled-plan routes of test_plan_fuzz, all of which must lower.
PLAN_ROUTES = [
    (GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True, {}),
    (GraphClass.TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, True, {}),
    (GraphClass.DOWNWARD_TREE, GraphClass.UNION_DOWNWARD_TREE, False, {}),
    (GraphClass.UNION_ONE_WAY_PATH, GraphClass.UNION_POLYTREE, False, {}),
    (GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False, {"prefer": "automaton"}),
]

FLOAT_TOLERANCE = 1e-9


def fresh_exact(query, instance):
    """The ground truth: a cache-less exact solve."""
    solver = PHomSolver(plan_cache_size=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", IntractableFallbackWarning)
        return solver.solve(query, instance).probability


def random_probability(rng: random.Random) -> Fraction:
    """A random rational in [0, 1], hitting the 0 and 1 boundaries too."""
    roll = rng.random()
    if roll < 0.1:
        return Fraction(0)
    if roll < 0.2:
        return Fraction(1)
    return Fraction(rng.randint(1, 15), 16)


def route_plan(route: int):
    """A compiled (workload, plan) pair for one PLAN_ROUTES entry."""
    query_class, instance_class, labeled, solver_kwargs = PLAN_ROUTES[route]
    rng = random.Random(SEED + route)
    workload = workload_for_cell(
        query_class, instance_class, labeled,
        query_size=rng.randint(2, 3), instance_size=rng.randint(5, 8), rng=rng,
    )
    solver = PHomSolver(**solver_kwargs)
    plan = solver.compile(workload.query, workload.instance)
    assert isinstance(plan, (ComponentPlan, ConstantPlan))
    return workload, plan, rng


def graded_collapse_plan():
    """A plan pinned to the graded-collapse route (Proposition 3.6 product).

    With query minimization on, every unlabeled downward-tree query
    collapses to its height path and dispatches to the path routes, so the
    graded-collapse method is only reachable with ``minimize_queries=False``
    — a branching unlabeled tree query on a union-of-downward-trees
    instance.
    """
    rng = random.Random(SEED)
    workload = workload_for_cell(
        GraphClass.DOWNWARD_TREE, GraphClass.UNION_DOWNWARD_TREE, False,
        query_size=5, instance_size=14, rng=rng,
    )
    solver = PHomSolver(minimize_queries=False)
    plan = solver.compile(workload.query, workload.instance)
    assert plan.method == "graded-collapse"
    return workload, plan, rng


def random_tables(instance, rng, count):
    """Full edge-probability tables with randomized (boundary-heavy) entries."""
    edges = instance.edges()
    return [
        {edge: random_probability(rng) for edge in edges} for _ in range(count)
    ]


# ----------------------------------------------------------------------
# tape vs object graph, per plan route
# ----------------------------------------------------------------------
class TestTapeVsObjectGraph:
    @pytest.mark.parametrize("route", range(len(PLAN_ROUTES)))
    def test_exact_bit_identical(self, route):
        workload, plan, rng = route_plan(route)
        tape = plan.tape()
        assert plan.has_tape()
        for step, table in enumerate(random_tables(workload.instance, rng, 8)):
            got = tape.evaluate(table)
            want = plan.evaluate(table)
            assert got == want, f"route {route} diverged on table {step}"

    @pytest.mark.parametrize("route", range(len(PLAN_ROUTES)))
    def test_float_close(self, route):
        workload, plan, rng = route_plan(route)
        tape = plan.tape()
        for table in random_tables(workload.instance, rng, 8):
            got = tape.evaluate(table, precision="float")
            want = plan.evaluate(table, precision="float")
            assert abs(got - want) <= FLOAT_TOLERANCE

    @pytest.mark.parametrize("route", range(len(PLAN_ROUTES)))
    def test_tape_matches_fresh_solve(self, route):
        # Transitivity guard: the tape must agree with a from-scratch exact
        # solve, not merely with the (shared-ancestry) object-graph plan.
        workload, plan, _rng = route_plan(route)
        tape = plan.tape()
        table = dict(workload.instance.probabilities_view())
        assert tape.evaluate(table) == fresh_exact(workload.query, workload.instance)

    def test_graded_collapse_route_exact(self):
        workload, plan, rng = graded_collapse_plan()
        tape = plan.tape()
        for table in random_tables(workload.instance, rng, 8):
            assert tape.evaluate(table) == plan.evaluate(table)

    def test_constant_plan_lowers_to_inputless_tape(self):
        rng = random.Random(SEED)
        workload = workload_for_cell(
            GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True,
            query_size=2, instance_size=6, rng=rng,
        )
        # A query over a label the instance lacks compiles to a constant 0.
        plan = PHomSolver().compile(one_way_path(["Z"], prefix="q"), workload.instance)
        assert isinstance(plan, ConstantPlan)
        tape = plan.tape()
        assert tape.num_inputs() == 0
        assert tape.num_ops() == 0
        assert tape.evaluate({}) == plan.evaluate() == 0

    def test_fallback_plan_cannot_lower(self):
        rng = random.Random(SEED)
        workload = intractable_workload(6, rng)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            plan = PHomSolver().compile(workload.query, workload.instance)
        assert isinstance(plan, FallbackPlan)
        with pytest.raises(PlanError):
            plan.tape()
        with pytest.raises(PlanError):
            compile_plan_tape(plan)
        assert not plan.has_tape()


# ----------------------------------------------------------------------
# batched evaluation vs looped evaluate
# ----------------------------------------------------------------------
class TestEvaluateMany:
    @pytest.mark.parametrize("route", range(len(PLAN_ROUTES)))
    def test_exact_matches_looped_evaluate(self, route):
        workload, plan, rng = route_plan(route)
        edges = workload.instance.edges()
        batches = [None, {}]
        for _ in range(10):
            overrides = {
                rng.choice(edges): random_probability(rng)
                for _ in range(rng.randint(1, 3))
            }
            batches.append(overrides)
        batches.extend(random_tables(workload.instance, rng, 3))
        got = plan.evaluate_many(batches)
        want = [plan.evaluate(overrides) for overrides in batches]
        assert got == want

    @pytest.mark.parametrize("route", range(len(PLAN_ROUTES)))
    def test_float_matches_looped_evaluate(self, route):
        workload, plan, rng = route_plan(route)
        batches = [None] + random_tables(workload.instance, rng, 6)
        got = plan.evaluate_many(batches, precision="float")
        want = [plan.evaluate(overrides, precision="float") for overrides in batches]
        assert max(abs(a - b) for a, b in zip(got, want)) <= FLOAT_TOLERANCE

    def test_stdlib_and_numpy_backends_agree(self):
        if repro_numeric.numpy_module() is None:
            pytest.skip("numpy is not importable in this environment")
        workload, plan, rng = route_plan(4)
        batches = random_tables(workload.instance, rng, 6)
        via_numpy = plan.evaluate_many(batches, precision="float", backend="numpy")
        via_stdlib = plan.evaluate_many(batches, precision="float", backend="stdlib")
        assert max(abs(a - b) for a, b in zip(via_numpy, via_stdlib)) <= FLOAT_TOLERANCE

    def test_empty_batch(self):
        _workload, plan, _rng = route_plan(0)
        assert plan.evaluate_many([]) == []

    def test_numpy_backend_rejected_in_exact_mode(self):
        _workload, plan, _rng = route_plan(0)
        with pytest.raises(PlanError):
            plan.evaluate_many([None], precision="exact", backend="numpy")

    def test_unknown_backend_rejected(self):
        _workload, plan, _rng = route_plan(0)
        with pytest.raises(PlanError):
            plan.evaluate_many([None], precision="float", backend="fortran")

    def test_numpy_absence_falls_back_to_stdlib(self, monkeypatch):
        # Stub the numpy seam: "auto" must degrade silently, "numpy" must
        # fail loudly, and the stdlib results must stay correct.
        monkeypatch.setattr(repro_numeric, "_numpy_cache", None)
        workload, plan, rng = route_plan(1)
        batches = random_tables(workload.instance, rng, 4)
        want = [plan.evaluate(overrides, precision="float") for overrides in batches]
        got = plan.evaluate_many(batches, precision="float", backend="auto")
        assert max(abs(a - b) for a, b in zip(got, want)) <= FLOAT_TOLERANCE
        with pytest.raises(PlanError):
            plan.evaluate_many(batches, precision="float", backend="numpy")

    def test_solver_entry_point_matches_plan(self):
        workload, plan, rng = route_plan(0)
        solver = PHomSolver()
        batches = [None] + random_tables(workload.instance, rng, 3)
        got = solver.evaluate_many(workload.query, workload.instance, batches)
        want = plan.evaluate_many(batches)
        assert got == want

    def test_solver_entry_point_rejects_approx(self):
        workload, _plan, _rng = route_plan(0)
        solver = PHomSolver()
        with pytest.raises(ReproError):
            solver.evaluate_many(
                workload.query, workload.instance, [None], precision="approx"
            )

    def test_service_inline_dispatch_matches_solver(self):
        from repro.service import QueryService

        workload, plan, rng = route_plan(0)
        edges = workload.instance.edges()
        batches = [
            None,
            {(edges[0].source, edges[0].target): Fraction(1, 7)},
            {(edges[-1].source, edges[-1].target): Fraction(0)},
        ]
        service = QueryService(num_workers=0)
        try:
            instance_id = service.register_instance(workload.instance)
            got = service.evaluate_many(
                instance_id, workload.query, batches, precision="exact"
            )
        finally:
            service.close()
        assert got == plan.evaluate_many(batches)


# ----------------------------------------------------------------------
# incremental updates through the tape
# ----------------------------------------------------------------------
class TestTapeUpdateStream:
    @pytest.mark.parametrize("route", range(len(PLAN_ROUTES)))
    def test_update_stream_matches_fresh_solve(self, route):
        workload, plan, rng = route_plan(route)
        plan.tape()  # route update() through the tape serving path
        mirror = ProbabilisticGraph(
            workload.instance.graph, workload.instance.probabilities()
        )
        edges = workload.instance.edges()
        for step in range(12):
            edge = edges[rng.randrange(len(edges))]
            value = random_probability(rng)
            key = edge if step % 2 == 0 else (edge.source, edge.target)
            served = plan.update(key, value)
            mirror.set_probability(edge, value)
            assert served == fresh_exact(workload.query, mirror), (
                f"route {route} diverged at step {step} after setting "
                f"{edge!r} to {value}"
            )

    def test_tape_evaluator_updates_match_full_replay(self):
        workload, plan, rng = route_plan(4)
        tape = plan.tape()
        table = dict(workload.instance.probabilities_view())
        evaluator = TapeEvaluator(tape)
        evaluator.bind(table)
        edges = workload.instance.edges()
        for _ in range(15):
            edge = edges[rng.randrange(len(edges))]
            value = random_probability(rng)
            table[edge] = value
            got = evaluator.update(edge, value)
            assert got == tape.evaluate(table)
            assert evaluator.current_value() == got

    def test_update_of_unread_edge_keeps_value(self):
        # An edge the tape has no input slot for cannot affect the result:
        # the evaluator returns the current root unchanged (mirroring
        # CircuitEvaluator's contract), while the plan-level path rejects
        # edges that are not part of the instance at all.
        workload, plan, _rng = route_plan(0)
        tape = plan.tape()
        foreign = Edge("tape-test-x", "tape-test-y", "R")
        assert foreign not in dict(tape.inputs)
        evaluator = TapeEvaluator(tape)
        before = evaluator.bind(dict(workload.instance.probabilities_view()))
        assert evaluator.update(foreign, Fraction(1, 9)) == before
        with pytest.raises(GraphError):
            plan.update(foreign, Fraction(1, 9))

    def test_update_before_bind_raises(self):
        workload, plan, _rng = route_plan(0)
        evaluator = TapeEvaluator(plan.tape())
        with pytest.raises(PlanError):
            evaluator.update(workload.instance.edges()[0], Fraction(1, 2))
        with pytest.raises(PlanError):
            evaluator.current_value()

    def test_precision_switch_mid_serving_raises(self):
        workload, plan, _rng = route_plan(0)
        plan.tape()
        edge = workload.instance.edges()[0]
        plan.update(edge, Fraction(1, 3), precision="exact")
        with pytest.raises(PlanError):
            plan.update(edge, Fraction(1, 4), precision="float")
        plan.reset_serving()
        # After the reset, the float session starts cleanly.
        drifted = plan.update(edge, Fraction(1, 4), precision="float")
        assert isinstance(drifted, float)

    def test_legacy_serving_session_is_not_hijacked(self):
        # A serving session started before the tape existed has drifted
        # state in the evaluator table; compiling a tape mid-session must
        # not silently discard it.
        workload, plan, rng = route_plan(0)
        mirror = ProbabilisticGraph(
            workload.instance.graph, workload.instance.probabilities()
        )
        edges = workload.instance.edges()
        edge = edges[0]
        plan.update(edge, Fraction(1, 5))
        mirror.set_probability(edge, Fraction(1, 5))
        plan.tape()
        for step in range(5):
            drift_edge = edges[rng.randrange(len(edges))]
            value = random_probability(rng)
            served = plan.update(drift_edge, value)
            mirror.set_probability(drift_edge, value)
            assert served == fresh_exact(workload.query, mirror)

    def test_reset_serving_reseeds_tape_sessions(self):
        workload, plan, _rng = route_plan(0)
        plan.tape()
        edge = workload.instance.edges()[0]
        plan.update(edge, Fraction(1, 3))
        plan.reset_serving()
        assert plan.update(edge, workload.instance.probability(edge)) == fresh_exact(
            workload.query, workload.instance
        )


# ----------------------------------------------------------------------
# tape structure invariants
# ----------------------------------------------------------------------
class TestTapeStructure:
    @pytest.mark.parametrize("route", range(len(PLAN_ROUTES)))
    def test_slots_are_topologically_ordered(self, route):
        _workload, plan, _rng = route_plan(route)
        tape = plan.tape()
        for opcode, dst, a, b in zip(tape.opcodes, tape.dsts, tape.lhs, tape.rhs):
            assert dst > a
            if opcode != OP_COMPL:
                assert dst > b
        assert 0 <= tape.root < tape.num_slots

    def test_describe_is_consistent(self):
        _workload, plan, _rng = route_plan(4)
        tape = plan.tape()
        shape = tape.describe()
        assert shape["ops"] == tape.num_ops() == len(tape.opcodes)
        assert shape["inputs"] == tape.num_inputs() == len(tape.inputs)
        assert shape["slots"] == tape.num_slots
        assert sum(shape[name] for name in OPCODE_NAMES.values()) == shape["ops"]

    def test_packed_segments_cover_all_ops_in_level_order(self):
        _workload, plan, _rng = route_plan(4)
        tape = plan.tape()
        segments = tape._packed_segments()
        covered = 0
        computed = set()
        for _opcode, dsts, lhs, rhs in segments:
            for a in lhs + rhs:
                # Every operand is a constant, an input, or the output of
                # an earlier segment — never of the same or a later one.
                assert a in computed or a not in set(tape.dsts)
            computed.update(dsts)
            covered += len(dsts)
        assert covered == tape.num_ops()

    def test_tape_pickle_roundtrips(self):
        workload, plan, rng = route_plan(2)
        tape = plan.tape()
        clone = pickle.loads(pickle.dumps(tape))
        for table in random_tables(workload.instance, rng, 3):
            assert clone.evaluate(table) == tape.evaluate(table)

    def test_compile_is_memoised_on_the_plan(self):
        _workload, plan, _rng = route_plan(0)
        assert plan.tape() is plan.tape()


# ----------------------------------------------------------------------
# cache statistics hygiene
# ----------------------------------------------------------------------
class TestStatsHygiene:
    def test_tape_compiles_do_not_inflate_plan_compiles(self):
        workload, _plan, _rng = route_plan(0)
        solver = PHomSolver()
        solver.compile(workload.query, workload.instance)
        stats = solver.plan_cache.stats
        assert stats["compiles"] == 1
        assert stats["tape_compiles"] == 0
        solver.tape_for(workload.query, workload.instance)
        stats = solver.plan_cache.stats
        assert stats["compiles"] == 1, "tape compile double-counted as plan compile"
        assert stats["tape_compiles"] == 1

    def test_repeated_tape_requests_compile_once(self):
        workload, _plan, _rng = route_plan(0)
        solver = PHomSolver()
        first = solver.tape_for(workload.query, workload.instance)
        second = solver.tape_for(workload.query, workload.instance)
        assert first is second
        stats = solver.plan_cache.stats
        assert stats["compiles"] == 1
        assert stats["tape_compiles"] == 1

    def test_evaluate_many_accounts_like_tape_for(self):
        workload, _plan, _rng = route_plan(0)
        solver = PHomSolver()
        solver.evaluate_many(workload.query, workload.instance, [None, {}])
        solver.evaluate_many(workload.query, workload.instance, [None])
        stats = solver.plan_cache.stats
        assert stats["compiles"] == 1
        assert stats["tape_compiles"] == 1

    def test_stats_dict_exposes_tape_compiles(self):
        solver = PHomSolver()
        assert "tape_compiles" in solver.plan_cache.stats
