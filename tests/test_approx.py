"""Tests for the sampling subsystem: naive Monte Carlo and Karp–Luby.

Every randomized assertion here runs under a pinned seed, so the suite is
deterministic: a failure is a real regression, not sampling noise.  The
seeds were not cherry-picked — the estimators' (ε, δ) contracts make a
violation astronomically unlikely, and several seeds are exercised.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.approx import (
    ApproxEstimate,
    ApproxParams,
    hoeffding_sample_count,
    karp_luby_probability,
    naive_phom_estimate,
    sample_world_edges,
)
from repro.core.solver import PHomSolver, phom_probability
from repro.exceptions import ClassConstraintError, LineageError, ReproError
from repro.graphs.builders import one_way_path
from repro.lineage.dnf import PositiveDNF
from repro.plan import FallbackPlan
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads.generators import intractable_instance, intractable_workload


class TestApproxParams:
    def test_validation(self):
        with pytest.raises(ReproError):
            ApproxParams(epsilon=0.0)
        with pytest.raises(ReproError):
            ApproxParams(epsilon=1.5)
        with pytest.raises(ReproError):
            ApproxParams(delta=0.0)
        with pytest.raises(ReproError):
            ApproxParams(delta=1.0)

    def test_seeded_rngs_are_reproducible(self):
        a, b = ApproxParams(seed=7).rng(), ApproxParams(seed=7).rng()
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_hoeffding_count_grows_with_tighter_contract(self):
        assert hoeffding_sample_count(0.1, 0.05) < hoeffding_sample_count(0.05, 0.05)
        assert hoeffding_sample_count(0.1, 0.05) < hoeffding_sample_count(0.1, 0.01)


class TestWorldSampler:
    def test_certain_and_impossible_edges_consume_no_randomness(self):
        from repro.graphs.digraph import DiGraph

        graph = DiGraph()
        graph.add_edge("a", "b", "R")
        graph.add_edge("b", "c", "S")
        instance = ProbabilisticGraph(graph, {("a", "b"): 1, ("b", "c"): 0})
        kept = sample_world_edges(instance, random.Random(0))
        assert [(e.source, e.target) for e in kept] == [("a", "b")]

    def test_world_frequencies_match_distribution(self):
        from repro.graphs.digraph import DiGraph

        graph = DiGraph()
        graph.add_edge("a", "b", "R")
        instance = ProbabilisticGraph(graph, {("a", "b"): Fraction(1, 4)})
        rng = random.Random(42)
        hits = sum(1 for _ in range(4000) if sample_world_edges(instance, rng))
        assert abs(hits / 4000 - 0.25) < 0.03


class TestNaiveEstimator:
    def test_additive_accuracy_on_figure1(self, figure1_instance, example22_query):
        params = ApproxParams(epsilon=0.05, delta=0.05, seed=11)
        estimate = naive_phom_estimate(example22_query, figure1_instance, params)
        assert isinstance(estimate, ApproxEstimate)
        assert estimate.samples == hoeffding_sample_count(0.05, 0.05)
        assert abs(estimate.value - 0.574) <= 0.05

    def test_fixed_budget_override(self, figure1_instance, example22_query):
        estimate = naive_phom_estimate(
            example22_query, figure1_instance, ApproxParams(seed=3), num_samples=50
        )
        assert estimate.samples == 50
        assert 0.0 <= estimate.value <= 1.0

    def test_seeded_runs_are_identical(self, figure1_instance, example22_query):
        params = ApproxParams(epsilon=0.2, delta=0.2, seed=5)
        first = naive_phom_estimate(example22_query, figure1_instance, params)
        second = naive_phom_estimate(example22_query, figure1_instance, params)
        assert first == second


class TestKarpLuby:
    def probabilities(self, dnf, rng):
        return {v: Fraction(rng.randint(1, 9), 10) for v in dnf.variables()}

    def test_degenerate_formulas_are_exact(self):
        params = ApproxParams(seed=1)
        assert karp_luby_probability(PositiveDNF(), {}, params).value == 0.0
        true_dnf = PositiveDNF([[]])
        assert karp_luby_probability(true_dnf, {}, params).value == 1.0
        single = PositiveDNF([["x", "y"]])
        estimate = karp_luby_probability(single, {"x": 0.5, "y": 0.5}, params)
        assert estimate.exact and estimate.value == 0.25 and estimate.samples == 0

    def test_zero_weight_clauses_are_dropped(self):
        dnf = PositiveDNF([["x"], ["y"]])
        estimate = karp_luby_probability(dnf, {"x": 0.0, "y": 0.3}, ApproxParams(seed=2))
        # Only the y clause survives -> degenerate single-clause case.
        assert estimate.exact and estimate.value == pytest.approx(0.3)

    def test_missing_variable_raises(self):
        dnf = PositiveDNF([["x", "y"]])
        with pytest.raises(LineageError):
            karp_luby_probability(dnf, {"x": 0.5}, ApproxParams(seed=2))

    @pytest.mark.parametrize("trial", range(4))
    def test_relative_accuracy_vs_enumeration(self, trial):
        rng = random.Random(100 + trial)
        variables = [f"x{i}" for i in range(rng.randint(4, 7))]
        dnf = PositiveDNF(
            [
                rng.sample(variables, rng.randint(1, 3))
                for _ in range(rng.randint(2, 6))
            ]
        )
        probabilities = self.probabilities(dnf, rng)
        exact = float(dnf.probability_by_enumeration(probabilities))
        params = ApproxParams(epsilon=0.1, delta=0.1, seed=trial)
        estimate = karp_luby_probability(
            dnf, {v: float(p) for v, p in probabilities.items()}, params
        )
        if exact == 0.0:
            assert estimate.value == 0.0
        else:
            assert abs(estimate.value - exact) <= 0.1 * exact

    def test_rare_event_relative_accuracy(self):
        # All probabilities tiny: naive sampling would need ~1/p samples to
        # even see a hit; the importance sampler still nails relative error.
        dnf = PositiveDNF([["a", "b"], ["b", "c"], ["c", "d"]])
        probabilities = {v: Fraction(1, 100) for v in "abcd"}
        exact = float(dnf.probability_by_enumeration(probabilities))
        assert exact < 3.1e-4
        estimate = karp_luby_probability(
            dnf, {v: 0.01 for v in "abcd"}, ApproxParams(epsilon=0.1, delta=0.05, seed=9)
        )
        assert abs(estimate.value - exact) <= 0.1 * exact

    def test_seeded_runs_are_identical_and_seeds_differ(self):
        dnf = PositiveDNF([["a", "b"], ["b", "c"]])
        table = {"a": 0.4, "b": 0.5, "c": 0.6}
        params = dict(epsilon=0.2, delta=0.2)
        one = karp_luby_probability(dnf, table, ApproxParams(seed=1, **params))
        two = karp_luby_probability(dnf, table, ApproxParams(seed=1, **params))
        other = karp_luby_probability(dnf, table, ApproxParams(seed=2, **params))
        assert one.value == two.value
        assert one.value != other.value

    def test_fixed_budget_override(self):
        dnf = PositiveDNF([["a", "b"], ["b", "c"]])
        table = {"a": 0.4, "b": 0.5, "c": 0.6}
        estimate = karp_luby_probability(
            dnf, table, ApproxParams(seed=4), num_samples=1000
        )
        assert estimate.samples == 1000
        with pytest.raises(LineageError):
            karp_luby_probability(dnf, table, ApproxParams(seed=4), num_samples=0)


class TestIntractableWorkloadGenerator:
    def test_generates_requested_edge_count_and_falls_back(self):
        workload = intractable_workload(10, rng=3)
        assert len(workload.instance.uncertain_edges()) == 10
        solver = PHomSolver()
        plan = solver.compile(workload.query, workload.instance)
        assert isinstance(plan, FallbackPlan)

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ReproError):
            intractable_instance(4)

    def test_max_numerator_caps_probabilities(self):
        instance = intractable_instance(8, rng=1, denominator=16, max_numerator=2)
        assert all(p <= Fraction(2, 16) for p in instance.probabilities().values())


class TestSolverApproxMode:
    @pytest.fixture(scope="class")
    def workload(self):
        return intractable_workload(10, rng=17)

    @pytest.fixture(scope="class")
    def exact(self, workload):
        with pytest.warns(Warning):
            return float(phom_probability(workload.query, workload.instance, precision="float"))

    def test_auto_dispatch_samples_instead_of_brute_force(self, workload, exact, recwarn):
        solver = PHomSolver(precision="approx", epsilon=0.1, delta=0.05, seed=99)
        result = solver.solve(workload.query, workload.instance)
        assert result.method == "karp-luby"
        assert "samples" in result.notes and "seed=99" in result.notes
        assert abs(result.probability - exact) <= 0.1 * exact
        # No IntractableFallbackWarning in approx mode: sampling was requested.
        assert not [w for w in recwarn if "brute-force" in str(w.message)]

    def test_per_call_precision_override(self, workload, exact):
        solver = PHomSolver(epsilon=0.1, delta=0.05, seed=123)
        result = solver.solve(workload.query, workload.instance, precision="approx")
        assert result.method == "karp-luby"
        assert abs(result.probability - exact) <= 0.1 * exact

    def test_tractable_cells_stay_exact_in_approx_mode(self):
        from repro.graphs.builders import downward_tree

        query = one_way_path(["R", "S"], prefix="q")
        tree = downward_tree(
            {"b": "a", "c": "b", "d": "b"}, labels={"b": "R", "c": "S", "d": "S"}
        )
        instance = ProbabilisticGraph.with_uniform_probability(tree, Fraction(1, 2))
        solver = PHomSolver(precision="approx", seed=1)
        result = solver.solve(query, instance)
        assert result.method != "karp-luby"
        exact = float(phom_probability(query, instance))
        assert result.probability == pytest.approx(exact, abs=1e-12)

    def test_approx_respects_disabled_brute_force(self, workload):
        solver = PHomSolver(
            allow_brute_force=False, precision="approx", epsilon=0.2, delta=0.2, seed=5
        )
        result = solver.solve(workload.query, workload.instance)
        assert result.method == "karp-luby"
        # The same solver cannot answer exactly...
        exact_solver = PHomSolver(allow_brute_force=False)
        with pytest.raises(ClassConstraintError):
            exact_solver.solve(workload.query, workload.instance)

    def test_exact_call_after_cached_approx_plan_still_raises(self, workload):
        solver = PHomSolver(allow_brute_force=False, epsilon=0.2, delta=0.2, seed=5)
        with pytest.raises(ClassConstraintError):
            solver.compile(workload.query, workload.instance)
        result = solver.solve(workload.query, workload.instance, precision="approx")
        assert result.method == "karp-luby"
        # The cached FallbackPlan must not leak into non-sampling calls:
        # identical calls behave the same on a warm cache as on a cold one.
        with pytest.raises(ClassConstraintError):
            solver.solve(workload.query, workload.instance)
        with pytest.raises(ClassConstraintError):
            solver.compile(workload.query, workload.instance)

    def test_solve_many_in_approx_mode(self, workload, exact):
        solver = PHomSolver(precision="approx", epsilon=0.1, delta=0.05, seed=31)
        results = solver.solve_many([workload.query, workload.query], workload.instance)
        assert [r.method for r in results] == ["karp-luby", "karp-luby"]
        assert results[0].probability == results[1].probability

    def test_explicit_sampling_methods(self, workload, exact):
        solver = PHomSolver(epsilon=0.1, delta=0.05, seed=8)
        kl = solver.solve(workload.query, workload.instance, method="karp-luby")
        mc = solver.solve(workload.query, workload.instance, method="monte-carlo-worlds")
        assert abs(kl.probability - exact) <= 0.1 * exact
        assert abs(mc.probability - exact) <= 0.1  # additive contract
        assert kl.notes and "seed=8" in kl.notes
        assert "karp-luby" in PHomSolver.available_methods()
        assert "monte-carlo-worlds" in PHomSolver.available_methods()

    def test_explicit_karp_luby_reuses_the_cached_lineage(self, workload):
        solver = PHomSolver(epsilon=0.2, delta=0.2, seed=8)
        solver.solve(workload.query, workload.instance, method="karp-luby")
        solver.solve(workload.query, workload.instance, method="karp-luby")
        stats = solver.plan_cache.stats
        # One compile (the match lineage is enumerated once), then hits.
        assert stats["compiles"] == 1
        assert stats["hits"] >= 1

    def test_phom_probability_passthrough(self, workload, exact):
        value = phom_probability(
            workload.query,
            workload.instance,
            precision="approx",
            epsilon=0.1,
            delta=0.05,
            seed=77,
        )
        assert abs(value - exact) <= 0.1 * exact


class TestFallbackPlanSampling:
    @pytest.fixture(scope="class")
    def compiled(self):
        workload = intractable_workload(8, rng=23)
        solver = PHomSolver(precision="approx", seed=41)
        plan = solver.compile(workload.query, workload.instance)
        assert isinstance(plan, FallbackPlan)
        return workload, plan

    def test_lineage_is_memoised(self, compiled):
        _workload, plan = compiled
        assert plan.lineage() is plan.lineage()
        # The sampler's structural ordering is memoised on the formula too,
        # so repeated estimates only pay weights + sampling.
        assert plan.lineage().indexed_clauses() is plan.lineage().indexed_clauses()

    def test_indexed_clauses_invalidated_on_mutation(self):
        dnf = PositiveDNF([["a", "b"]])
        variables, clauses = dnf.indexed_clauses()
        assert variables == ("a", "b") and clauses == ((0, 1),)
        dnf.add_clause(["c"])
        assert dnf.indexed_clauses() == (("a", "b", "c"), ((0, 1), (2,)))

    def test_estimate_matches_brute_force(self, compiled):
        workload, plan = compiled
        with pytest.warns(Warning):
            exact = float(
                phom_probability(workload.query, workload.instance, precision="float")
            )
        estimate = plan.estimate(params=ApproxParams(epsilon=0.1, delta=0.05, seed=6))
        assert abs(estimate.value - exact) <= 0.1 * exact

    def test_estimate_accepts_override_tables(self, compiled):
        workload, plan = compiled
        edge = workload.instance.uncertain_edges()[0]
        estimate = plan.estimate(
            probabilities={edge: 0},
            params=ApproxParams(epsilon=0.1, delta=0.05, seed=6),
        )
        # Mirror the override on a fresh instance and compare exactly.
        mirror = ProbabilisticGraph(
            workload.instance.graph, workload.instance.probabilities()
        )
        mirror.set_probability(edge, 0)
        with pytest.warns(Warning):
            exact = float(phom_probability(workload.query, mirror, precision="float"))
        assert abs(estimate.value - exact) <= max(0.1 * exact, 1e-9)

    def test_evaluate_approx_keyword(self, compiled):
        _workload, plan = compiled
        params = ApproxParams(epsilon=0.1, delta=0.05, seed=13)
        assert plan.evaluate(approx=params) == plan.estimate(params=params).value

    def test_no_brute_force_plan_refuses_exact_evaluate_but_samples(self):
        # A solver with brute force disabled still compiles fallback plans in
        # approx mode — but their exact evaluate() must keep refusing to
        # enumerate, on the direct compile()+evaluate() path too.
        workload = intractable_workload(8, rng=23)
        solver = PHomSolver(allow_brute_force=False, precision="approx", seed=41)
        plan = solver.compile(workload.query, workload.instance)
        assert isinstance(plan, FallbackPlan)
        with pytest.raises(ClassConstraintError):
            plan.evaluate()
        params = ApproxParams(epsilon=0.2, delta=0.2, seed=41)
        assert 0.0 <= plan.evaluate(approx=params) <= 1.0
        assert 0.0 <= plan.estimate(params=params).value <= 1.0
