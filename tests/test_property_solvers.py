"""Property-based tests (hypothesis) for the tractable PHom solvers.

Each property draws a random workload of a tractable cell and asserts that
the polynomial algorithms agree exactly with the exponential brute-force
oracle — the central correctness claim of the reproduction — plus structural
invariants (probabilities in [0, 1], Lemma 3.7 composition, d-DNNF validity).
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.automata.binary_tree import encode_polytree
from repro.automata.path_automaton import build_longest_path_automaton
from repro.automata.provenance import provenance_circuit
from repro.core.disconnected import phom_on_disconnected_instance, phom_unlabeled_on_union_dwt
from repro.core.labeled_dwt import phom_labeled_path_on_dwt
from repro.core.labeled_2wp import phom_connected_on_2wp
from repro.core.unlabeled_pt import phom_unlabeled_path_on_polytree
from repro.graphs.builders import disjoint_union, one_way_path, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph

LABELS = ["R", "S"]

probability_strategy = st.integers(min_value=0, max_value=4).map(lambda k: Fraction(k, 4))


@st.composite
def labeled_dwt_instances(draw, max_vertices=6):
    """A random labeled downward tree with random rational edge probabilities."""
    size = draw(st.integers(min_value=2, max_value=max_vertices))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, size)]
    graph = DiGraph()
    graph.add_vertex("n0")
    probabilities = {}
    for child, parent in enumerate(parents, start=1):
        label = draw(st.sampled_from(LABELS))
        edge = graph.add_edge(f"n{parent}", f"n{child}", label)
        probabilities[edge] = draw(probability_strategy)
    return ProbabilisticGraph(graph, probabilities)


@st.composite
def polytree_instances(draw, max_vertices=6):
    """A random unlabeled polytree with random rational edge probabilities."""
    size = draw(st.integers(min_value=2, max_value=max_vertices))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, size)]
    graph = DiGraph()
    graph.add_vertex("n0")
    probabilities = {}
    for child, parent in enumerate(parents, start=1):
        upward = draw(st.booleans())
        if upward:
            edge = graph.add_edge(f"n{child}", f"n{parent}")
        else:
            edge = graph.add_edge(f"n{parent}", f"n{child}")
        probabilities[edge] = draw(probability_strategy)
    return ProbabilisticGraph(graph, probabilities)


@st.composite
def label_paths(draw, max_length=3):
    length = draw(st.integers(min_value=1, max_value=max_length))
    return [draw(st.sampled_from(LABELS)) for _ in range(length)]


@settings(max_examples=30, deadline=None)
@given(instance=labeled_dwt_instances(), labels=label_paths())
def test_prop410_agrees_with_brute_force(instance, labels):
    query = one_way_path(labels, prefix="q")
    reference = brute_force_phom(query, instance)
    assert phom_labeled_path_on_dwt(query, instance, "dp") == reference
    assert phom_labeled_path_on_dwt(query, instance, "lineage") == reference
    assert 0 <= reference <= 1


@settings(max_examples=30, deadline=None)
@given(instance=polytree_instances(), length=st.integers(min_value=1, max_value=3))
def test_prop54_agrees_with_brute_force(instance, length):
    reference = brute_force_phom(unlabeled_path(length, prefix="q"), instance)
    assert phom_unlabeled_path_on_polytree(length, instance, "automaton") == reference
    assert phom_unlabeled_path_on_polytree(length, instance, "dp") == reference


@settings(max_examples=20, deadline=None)
@given(instance=polytree_instances(max_vertices=5), length=st.integers(min_value=1, max_value=3))
def test_prop54_circuits_are_ddnnf(instance, length):
    circuit = provenance_circuit(
        build_longest_path_automaton(length), encode_polytree(instance)
    )
    assert circuit.is_decomposable()
    assert circuit.is_deterministic(max_support=instance.graph.num_edges())


@settings(max_examples=30, deadline=None)
@given(
    labels=st.lists(st.sampled_from(LABELS), min_size=1, max_size=5),
    probabilities=st.lists(probability_strategy, min_size=1, max_size=5),
    query_labels=label_paths(),
)
def test_prop411_agrees_with_brute_force_on_labeled_paths(labels, probabilities, query_labels):
    instance_graph = one_way_path(labels)
    instance = ProbabilisticGraph(
        instance_graph,
        {
            edge: probabilities[index % len(probabilities)]
            for index, edge in enumerate(instance_graph.edges())
        },
    )
    query = one_way_path(query_labels, prefix="q")
    reference = brute_force_phom(query, instance)
    assert phom_connected_on_2wp(query, instance, "dp") == reference
    assert phom_connected_on_2wp(query, instance, "lineage") == reference


@settings(max_examples=25, deadline=None)
@given(
    first=labeled_dwt_instances(max_vertices=4),
    second=labeled_dwt_instances(max_vertices=4),
    labels=label_paths(),
)
def test_lemma37_composition(first, second, labels):
    """Pr on a two-component instance is 1 − (1 − p₁)(1 − p₂)."""
    query = one_way_path(labels, prefix="q")
    union_graph = disjoint_union([first.graph, second.graph])
    probabilities = {}
    for tag, component in (("c0", first), ("c1", second)):
        for edge, probability in component.probabilities().items():
            probabilities[((tag, edge.source), (tag, edge.target))] = probability
    union_instance = ProbabilisticGraph(union_graph, probabilities)
    expected = 1 - (1 - brute_force_phom(query, first)) * (1 - brute_force_phom(query, second))
    combined = phom_on_disconnected_instance(
        query, union_instance, lambda q, c: phom_labeled_path_on_dwt(q, c, "dp")
    )
    assert combined == expected
    assert combined == brute_force_phom(query, union_instance)


@settings(max_examples=25, deadline=None)
@given(instance=labeled_dwt_instances(max_vertices=5), length=st.integers(min_value=1, max_value=3))
def test_prop36_matches_prop410_on_unlabeled_path_queries(instance, length):
    """On a DWT instance an unlabeled path query can go through either Prop 3.6 or Prop 4.10."""
    unlabeled_instance = ProbabilisticGraph(
        DiGraph(edges=[(e.source, e.target) for e in instance.graph.edges()]),
        {(e.source, e.target): p for e, p in instance.probabilities().items()},
    )
    query = unlabeled_path(length, prefix="q")
    via_grading = phom_unlabeled_on_union_dwt(query, unlabeled_instance)
    via_kmp = phom_labeled_path_on_dwt(query, unlabeled_instance, "dp")
    assert via_grading == via_kmp
