"""Unit tests for Proposition 4.10 (labeled 1WP queries on DWT instances)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ClassConstraintError
from repro.core.labeled_dwt import dwt_path_lineage, kmp_transition_table, phom_labeled_path_on_dwt
from repro.graphs.builders import downward_tree, one_way_path, star_tree, two_way_path
from repro.graphs.generators import random_downward_tree, random_one_way_path
from repro.lineage.builders import lineage_captures_query
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestKMPTable:
    def test_simple_pattern(self):
        table = kmp_transition_table(["R", "S"], ["R", "S"])
        assert table[(0, "R")] == 1
        assert table[(0, "S")] == 0
        assert table[(1, "S")] == 2
        assert table[(1, "R")] == 1  # restart on the new R

    def test_self_overlapping_pattern(self):
        table = kmp_transition_table(["R", "R", "S"], ["R", "S"])
        assert table[(2, "R")] == 2  # RR read, another R keeps two Rs matched
        assert table[(2, "S")] == 3

    def test_unknown_letter_resets(self):
        table = kmp_transition_table(["R", "S"], ["R", "S", "T"])
        assert table[(1, "T")] == 0


class TestLineageConstruction:
    def test_lineage_clause_per_matching_path(self, small_dwt_instance):
        lineage = dwt_path_lineage(["R", "S"], small_dwt_instance)
        # Matching downward RS paths in the fixture: a-R->b-S->d only.
        assert lineage.num_clauses() == 1
        (clause,) = lineage.clauses
        assert {e.endpoints for e in clause} == {("a", "b"), ("b", "d")}

    def test_lineage_is_beta_acyclic(self, rng):
        for _ in range(10):
            graph = random_downward_tree(rng.randint(2, 8), ("R", "S"), rng)
            instance = attach_random_probabilities(graph, rng)
            labels = [rng.choice(["R", "S"]) for _ in range(rng.randint(1, 3))]
            lineage = dwt_path_lineage(labels, instance)
            assert lineage.is_beta_acyclic()

    def test_lineage_captures_query(self, rng):
        for _ in range(5):
            graph = random_downward_tree(rng.randint(2, 5), ("R", "S"), rng)
            instance = attach_random_probabilities(graph, rng)
            query = random_one_way_path(rng.randint(1, 3), ("R", "S"), rng, prefix="q")
            lineage = dwt_path_lineage([e.label for e in _path_edges(query)], instance)
            assert lineage_captures_query(lineage, query, instance)

    def test_zero_length_query_is_true(self, small_dwt_instance):
        lineage = dwt_path_lineage([], small_dwt_instance)
        assert lineage.is_true()

    def test_requires_dwt_instance(self):
        non_tree = ProbabilisticGraph(two_way_path([("R", "forward"), ("S", "backward")]))
        with pytest.raises(ClassConstraintError):
            dwt_path_lineage(["R"], non_tree)


def _path_edges(query):
    from repro.graphs.classes import one_way_path_order

    order = one_way_path_order(query)
    return [query.get_edge(order[i], order[i + 1]) for i in range(len(order) - 1)]


class TestSolver:
    def test_fixture_probability(self, small_dwt_instance):
        query = one_way_path(["R", "S"], prefix="q")
        expected = Fraction(1, 2) * Fraction(1, 3)  # edges a->b and b->d must both be present
        assert phom_labeled_path_on_dwt(query, small_dwt_instance, "dp") == expected
        assert phom_labeled_path_on_dwt(query, small_dwt_instance, "lineage") == expected

    def test_methods_agree_with_brute_force(self, rng):
        for _ in range(20):
            graph = random_downward_tree(rng.randint(2, 7), ("R", "S"), rng)
            instance = attach_random_probabilities(graph, rng)
            query = random_one_way_path(rng.randint(1, 4), ("R", "S"), rng, prefix="q")
            reference = brute_force_phom(query, instance)
            assert phom_labeled_path_on_dwt(query, instance, "dp") == reference
            assert phom_labeled_path_on_dwt(query, instance, "lineage") == reference

    def test_single_vertex_query(self, small_dwt_instance):
        query = one_way_path([], prefix="q")
        assert phom_labeled_path_on_dwt(query, small_dwt_instance) == 1

    def test_query_longer_than_tree(self, small_dwt_instance):
        query = one_way_path(["R"] * 10, prefix="q")
        assert phom_labeled_path_on_dwt(query, small_dwt_instance) == 0

    def test_overlapping_occurrences(self):
        # Pattern RR on a chain of three R edges: clauses overlap, probabilities
        # must not be double counted.
        chain = downward_tree({"b": "a", "c": "b", "d": "c"}, labels={"b": "R", "c": "R", "d": "R"})
        instance = ProbabilisticGraph.with_uniform_probability(chain, "1/2")
        query = one_way_path(["R", "R"], prefix="q")
        reference = brute_force_phom(query, instance)
        assert phom_labeled_path_on_dwt(query, instance, "dp") == reference
        assert phom_labeled_path_on_dwt(query, instance, "lineage") == reference

    def test_rejects_wrong_classes(self, small_dwt_instance):
        with pytest.raises(ClassConstraintError):
            phom_labeled_path_on_dwt(star_tree(2, prefix="q"), small_dwt_instance)
        non_tree = ProbabilisticGraph(two_way_path([("R", "forward"), ("S", "backward")]))
        with pytest.raises(ClassConstraintError):
            phom_labeled_path_on_dwt(one_way_path(["R"], prefix="q"), non_tree)

    def test_unknown_method(self, small_dwt_instance):
        with pytest.raises(ValueError):
            phom_labeled_path_on_dwt(one_way_path(["R"], prefix="q"), small_dwt_instance, "magic")
