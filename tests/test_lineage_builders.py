"""Unit tests for generic lineage construction (Definition 4.6)."""

from __future__ import annotations

from fractions import Fraction

from repro.graphs.builders import disjoint_union, one_way_path, star_tree, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_downward_tree, random_one_way_path, random_two_way_path
from repro.lineage.builders import lineage_captures_query, match_lineage
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestMatchLineage:
    def test_single_edge_lineage(self):
        instance = ProbabilisticGraph(one_way_path(["R", "R"]))
        lineage = match_lineage(one_way_path(["R"], prefix="q"), instance)
        assert lineage.num_clauses() == 2
        assert all(len(clause) == 1 for clause in lineage.clauses)

    def test_lineage_captures_query_semantics(self):
        graph = DiGraph(edges=[("a", "b", "R"), ("c", "b", "R"), ("b", "d", "S")])
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
        query = one_way_path(["R", "S"], prefix="q")
        lineage = match_lineage(query, instance)
        assert lineage_captures_query(lineage, query, instance)

    def test_no_match_gives_false_lineage(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        lineage = match_lineage(one_way_path(["S"], prefix="q"), instance)
        assert lineage.is_false()

    def test_minimisation_drops_superset_clauses(self):
        # A star query collapses onto a single edge; without minimisation the
        # lineage would contain clauses with several edges.
        instance = ProbabilisticGraph.with_uniform_probability(star_tree(3), "1/2")
        query = star_tree(2, prefix="q")
        minimised = match_lineage(query, instance, minimise=True)
        raw = match_lineage(query, instance, minimise=False)
        assert minimised.num_clauses() <= raw.num_clauses()
        assert all(len(clause) == 1 for clause in minimised.clauses)
        probabilities = instance.probabilities()
        assert minimised.probability(probabilities) == raw.probability(probabilities)

    def test_disconnected_query_lineage(self):
        graph = disjoint_union([one_way_path(["R"]), one_way_path(["S"])])
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
        query = disjoint_union([one_way_path(["R"]), one_way_path(["S"])], prefix="q")
        lineage = match_lineage(query, instance)
        assert lineage.num_clauses() == 1
        assert lineage.probability(instance.probabilities()) == Fraction(1, 4)

    def test_lineage_probability_equals_phom_on_random_inputs(self, rng):
        for _ in range(10):
            shape = rng.choice(["dwt", "2wp"])
            if shape == "dwt":
                graph = random_downward_tree(rng.randint(2, 5), ("R", "S"), rng)
            else:
                graph = random_two_way_path(rng.randint(1, 4), ("R", "S"), rng)
            instance = attach_random_probabilities(graph, rng)
            query = random_one_way_path(rng.randint(1, 3), ("R", "S"), rng, prefix="q")
            lineage = match_lineage(query, instance)
            assert lineage.probability(instance.probabilities()) == brute_force_phom(
                query, instance
            )

    def test_unlabeled_path_lineage_on_forked_graph(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("b", "d")])
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
        lineage = match_lineage(unlabeled_path(2), instance)
        assert lineage.num_clauses() == 2
        assert lineage.probability(instance.probabilities()) == Fraction(3, 8)
