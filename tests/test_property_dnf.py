"""Property-based tests (hypothesis) for positive DNF formulas."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.lineage.dnf import PositiveDNF

VARIABLES = ["a", "b", "c", "d", "e"]

clauses_strategy = st.lists(
    st.sets(st.sampled_from(VARIABLES), min_size=1, max_size=3),
    min_size=1,
    max_size=5,
)

probabilities_strategy = st.fixed_dictionaries(
    {v: st.integers(min_value=0, max_value=6).map(lambda k: Fraction(k, 6)) for v in VARIABLES}
)


@settings(max_examples=40, deadline=None)
@given(clauses=clauses_strategy, probabilities=probabilities_strategy)
def test_shannon_expansion_matches_enumeration(clauses, probabilities):
    formula = PositiveDNF(clauses)
    assert formula.probability(probabilities) == formula.probability_by_enumeration(probabilities)


@settings(max_examples=40, deadline=None)
@given(clauses=clauses_strategy, probabilities=probabilities_strategy)
def test_inclusion_exclusion_matches_enumeration(clauses, probabilities):
    formula = PositiveDNF(clauses)
    assert formula.probability_inclusion_exclusion(
        probabilities
    ) == formula.probability_by_enumeration(probabilities)


@settings(max_examples=40, deadline=None)
@given(clauses=clauses_strategy, probabilities=probabilities_strategy)
def test_probability_is_in_the_unit_interval(clauses, probabilities):
    probability = PositiveDNF(clauses).probability(probabilities)
    assert 0 <= probability <= 1


@settings(max_examples=40, deadline=None)
@given(
    clauses=clauses_strategy,
    extra=st.sets(st.sampled_from(VARIABLES), min_size=1, max_size=3),
    probabilities=probabilities_strategy,
)
def test_adding_a_clause_is_monotone(clauses, extra, probabilities):
    """A positive DNF is monotone in its clause set: more disjuncts can only help."""
    smaller = PositiveDNF(clauses)
    larger = PositiveDNF(list(clauses) + [extra])
    assert larger.probability(probabilities) >= smaller.probability(probabilities)


@settings(max_examples=40, deadline=None)
@given(clauses=clauses_strategy, probabilities=probabilities_strategy)
def test_monotone_in_variable_probabilities(clauses, probabilities):
    """Raising every variable's probability never decreases the formula's probability."""
    formula = PositiveDNF(clauses)
    raised = {v: p + (1 - p) / 2 for v, p in probabilities.items()}
    assert formula.probability(raised) >= formula.probability(probabilities)


@settings(max_examples=40, deadline=None)
@given(clauses=clauses_strategy)
def test_beta_elimination_order_is_valid_when_it_exists(clauses):
    formula = PositiveDNF(clauses)
    order = formula.beta_elimination_order()
    if order is None:
        assert not formula.is_beta_acyclic()
        return
    assert formula.is_beta_acyclic()
    hypergraph = formula.hypergraph()
    for vertex in order:
        assert hypergraph.is_beta_leaf(vertex)
        hypergraph = hypergraph.remove_vertex(vertex)
    assert not hypergraph.hyperedges


@settings(max_examples=40, deadline=None)
@given(clauses=clauses_strategy, probabilities=probabilities_strategy)
def test_certain_variables_can_be_contracted(clauses, probabilities):
    """Variables with probability 1 can be removed from every clause without changing the result."""
    certain = {v for v, p in probabilities.items() if p == 1}
    formula = PositiveDNF(clauses)
    contracted = PositiveDNF([set(clause) - certain for clause in clauses])
    assert formula.probability(probabilities) == contracted.probability(probabilities)
