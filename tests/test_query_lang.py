"""Tests for the conjunctive-query language frontend (:mod:`repro.query`).

Covers the parser (atoms, regular-path sugar, two-way atoms, source-located
errors), the ``format_query`` round-trip property on seeded random queries,
the Chandra–Merlin ``query_core`` minimizer (equivalence against the
brute-force oracle on small instances, idempotence), the class-aware
``normalize`` pass, and the end-to-end integrations: string queries through
:class:`~repro.core.solver.PHomSolver`, core-keyed
:func:`~repro.plan.canonical_query_key` coalescing, the JSONL serving
protocol, and the ``repro parse`` CLI command.

The random suites reuse the pinned ``REPRO_FUZZ_SEED`` convention of
``tests/test_properties_random.py``, so CI exercises them under two seeds.
"""

from __future__ import annotations

import io
import json
import os
import random
import warnings
from fractions import Fraction

import pytest

from repro.cli import main as cli_main
from repro.core.solver import PHomSolver, phom_probability
from repro.exceptions import (
    ClassConstraintError,
    IntractableFallbackWarning,
    QueryParseError,
    ReproError,
    ServiceError,
)
from repro.graphs.builders import one_way_path, two_way_path
from repro.graphs.classes import GraphClass, graph_class_of
from repro.graphs.digraph import DiGraph, UNLABELED
from repro.graphs.homomorphism import homomorphic_equivalent
from repro.graphs.serialization import save_graph
from repro.plan import canonical_query_key
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.query import (
    Atom,
    QueryIR,
    explain_query,
    format_query,
    normalize,
    parse_query,
    parse_query_graph,
    query_core,
    validate_query_graph,
)
from repro.service import QueryService, ServiceRequest, run_jsonl_session
from repro.service.requests import request_from_json_dict
from repro.workloads.generators import (
    add_redundant_atoms,
    attach_random_probabilities,
    make_instance,
    make_query,
    redundant_query_workload,
)

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20170514"))


def solve_quietly(solver, query, instance, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", IntractableFallbackWarning)
        return solver.solve(query, instance, **kwargs)


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class TestParser:
    def test_plain_atoms(self):
        ir = parse_query("R(x, y), S(y, z)")
        assert ir.atoms == (Atom("R", "x", "y"), Atom("S", "y", "z"))
        graph = ir.to_graph()
        assert graph.num_vertices() == 3
        assert graph.has_edge("x", "y", "R") and graph.has_edge("y", "z", "S")

    def test_duplicate_atoms_collapse(self):
        graph = parse_query_graph("R(x, y), R(x, y), S(y, z)")
        assert graph.num_edges() == 2

    def test_path_sugar_expands_with_fresh_variables(self):
        ir = parse_query("x -[R.S]-> y")
        assert format_query(ir) == "R(x, _1), S(_1, y)"

    def test_repetition_sugar(self):
        ir = parse_query("x -[R{3}]-> y")
        assert format_query(ir) == "R(x, _1), R(_1, _2), R(_2, y)"

    def test_fresh_variables_avoid_user_names(self):
        ir = parse_query("T(_1, w), x -[R.S]-> y")
        names = {v for atom in ir.atoms for v in (atom.source, atom.target)}
        # the expansion skipped the user's _1 and used _2 instead
        assert "_2" in names
        assert sum(1 for atom in ir.atoms if "_1" in (atom.source, atom.target)) == 1

    def test_two_way_atom_is_oriented_at_parse_time(self):
        assert parse_query("x <-[R]- y").atoms == (Atom("R", "y", "x"),)
        assert parse_query("x <-[R.S]- y").to_graph() == parse_query(
            "y -[R.S]-> x"
        ).to_graph()

    def test_unlabeled_arrows(self):
        graph = parse_query_graph("a -> b <- c")
        assert graph.has_edge("a", "b", UNLABELED)
        assert graph.has_edge("c", "b", UNLABELED)

    def test_chained_arrows(self):
        graph = parse_query_graph("x -[R]-> y -[S]-> z")
        assert graph.has_edge("x", "y", "R") and graph.has_edge("y", "z", "S")

    def test_lone_variable_is_an_isolated_vertex(self):
        graph = parse_query_graph("x, R(a, b)")
        assert graph.has_vertex("x")
        assert graph.degree("x") == 0

    def test_comments_and_whitespace(self):
        graph = parse_query_graph(
            "R(x, y),  # the first hop\n  S(y, z)"
        )
        assert graph.num_edges() == 2

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "R(x y)",
            "R(x,",
            "R(x, y",
            "x -[R{0}]-> y",
            "x -[]-> y",
            "R(x, y) S(y, z)",
            "1(x, y)",
            "x -[R]->",
            "R(x, y),",
        ],
    )
    def test_malformed_queries_raise_parse_errors(self, text):
        with pytest.raises(QueryParseError):
            parse_query(text)

    def test_parse_error_carries_source_location(self):
        with pytest.raises(QueryParseError) as info:
            parse_query("R(x, y), S(y z)")
        error = info.value
        assert error.position == 13  # the offset of 'z'
        rendered = str(error)
        assert "S(y z)" in rendered and "^" in rendered

    def test_conflicting_labels_rejected_at_lowering(self):
        with pytest.raises(QueryParseError, match="conflicting labels"):
            parse_query("R(x, y), S(x, y)").to_graph()

    def test_non_identifier_vertices_cannot_be_formatted(self):
        graph = DiGraph(edges=[((1, 2), "b", "R")])
        with pytest.raises(QueryParseError, match="cannot be written"):
            format_query(graph)


# ----------------------------------------------------------------------
# format round-trip
# ----------------------------------------------------------------------
ROUND_TRIP_CLASSES = [
    (GraphClass.ONE_WAY_PATH, True),
    (GraphClass.TWO_WAY_PATH, True),
    (GraphClass.DOWNWARD_TREE, False),
    (GraphClass.POLYTREE, True),
    (GraphClass.UNION_ONE_WAY_PATH, False),
    (GraphClass.ALL, True),
]


class TestFormatRoundTrip:
    @pytest.mark.parametrize("index", range(12))
    def test_random_query_round_trips(self, index):
        rng = random.Random(SEED + index)
        cls, labeled = ROUND_TRIP_CLASSES[index % len(ROUND_TRIP_CLASSES)]
        query = make_query(cls, labeled, rng.randint(1, 5), rng)
        # union-class generators name vertices with tuples; rename them into
        # the identifier space the surface syntax can express
        renamed = query.relabel_vertices(
            {v: f"n{i}" for i, v in enumerate(sorted(query.vertices, key=repr))}
        )
        text = format_query(renamed)
        assert parse_query(text).to_graph() == renamed

    @pytest.mark.parametrize(
        "text",
        [
            "R(x, y), S(y, z)",
            "x -[R.S{2}]-> y",
            "x <-[R]- y -[S]-> z",
            "a -> b <- c",
            "lonely, R(a, b)",
        ],
    )
    def test_format_of_parse_is_a_fixed_point(self, text):
        ir = parse_query(text)
        assert parse_query(format_query(ir)) == ir
        assert parse_query(format_query(ir)).to_graph() == ir.to_graph()


# ----------------------------------------------------------------------
# core minimization
# ----------------------------------------------------------------------
class TestQueryCore:
    def test_redundant_atom_folds_away(self):
        query = parse_query_graph("R(x, y), S(y, z), S(t, z)")
        core = query_core(query)
        assert format_query(core) == "R(x, y), S(y, z)"
        assert graph_class_of(core) is GraphClass.ONE_WAY_PATH

    def test_identical_components_fold_into_one(self):
        query = parse_query_graph("R(a, b), R(c, d)")
        assert query_core(query).num_edges() == 1

    def test_core_of_a_core_is_itself(self):
        query = parse_query_graph("R(x, y), S(y, z), S(t, z)")
        core = query_core(query)
        assert query_core(core) is core
        # an already-minimal query is returned unchanged, same object
        path = one_way_path(["R", "S"], prefix="q")
        assert query_core(path) is path

    def test_core_is_homomorphically_equivalent(self):
        query = parse_query_graph("R(x, y), S(y, z), S(t, z), R(u, y)")
        assert homomorphic_equivalent(query, query_core(query))

    @pytest.mark.parametrize("index", range(10))
    def test_core_preserves_probability_against_oracle(self, index):
        rng = random.Random(SEED + 700 + index)
        base_class = [
            GraphClass.ONE_WAY_PATH,
            GraphClass.TWO_WAY_PATH,
            GraphClass.DOWNWARD_TREE,
        ][index % 3]
        base = make_query(base_class, True, rng.randint(1, 3), rng)
        query = add_redundant_atoms(base, rng.randint(1, 3), rng)
        core = query_core(query)
        assert core.num_edges() <= query.num_edges()
        assert homomorphic_equivalent(query, core)
        instance = attach_random_probabilities(
            make_instance(GraphClass.ALL, True, rng.randint(3, 5), rng), rng
        )
        assert brute_force_phom(query, instance) == brute_force_phom(core, instance)

    @pytest.mark.parametrize("index", range(6))
    def test_minimization_is_idempotent_on_random_queries(self, index):
        rng = random.Random(SEED + 800 + index)
        base = make_query(GraphClass.ALL, index % 2 == 0, rng.randint(2, 5), rng)
        core = query_core(base)
        again = query_core(core.copy())  # fresh object: recomputed, not memoised
        assert again == core

    def test_paper_example_22_query_has_a_path_core(self, example22_query):
        core = query_core(example22_query)
        assert graph_class_of(core) is GraphClass.ONE_WAY_PATH
        assert core.num_edges() == 2


class TestNormalize:
    def test_normalize_reports_class_movement(self):
        info = normalize(parse_query_graph("R(x, y), S(y, z), S(t, z)"))
        assert info.changed
        assert info.original_class is GraphClass.TWO_WAY_PATH
        assert info.core_class is GraphClass.ONE_WAY_PATH
        assert info.folded_vertices == 1 and info.folded_edges == 1
        assert "1WP" in info.describe()

    def test_normalize_of_minimal_query_is_silent(self):
        info = normalize(one_way_path(["R", "S"], prefix="q"))
        assert not info.changed
        assert info.describe() == ""
        assert info.graph is info.original

    def test_self_loop_only_query_rejected_with_clear_error(self):
        query = DiGraph(edges=[("x", "x", "R"), ("y", "y", "S")])
        with pytest.raises(ClassConstraintError, match="self-loop"):
            validate_query_graph(query)
        with pytest.raises(ClassConstraintError, match="self-loop"):
            normalize(query)

    def test_mixed_self_loop_query_is_still_valid(self):
        query = DiGraph(edges=[("x", "y", "R"), ("y", "y", "S")])
        assert validate_query_graph(query) is query


# ----------------------------------------------------------------------
# solver integration
# ----------------------------------------------------------------------
class TestSolverIntegration:
    def build_instance(self, seed=5, size=10):
        rng = random.Random(seed)
        graph = make_instance(GraphClass.DOWNWARD_TREE, True, size, rng)
        return attach_random_probabilities(graph, rng)

    def test_solve_accepts_query_strings(self):
        instance = self.build_instance()
        solver = PHomSolver()
        text = "R(x, y), S(y, z)"
        from_string = solve_quietly(solver, text, instance)
        from_graph = solve_quietly(solver, parse_query_graph(text), instance)
        assert from_string.probability == from_graph.probability
        assert from_string.method == from_graph.method

    def test_phom_probability_accepts_strings(self):
        instance = self.build_instance()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            a = phom_probability("R(x, y)", instance)
            b = phom_probability(one_way_path(["R"], prefix="q"), instance)
        assert a == b

    def test_invalid_query_type_rejected(self):
        instance = self.build_instance()
        with pytest.raises(QueryParseError):
            PHomSolver().solve(42, instance)

    def test_minimized_solve_reaches_polynomial_route(self):
        rng = random.Random(SEED)
        workload = redundant_query_workload(
            core_size=2, redundancy=3, instance_size=8, rng=rng
        )
        minimizing = PHomSolver()
        plain = PHomSolver(minimize_queries=False)
        minimized = solve_quietly(minimizing, workload.query, workload.instance)
        unminimized = solve_quietly(plain, workload.query, workload.instance)
        assert minimized.probability == unminimized.probability
        # the original class is reported even though the core was solved
        assert minimized.query_class is graph_class_of(workload.query)
        if unminimized.method == "brute-force-worlds":
            assert minimized.method != "brute-force-worlds"
            assert "query minimized" in minimized.notes

    def test_self_loop_only_query_rejected_by_solver(self):
        instance = self.build_instance()
        with pytest.raises(ClassConstraintError, match="self-loop"):
            PHomSolver().solve("R(x, x)", instance)
        with pytest.raises(ClassConstraintError, match="self-loop"):
            PHomSolver(minimize_queries=False).compile(
                parse_query_graph("R(x, x)"), instance
            )
        # regression: the mixed case still routes (and answers 0 here,
        # since a DWT instance has no reflexive edges)
        result = solve_quietly(PHomSolver(), "R(x, y), S(y, y)", instance)
        assert result.probability == 0

    def test_self_loop_only_query_still_answered_by_explicit_methods(self):
        # The rejection is scoped to the classification path: explicit
        # enumeration and sampling methods need no class recognition and
        # keep their pre-frontend behaviour.
        graph = DiGraph(edges=[("a", "a", "R")])
        instance = ProbabilisticGraph(graph, {("a", "a"): Fraction(1, 2)})
        solver = PHomSolver()
        result = solver.solve("R(x, x)", instance, method="brute-force-worlds")
        assert result.probability == Fraction(1, 2)
        sampled = PHomSolver(seed=3).solve("R(x, x)", instance, method="karp-luby")
        assert 0 <= sampled.probability <= 1

    def test_solve_many_duplicates_report_their_own_spelling(self):
        instance = self.build_instance()
        solver = PHomSolver()
        texts = ["R(x, y), S(y, z), S(t, z)", "R(a, b), S(b, c)"]
        for ordering in (texts, list(reversed(texts))):
            results = solver.solve_many(ordering, instance)
            by_text = dict(zip(ordering, results))
            redundant = by_text[texts[0]]
            minimal = by_text[texts[1]]
            # identical shared computation...
            assert redundant.probability == minimal.probability
            # ...but per-spelling metadata, independent of batch order
            assert redundant.query_class is GraphClass.TWO_WAY_PATH
            assert "query minimized" in redundant.notes
            assert minimal.query_class is GraphClass.ONE_WAY_PATH
            assert "query minimized" not in minimal.notes

    def test_canonical_key_merges_equal_cores(self):
        redundant = parse_query_graph("R(x, y), S(y, z), S(t, z)")
        minimal = parse_query_graph("R(a, b), S(b, c)")
        different = parse_query_graph("S(a, b), S(b, c)")
        assert canonical_query_key(redundant) == canonical_query_key(minimal)
        assert canonical_query_key(redundant) != canonical_query_key(different)
        # the unminimized keys keep the old, spelling-sensitive behaviour
        assert canonical_query_key(redundant, minimize=False) != canonical_query_key(
            minimal, minimize=False
        )

    def test_plan_cache_hits_across_spelling_variants(self):
        instance = self.build_instance()
        solver = PHomSolver()
        solve_quietly(solver, "R(x, y), S(y, z)", instance)
        before = solver.plan_cache.stats["compiles"]
        solve_quietly(solver, "R(p, q), S(q, w), S(t, w)", instance)
        assert solver.plan_cache.stats["compiles"] == before
        assert solver.plan_cache.stats["hits"] >= 1

    def test_solve_many_dedupes_equal_cores(self):
        instance = self.build_instance()
        solver = PHomSolver()
        results = solver.solve_many(
            ["R(x, y), S(y, z)", "R(a, b), S(b, c), S(t, c)"], instance
        )
        assert results[0].probability == results[1].probability

    def test_explicit_method_duplicates_carry_no_minimization_note(self):
        # Explicit methods never minimize: neither the shared computation
        # nor its deduped copies may claim minimization provenance.
        instance = self.build_instance()
        query = parse_query_graph("R(x, y), S(y, z), S(t, z)")
        results = PHomSolver().solve_many(
            [query, query.copy()], instance, method="generic-lineage"
        )
        for result in results:
            assert "query minimized" not in result.notes

    def test_explicit_methods_never_dedupe_across_spellings(self):
        # labeled-dwt-dp requires a 1WP query *as written*: the core spelling
        # succeeds, the redundant spelling raises — in both batch orders.
        instance = self.build_instance()
        core_text = "R(x, y), S(y, z)"
        redundant_text = "R(x, y), S(y, z), S(t, z)"
        solver = PHomSolver()
        expected = solver.solve(core_text, instance, method="labeled-dwt-dp")
        for ordering in ([core_text, redundant_text], [redundant_text, core_text]):
            fresh = PHomSolver()
            with pytest.raises(ClassConstraintError, match="one-way path"):
                fresh.solve_many(ordering, instance, method="labeled-dwt-dp")
            # the core spelling alone still works on the same solver
            alone = fresh.solve(core_text, instance, method="labeled-dwt-dp")
            assert alone.probability == expected.probability

    def test_edgeless_string_query(self):
        instance = self.build_instance()
        result = PHomSolver().solve("x", instance)
        assert result.probability == 1
        assert result.method == "trivial-edgeless-query"


# ----------------------------------------------------------------------
# serving layer
# ----------------------------------------------------------------------
class TestServiceStrings:
    def build_instance(self):
        rng = random.Random(9)
        graph = make_instance(GraphClass.DOWNWARD_TREE, True, 10, rng)
        return attach_random_probabilities(graph, rng)

    def test_service_request_accepts_strings(self):
        instance = self.build_instance()
        with QueryService(num_workers=0) as service:
            instance_id = service.register_instance(instance)
            request = ServiceRequest(query="R(x, y)", instance_id=instance_id)
            assert isinstance(request.query, DiGraph)
            outcome = service.submit("R(x, y)", instance_id)
            solver = PHomSolver()
            expected = solve_quietly(solver, "R(x, y)", instance)
            assert outcome.probability == expected.probability

    def test_service_coalesces_spelling_variants_with_equal_cores(self):
        instance = self.build_instance()
        with QueryService(num_workers=0) as service:
            instance_id = service.register_instance(instance)
            texts = [
                "R(x, y), S(y, z)",
                "R(a, b), S(b, c), S(t, c)",  # redundant spelling, same core
                "p -[R.S]-> q",  # sugar spelling, same core
            ]
            batch = [
                ServiceRequest(query=text, instance_id=instance_id)
                for text in texts
            ]
            results = service.submit_many(batch)
            stats = service.stats()
        keys = {request.coalesce_key("exact") for request in batch}
        assert len(keys) == 1
        assert stats.coalesced == len(texts) - 1
        assert len({outcome.probability for outcome in results}) == 1
        # coalesced duplicates report their own spelling's class, not the
        # class of whichever spelling happened to be computed
        assert results[0].result.query_class is GraphClass.ONE_WAY_PATH
        assert results[1].result.query_class is GraphClass.TWO_WAY_PATH
        assert "query minimized" in results[1].result.notes
        assert "query minimized" not in results[0].result.notes

    def test_explicit_method_requests_do_not_coalesce_across_spellings(self):
        instance = self.build_instance()
        with QueryService(num_workers=0) as service:
            instance_id = service.register_instance(instance)
            core = ServiceRequest(
                query="R(x, y), S(y, z)", instance_id=instance_id,
                method="labeled-dwt-dp",
            )
            redundant = ServiceRequest(
                query="R(x, y), S(y, z), S(t, z)", instance_id=instance_id,
                method="labeled-dwt-dp",
            )
            assert core.coalesce_key("exact") != redundant.coalesce_key("exact")
            for batch in ([core, redundant], [redundant, core]):
                outcomes = service.submit_many(batch, on_error="return")
                by_query = {id(r.query): o for r, o in zip(batch, outcomes)}
                assert by_query[id(core.query)].error is None
                assert "one-way path" in by_query[id(redundant.query)].error
            # auto requests for the same spellings do coalesce
            auto = [
                ServiceRequest(query="R(x, y), S(y, z)", instance_id=instance_id),
                ServiceRequest(
                    query="R(x, y), S(y, z), S(t, z)", instance_id=instance_id
                ),
            ]
            assert auto[0].coalesce_key("exact") == auto[1].coalesce_key("exact")

    def test_explicit_method_cache_hits_carry_no_minimization_note(self):
        instance = self.build_instance()
        with QueryService(num_workers=0) as service:
            instance_id = service.register_instance(instance)
            text = "R(x, y), S(y, z), S(t, z)"
            first = service.submit(text, instance_id, method="generic-lineage")
            second = service.submit(text, instance_id, method="generic-lineage")
            assert second.cached
            assert "query minimized" not in first.result.notes
            assert "query minimized" not in second.result.notes
            # coalesced duplicates within one batch, same contract
            batch = [
                ServiceRequest(
                    query=text, instance_id=instance_id, method="generic-lineage"
                )
                for _ in range(2)
            ]
            outcomes = service.submit_many(batch)
            assert outcomes[1].coalesced
            assert "query minimized" not in outcomes[1].result.notes

    def test_jsonl_string_query_and_ambiguous_payload(self):
        instance = self.build_instance()
        lines = [
            json.dumps(
                {"op": "register", "id": "i1", "instance": _instance_dict(instance)}
            ),
            json.dumps(
                {"op": "solve", "id": "ok", "instance": "i1", "query": "R(x, y)"}
            ),
            json.dumps(
                {"op": "solve", "id": "amb", "instance": "i1",
                 "query": "{\"edges\": [[\"x\", \"y\", \"R\"]]}"}
            ),
            json.dumps(
                {"op": "solve", "id": "bad", "instance": "i1", "query": "R(x y)"}
            ),
            json.dumps(
                {"op": "solve", "id": "num", "instance": "i1", "query": 7}
            ),
        ]
        out = io.StringIO()
        with QueryService(num_workers=0) as service:
            code = run_jsonl_session(lines, out, service)
        assert code == 1  # some lines failed
        payloads = [json.loads(line) for line in out.getvalue().splitlines()]
        by_id = {p.get("id"): p for p in payloads if "id" in p}
        assert "probability" in by_id["ok"]
        errors = "\n".join(p["error"] for p in payloads if "error" in p)
        assert "ambiguous query payload" in errors
        assert "expected ','" in errors
        assert "query payload must be" in errors

    def test_ambiguous_payload_is_a_typed_service_error(self):
        with pytest.raises(ServiceError, match="ambiguous"):
            request_from_json_dict(
                {"op": "solve", "instance": "i1", "query": "{\"edges\": []}"}
            )


def _instance_dict(instance):
    from repro.graphs.serialization import probabilistic_graph_to_dict

    return probabilistic_graph_to_dict(instance)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCliParse:
    def test_parse_prints_core_and_classes(self):
        out = io.StringIO()
        code = cli_main(["parse", "R(x, y), S(y, z), S(t, z)"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "R(x, y), S(y, z), S(t, z)" in text
        assert "core        = R(x, y), S(y, z)" in text
        assert "1WP" in text

    def test_parse_explain_shows_cell_change(self):
        out = io.StringIO()
        code = cli_main(
            ["parse", "R(x, y), S(y, z), S(t, z)", "--explain",
             "--instance-class", "dwt"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "#P-hard" in text and "PTIME" in text
        assert "polynomial dispatch cell" in text
        assert "labeled-dwt" in text

    def test_parse_error_exits_nonzero(self):
        out, err = io.StringIO(), io.StringIO()
        code = cli_main(["parse", "R(x y)"], out=out, err=err)
        assert code == 1
        assert "^" in err.getvalue()

    def test_solve_accepts_query_string_argument(self, tmp_path):
        rng = random.Random(11)
        graph = make_instance(GraphClass.DOWNWARD_TREE, True, 8, rng)
        instance = attach_random_probabilities(graph, rng)
        path = tmp_path / "instance.json"
        save_graph(instance, str(path))
        out = io.StringIO()
        code = cli_main(["solve", "R(x, y), S(y, z), S(t, z)", str(path)], out=out)
        assert code == 0
        assert "probability =" in out.getvalue()

    def test_solve_reports_missing_file_for_path_shaped_queries(self, tmp_path):
        out, err = io.StringIO(), io.StringIO()
        code = cli_main(
            ["solve", str(tmp_path / "typo.json"), str(tmp_path / "typo.json")],
            out=out, err=err,
        )
        assert code == 2
        assert "does not exist" in err.getvalue()
        assert "^" not in err.getvalue()  # no parse-error caret for a path

    def test_solve_rejects_inline_json_query(self, tmp_path):
        path = tmp_path / "instance.json"
        rng = random.Random(12)
        instance = attach_random_probabilities(
            make_instance(GraphClass.ONE_WAY_PATH, True, 3, rng), rng
        )
        save_graph(instance, str(path))
        out, err = io.StringIO(), io.StringIO()
        code = cli_main(["solve", '{"edges": []}', str(path)], out=out, err=err)
        assert code == 2
        assert "looks like JSON" in err.getvalue()
