"""Unit tests for homomorphism search and query equivalence."""

from __future__ import annotations

import pytest

from repro.graphs.builders import downward_tree, one_way_path, star_tree, two_way_path, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.homomorphism import (
    arc_consistent_domains,
    enumerate_homomorphisms,
    find_homomorphism,
    has_homomorphism,
    homomorphic_equivalent,
    match_image,
)


def _check_is_homomorphism(hom, query, instance):
    for edge in query.edges():
        assert instance.has_edge(hom[edge.source], hom[edge.target], edge.label)


class TestBasicHomomorphisms:
    def test_path_into_itself(self):
        path = one_way_path(["R", "S"])
        hom = find_homomorphism(path, path)
        assert hom is not None
        _check_is_homomorphism(hom, path, path)

    def test_label_mismatch(self):
        query = one_way_path(["R"])
        instance = one_way_path(["S"])
        assert not has_homomorphism(query, instance)

    def test_orientation_and_labels_interact(self):
        # The unlabeled zig-zag folds onto a single edge, but with two labels
        # the backward S edge has no image in an R-only path.
        unlabeled_zigzag = two_way_path([("R", "forward"), ("R", "backward")])
        assert has_homomorphism(unlabeled_zigzag, one_way_path(["R", "R"]))
        labeled_zigzag = two_way_path([("R", "forward"), ("S", "backward")])
        assert not has_homomorphism(labeled_zigzag, one_way_path(["R", "R"]))

    def test_longer_query_does_not_map_to_shorter_path(self):
        assert not has_homomorphism(unlabeled_path(3), unlabeled_path(2))
        assert has_homomorphism(unlabeled_path(2), unlabeled_path(3))

    def test_query_collapses_onto_cycle(self):
        # A long unlabeled path maps into a directed 2-cycle by alternating.
        cycle = DiGraph(edges=[("a", "b"), ("b", "a")])
        assert has_homomorphism(unlabeled_path(5), cycle)

    def test_branching_query_on_path(self):
        # An unlabeled star of out-degree 3 maps onto a single edge.
        assert has_homomorphism(star_tree(3), unlabeled_path(1))
        # But not when the labels of the branches differ.
        labeled_star = DiGraph(edges=[("r", "a", "R"), ("r", "b", "S")])
        assert not has_homomorphism(labeled_star, one_way_path(["R"]))

    def test_empty_query_has_no_homomorphism(self):
        assert find_homomorphism(DiGraph(), unlabeled_path(1)) is None

    def test_disconnected_query_needs_all_components(self):
        from repro.graphs.builders import disjoint_union

        query = disjoint_union([one_way_path(["R"]), one_way_path(["S"])])
        only_r = one_way_path(["R", "R"])
        both = one_way_path(["R", "S"])
        assert not has_homomorphism(query, only_r)
        assert has_homomorphism(query, both)


class TestEnumeration:
    def test_enumeration_counts_all_homomorphisms(self):
        # An unlabeled single edge maps into a path of 3 edges in 3 ways.
        homs = list(enumerate_homomorphisms(unlabeled_path(1), unlabeled_path(3)))
        assert len(homs) == 3
        for hom in homs:
            _check_is_homomorphism(hom, unlabeled_path(1), unlabeled_path(3))

    def test_enumeration_respects_limit(self):
        homs = list(enumerate_homomorphisms(unlabeled_path(1), unlabeled_path(3), limit=2))
        assert len(homs) == 2

    def test_enumeration_no_duplicates(self):
        query = star_tree(2)
        instance = downward_tree({"b": "a", "c": "a", "d": "a"})
        homs = [tuple(sorted(h.items())) for h in enumerate_homomorphisms(query, instance)]
        assert len(homs) == len(set(homs))
        # root -> a, each leaf independently -> one of 3 children: 9 homomorphisms.
        assert len(homs) == 9

    def test_match_image(self):
        query = unlabeled_path(1)
        instance = unlabeled_path(2)
        hom = find_homomorphism(query, instance)
        image = match_image(hom, query, instance)
        assert image.num_edges() == 1
        assert image.num_vertices() == instance.num_vertices()


class TestArcConsistency:
    def test_arc_consistency_detects_impossibility(self):
        assert arc_consistent_domains(unlabeled_path(3), unlabeled_path(2)) is None

    def test_arc_consistency_domains_support_all_homomorphisms(self):
        query = one_way_path(["R", "S"])
        instance = DiGraph(
            edges=[("a", "b", "R"), ("b", "c", "S"), ("x", "b", "R"), ("b", "y", "R")]
        )
        domains = arc_consistent_domains(query, instance)
        assert domains is not None
        for hom in enumerate_homomorphisms(query, instance):
            for vertex, image in hom.items():
                assert image in domains[vertex]


class TestEquivalence:
    def test_dwt_query_equivalent_to_its_height_path(self):
        # Proposition 5.5's key observation, checked on a concrete tree.
        tree = downward_tree({"b": "a", "c": "a", "d": "b"})
        assert homomorphic_equivalent(tree, unlabeled_path(2))
        assert not homomorphic_equivalent(tree, unlabeled_path(3))

    def test_equivalence_is_symmetric_and_reflexive(self):
        path = unlabeled_path(2)
        tree = downward_tree({"b": "a", "c": "b", "d": "a"})
        assert homomorphic_equivalent(path, path)
        assert homomorphic_equivalent(path, tree) == homomorphic_equivalent(tree, path)

    def test_labels_break_equivalence(self):
        assert not homomorphic_equivalent(one_way_path(["R"]), one_way_path(["S"]))
