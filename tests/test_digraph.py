"""Unit tests for :mod:`repro.graphs.digraph`."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph, Edge, UNLABELED


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.num_vertices() == 0
        assert graph.num_edges() == 0
        assert not graph.is_weakly_connected()

    def test_add_vertex_is_idempotent(self):
        graph = DiGraph()
        graph.add_vertex("a")
        graph.add_vertex("a")
        assert graph.num_vertices() == 1

    def test_add_edge_adds_endpoints(self):
        graph = DiGraph()
        graph.add_edge("a", "b", "R")
        assert graph.has_vertex("a") and graph.has_vertex("b")
        assert graph.has_edge("a", "b")
        assert graph.has_edge("a", "b", "R")
        assert not graph.has_edge("a", "b", "S")
        assert not graph.has_edge("b", "a")

    def test_multi_edges_are_rejected(self):
        graph = DiGraph()
        graph.add_edge("a", "b", "R")
        with pytest.raises(GraphError):
            graph.add_edge("a", "b", "S")

    def test_antiparallel_edges_are_allowed(self):
        graph = DiGraph()
        graph.add_edge("a", "b", "R")
        graph.add_edge("b", "a", "S")
        assert graph.num_edges() == 2

    def test_constructor_accepts_tuples_and_edges(self):
        graph = DiGraph(vertices=["x"], edges=[("a", "b"), ("b", "c", "S"), Edge("c", "d", "T")])
        assert graph.num_vertices() == 5
        assert graph.label_of("a", "b") == UNLABELED
        assert graph.label_of("b", "c") == "S"
        assert graph.label_of("c", "d") == "T"

    def test_remove_edge_keeps_vertices(self):
        graph = DiGraph(edges=[("a", "b")])
        graph.remove_edge("a", "b")
        assert graph.num_edges() == 0
        assert graph.num_vertices() == 2
        with pytest.raises(GraphError):
            graph.remove_edge("a", "b")

    def test_copy_is_independent(self):
        graph = DiGraph(edges=[("a", "b")])
        clone = graph.copy()
        clone.add_edge("b", "c")
        assert graph.num_edges() == 1
        assert clone.num_edges() == 2
        assert graph == DiGraph(edges=[("a", "b")])


class TestQueries:
    def test_labels_and_unlabeled(self):
        graph = DiGraph(edges=[("a", "b", "R"), ("b", "c", "R")])
        assert graph.labels() == {"R"}
        assert graph.is_unlabeled()
        graph.add_edge("c", "d", "S")
        assert not graph.is_unlabeled()

    def test_degrees_and_neighbours(self):
        graph = DiGraph(edges=[("a", "b"), ("a", "c"), ("d", "a")])
        assert graph.out_degree("a") == 2
        assert graph.in_degree("a") == 1
        assert graph.degree("a") == 3
        assert graph.successors("a") == {"b", "c"}
        assert graph.predecessors("a") == {"d"}
        assert graph.undirected_neighbours("a") == {"b", "c", "d"}

    def test_get_edge_unknown_raises(self):
        graph = DiGraph(edges=[("a", "b")])
        with pytest.raises(GraphError):
            graph.get_edge("b", "a")

    def test_edges_are_deterministically_ordered(self):
        graph = DiGraph(edges=[("b", "c"), ("a", "b")])
        assert [e.endpoints for e in graph.edges()] == [("a", "b"), ("b", "c")]


class TestSubgraphs:
    def test_subgraph_with_edges_keeps_all_vertices(self):
        graph = DiGraph(edges=[("a", "b", "R"), ("b", "c", "S")])
        sub = graph.subgraph_with_edges([graph.get_edge("a", "b")])
        assert sub.num_vertices() == 3
        assert sub.num_edges() == 1
        assert sub.has_edge("a", "b", "R")

    def test_subgraph_with_foreign_edge_raises(self):
        graph = DiGraph(edges=[("a", "b", "R")])
        with pytest.raises(GraphError):
            graph.subgraph_with_edges([Edge("x", "y", "R")])

    def test_induced_component(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("x", "y")])
        sub = graph.induced_component({"a", "b"})
        assert sub.num_vertices() == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_vertex("c")


class TestConnectivity:
    def test_weakly_connected_components(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "b"), ("x", "y")])
        graph.add_vertex("lonely")
        components = graph.weakly_connected_components()
        assert sorted(len(c) for c in components) == [1, 2, 3]
        assert not graph.is_weakly_connected()

    def test_connected_component_graphs(self):
        graph = DiGraph(edges=[("a", "b"), ("x", "y")])
        parts = graph.connected_component_graphs()
        assert len(parts) == 2
        assert {p.num_edges() for p in parts} == {1}


class TestStructure:
    def test_directed_cycle_detection(self):
        acyclic = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        assert not acyclic.has_directed_cycle()
        cyclic = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        assert cyclic.has_directed_cycle()
        self_loop = DiGraph(edges=[("a", "a")])
        assert self_loop.has_directed_cycle()

    def test_undirected_cycle_detection(self):
        tree = DiGraph(edges=[("a", "b"), ("c", "b")])
        assert not tree.underlying_has_undirected_cycle()
        antiparallel = DiGraph(edges=[("a", "b"), ("b", "a")])
        assert antiparallel.underlying_has_undirected_cycle()
        square = DiGraph(edges=[("a", "b"), ("b", "c"), ("d", "c"), ("a", "d")])
        assert square.underlying_has_undirected_cycle()

    def test_topological_order(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")
        cyclic = DiGraph(edges=[("a", "b"), ("b", "a")])
        with pytest.raises(GraphError):
            cyclic.topological_order()

    def test_longest_directed_path_length(self):
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        assert graph.longest_directed_path_length() == 3
        single = DiGraph(vertices=["v"])
        assert single.longest_directed_path_length() == 0
        cyclic = DiGraph(edges=[("a", "b"), ("b", "a")])
        with pytest.raises(GraphError):
            cyclic.longest_directed_path_length()

    def test_relabel_vertices(self):
        graph = DiGraph(edges=[("a", "b", "R")])
        renamed = graph.relabel_vertices({"a": "x"})
        assert renamed.has_edge("x", "b", "R")
        with pytest.raises(GraphError):
            graph.relabel_vertices({"a": "b"})


class TestDunder:
    def test_contains_iter_len(self):
        graph = DiGraph(edges=[("a", "b")])
        assert "a" in graph
        assert "z" not in graph
        assert len(graph) == 2
        assert sorted(graph) == ["a", "b"]

    def test_equality(self):
        first = DiGraph(edges=[("a", "b", "R")])
        second = DiGraph(edges=[("a", "b", "R")])
        third = DiGraph(edges=[("a", "b", "S")])
        assert first == second
        assert first != third
        assert first != "not a graph"


class TestEdge:
    def test_edge_reversed(self):
        edge = Edge("a", "b", "R")
        assert edge.reversed() == Edge("b", "a", "R")
        assert edge.endpoints == ("a", "b")

    def test_edges_are_hashable_and_ordered(self):
        edges = {Edge("a", "b", "R"), Edge("a", "b", "R"), Edge("a", "b", "S")}
        assert len(edges) == 2
        assert Edge("a", "a", "A") < Edge("a", "b", "A")
