"""Integration tests: every applicable algorithm must give the same probability.

These tests draw random workloads that sit in the intersection of several
tractable classes (e.g. a labeled one-way-path instance is simultaneously a
1WP, a 2WP, a DWT and a PT) and check that every algorithm of the library —
brute force over worlds, inclusion–exclusion over matches, generic lineage,
the β-acyclic lineage routes, the direct dynamic programs, the X-property
route and the tree-automaton route — agrees exactly.
"""

from __future__ import annotations

import warnings
from fractions import Fraction

import pytest

from repro.core.labeled_2wp import phom_connected_on_2wp
from repro.core.labeled_dwt import phom_labeled_path_on_dwt
from repro.core.solver import PHomSolver
from repro.core.unlabeled_pt import (
    phom_unlabeled_path_on_polytree,
    phom_unlabeled_tree_query_on_polytree,
)
from repro.core.disconnected import phom_unlabeled_on_union_dwt
from repro.exceptions import IntractableFallbackWarning
from repro.graphs.builders import unlabeled_path
from repro.graphs.generators import (
    random_downward_tree,
    random_one_way_path,
    random_two_way_path,
)
from repro.lineage.builders import match_lineage
from repro.probability.brute_force import brute_force_phom, brute_force_phom_over_matches
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestAllMethodsAgreeOnPathInstances:
    def test_labeled_path_query_on_path_instance(self, rng):
        for _ in range(10):
            instance_graph = random_one_way_path(rng.randint(1, 6), ("R", "S"), rng)
            instance = attach_random_probabilities(instance_graph, rng)
            query = random_one_way_path(rng.randint(1, 3), ("R", "S"), rng, prefix="q")
            values = {
                brute_force_phom(query, instance),
                brute_force_phom_over_matches(query, instance),
                match_lineage(query, instance).probability(instance.probabilities()),
                phom_labeled_path_on_dwt(query, instance, "dp"),
                phom_labeled_path_on_dwt(query, instance, "lineage"),
                phom_connected_on_2wp(query, instance, "dp"),
                phom_connected_on_2wp(query, instance, "lineage"),
                PHomSolver().probability(query, instance),
            }
            assert len(values) == 1

    def test_unlabeled_path_query_on_path_instance(self, rng):
        for _ in range(10):
            instance_graph = random_one_way_path(rng.randint(1, 6), ("_",), rng)
            instance = attach_random_probabilities(instance_graph, rng)
            length = rng.randint(1, 3)
            query = unlabeled_path(length, prefix="q")
            values = {
                brute_force_phom(query, instance),
                phom_labeled_path_on_dwt(query, instance, "dp"),
                phom_connected_on_2wp(query, instance, "dp"),
                phom_unlabeled_path_on_polytree(length, instance, "automaton"),
                phom_unlabeled_path_on_polytree(length, instance, "dp"),
                phom_unlabeled_on_union_dwt(query, instance),
                PHomSolver().probability(query, instance),
                PHomSolver(prefer="automaton").probability(query, instance),
            }
            assert len(values) == 1


class TestAllMethodsAgreeOnTreeInstances:
    def test_unlabeled_dwt_instances(self, rng):
        for _ in range(10):
            instance_graph = random_downward_tree(rng.randint(2, 6), ("_",), rng)
            instance = attach_random_probabilities(instance_graph, rng)
            query = random_downward_tree(rng.randint(1, 3), ("_",), rng, prefix="q")
            values = {
                brute_force_phom(query, instance),
                phom_unlabeled_on_union_dwt(query, instance),
                phom_unlabeled_tree_query_on_polytree(query, instance, "automaton"),
                phom_unlabeled_tree_query_on_polytree(query, instance, "dp"),
                PHomSolver().probability(query, instance),
            }
            assert len(values) == 1

    def test_dispatcher_prefer_flags_agree_everywhere(self, rng):
        for _ in range(8):
            instance_graph = random_two_way_path(rng.randint(1, 5), ("R", "S"), rng)
            instance = attach_random_probabilities(instance_graph, rng)
            query = random_one_way_path(rng.randint(1, 3), ("R", "S"), rng, prefix="q")
            values = {
                PHomSolver(prefer=flavour).probability(query, instance)
                for flavour in ("dp", "lineage", "automaton")
            }
            assert len(values) == 1


class TestMonotonicityAcrossInstances:
    def test_adding_probability_mass_never_decreases_the_answer(self, rng):
        """Raising one edge's probability can only increase Pr(G ⇝ H)."""
        for _ in range(10):
            instance_graph = random_downward_tree(rng.randint(2, 6), ("R", "S"), rng)
            instance = attach_random_probabilities(instance_graph, rng, certain_fraction=0.0)
            query = random_one_way_path(rng.randint(1, 3), ("R", "S"), rng, prefix="q")
            before = phom_labeled_path_on_dwt(query, instance, "dp")
            boosted_edge = rng.choice(instance.edges())
            boosted = ProbabilisticGraph(instance.graph, instance.probabilities())
            boosted.set_probability(boosted_edge, 1)
            after = phom_labeled_path_on_dwt(query, boosted, "dp")
            assert after >= before

    def test_answers_stay_in_the_unit_interval(self, rng):
        solver = PHomSolver()
        for _ in range(10):
            instance_graph = random_two_way_path(rng.randint(1, 6), ("R", "S"), rng)
            instance = attach_random_probabilities(instance_graph, rng)
            query = random_downward_tree(rng.randint(2, 4), ("R", "S"), rng, prefix="q")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", IntractableFallbackWarning)
                probability = solver.probability(query, instance)
            assert Fraction(0) <= probability <= Fraction(1)
