"""Unit tests for :mod:`repro.probability.prob_graph`."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import GraphError, ProbabilityError
from repro.graphs.builders import disjoint_union, one_way_path
from repro.graphs.digraph import DiGraph, Edge
from repro.probability.prob_graph import ProbabilisticGraph, as_probability


class TestAsProbability:
    def test_accepts_common_representations(self):
        assert as_probability(1) == Fraction(1)
        assert as_probability(0) == Fraction(0)
        assert as_probability(0.1) == Fraction(1, 10)
        assert as_probability("3/4") == Fraction(3, 4)
        assert as_probability(Fraction(2, 5)) == Fraction(2, 5)

    def test_float_conversion_is_decimal_exact(self):
        # 0.1 must become exactly 1/10, not the nearest binary float.
        assert as_probability(0.1) == Fraction(1, 10)
        assert as_probability(0.3) == Fraction(3, 10)

    def test_rejects_out_of_range_and_garbage(self):
        with pytest.raises(ProbabilityError):
            as_probability(1.5)
        with pytest.raises(ProbabilityError):
            as_probability(-0.1)
        with pytest.raises(ProbabilityError):
            as_probability(True)
        with pytest.raises(ProbabilityError):
            as_probability(object())


class TestConstruction:
    def test_default_probability_is_one(self):
        graph = one_way_path(["R", "S"])
        instance = ProbabilisticGraph(graph)
        assert all(p == 1 for p in instance.probabilities().values())
        assert instance.certain_edges() == instance.edges()

    def test_probabilities_by_pair_and_edge(self):
        graph = one_way_path(["R", "S"])
        edge = graph.get_edge("v0", "v1")
        instance = ProbabilisticGraph(graph, {edge: "1/3", ("v1", "v2"): 0.5})
        assert instance.probability(("v0", "v1")) == Fraction(1, 3)
        assert instance.probability(edge) == Fraction(1, 3)
        assert instance.probability(("v1", "v2")) == Fraction(1, 2)

    def test_unknown_edge_rejected(self):
        graph = one_way_path(["R"])
        with pytest.raises(GraphError):
            ProbabilisticGraph(graph, {("v1", "v0"): 0.5})
        with pytest.raises(GraphError):
            ProbabilisticGraph(graph, {Edge("v0", "v1", "WRONG"): 0.5})

    def test_instance_copies_the_graph(self):
        graph = one_way_path(["R"])
        instance = ProbabilisticGraph(graph)
        graph.add_edge("v1", "v2", "S")
        assert instance.graph.num_edges() == 1

    def test_uniform_probability_constructor(self):
        instance = ProbabilisticGraph.with_uniform_probability(one_way_path(["R", "S"]), "1/2")
        assert set(instance.probabilities().values()) == {Fraction(1, 2)}

    def test_set_probability(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        instance.set_probability(("v0", "v1"), 0.25)
        assert instance.probability(("v0", "v1")) == Fraction(1, 4)


class TestEdgePartitions:
    def test_edge_partitions(self):
        graph = one_way_path(["R", "S", "T"])
        instance = ProbabilisticGraph(
            graph, {("v0", "v1"): 0, ("v1", "v2"): "1/2", ("v2", "v3"): 1}
        )
        assert [e.endpoints for e in instance.impossible_edges()] == [("v0", "v1")]
        assert [e.endpoints for e in instance.uncertain_edges()] == [("v1", "v2")]
        assert [e.endpoints for e in instance.certain_edges()] == [("v2", "v3")]
        assert instance.num_possible_worlds() == 8
        assert instance.num_nonzero_worlds() == 2


class TestPossibleWorlds:
    def test_world_probabilities_sum_to_one(self):
        graph = one_way_path(["R", "S"])
        instance = ProbabilisticGraph(graph, {("v0", "v1"): "1/3", ("v1", "v2"): "1/4"})
        worlds = list(instance.possible_worlds())
        assert len(worlds) == 4
        assert sum(w.probability for w in worlds) == 1

    def test_example21_nonzero_world_count(self):
        """Example 2.1: 2^6 possible worlds, half of them (one certain edge) have non-zero probability."""
        graph = DiGraph(
            edges=[
                ("a", "b", "R"), ("b", "c", "R"), ("c", "d", "R"),
                ("d", "a", "R"), ("a", "c", "S"), ("b", "d", "R"),
            ]
        )
        instance = ProbabilisticGraph(
            graph,
            {
                ("a", "b"): 1, ("b", "c"): 0.1, ("c", "d"): 0.8,
                ("d", "a"): 0.1, ("a", "c"): 0.05, ("b", "d"): 0.7,
            },
        )
        assert instance.num_possible_worlds() == 64
        assert instance.num_nonzero_worlds() == 32
        worlds = list(instance.possible_worlds())
        assert len(worlds) == 32
        assert sum(w.probability for w in worlds) == 1
        # The world keeping all R edges and dropping the S edge (Example 2.1).
        target = Fraction(1) * Fraction(1, 10) * Fraction(4, 5) * Fraction(1, 10) * Fraction(7, 10) * (
            1 - Fraction(1, 20)
        )
        assert any(
            w.probability == target and len(w.kept_edges) == 5 and all(e.label == "R" for e in w.kept_edges)
            for w in worlds
        )

    def test_certain_edges_always_kept(self):
        graph = one_way_path(["R", "S"])
        instance = ProbabilisticGraph(graph, {("v0", "v1"): 1, ("v1", "v2"): "1/2"})
        for world in instance.possible_worlds():
            assert graph.get_edge("v0", "v1") in world.kept_edges

    def test_world_probability_of_specific_subset(self):
        graph = one_way_path(["R", "S"])
        instance = ProbabilisticGraph(graph, {("v0", "v1"): "1/3", ("v1", "v2"): "1/4"})
        kept = [graph.get_edge("v0", "v1")]
        assert instance.world_probability(kept) == Fraction(1, 3) * Fraction(3, 4)
        with pytest.raises(GraphError):
            instance.world_probability([Edge("x", "y")])

    def test_worlds_keep_all_vertices(self):
        graph = one_way_path(["R"])
        instance = ProbabilisticGraph(graph, {("v0", "v1"): "1/2"})
        for world in instance.possible_worlds():
            assert world.graph.num_vertices() == 2


class TestComponents:
    def test_connected_components_preserve_probabilities(self):
        union = disjoint_union([one_way_path(["R"]), one_way_path(["S", "T"])])
        instance = ProbabilisticGraph.with_uniform_probability(union, "1/2")
        components = instance.connected_components()
        assert sorted(c.graph.num_edges() for c in components) == [1, 2]
        for component in components:
            assert set(component.probabilities().values()) == {Fraction(1, 2)}

    def test_restrict_to_component_unknown_vertex(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        with pytest.raises(GraphError):
            instance.restrict_to_component({"nope"})
