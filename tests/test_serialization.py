"""Unit tests for graph / probabilistic-graph (de)serialization."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import GraphError
from repro.graphs.builders import one_way_path
from repro.graphs.generators import random_polytree
from repro.graphs.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    load_instance,
    load_query,
    probabilistic_graph_from_dict,
    probabilistic_graph_from_json,
    probabilistic_graph_to_dict,
    probabilistic_graph_to_json,
    save_graph,
)
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestGraphRoundTrip:
    def test_dict_round_trip(self):
        graph = one_way_path(["R", "S"])
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt == graph

    def test_json_round_trip(self, rng):
        graph = random_polytree(8, ("R", "S"), rng)
        rebuilt = graph_from_json(graph_to_json(graph))
        assert rebuilt == graph

    def test_isolated_vertices_survive(self):
        graph = one_way_path(["R"])
        graph.add_vertex("lonely")
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.has_vertex("lonely")
        assert rebuilt.num_vertices() == 3

    def test_two_field_edges_default_to_unlabeled(self):
        rebuilt = graph_from_dict({"edges": [["a", "b"]]})
        assert rebuilt.has_edge("a", "b")
        assert rebuilt.is_unlabeled()

    def test_malformed_input_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"vertices": ["a"]})
        with pytest.raises(GraphError):
            graph_from_dict({"edges": [["a", "b", "R", "extra"]]})


class TestProbabilisticGraphRoundTrip:
    def test_dict_round_trip_preserves_exact_probabilities(self):
        graph = one_way_path(["R", "S"])
        instance = ProbabilisticGraph(graph, {("v0", "v1"): "1/3", ("v1", "v2"): "0.25"})
        rebuilt = probabilistic_graph_from_dict(probabilistic_graph_to_dict(instance))
        assert rebuilt.graph == instance.graph
        assert rebuilt.probability(("v0", "v1")) == Fraction(1, 3)
        assert rebuilt.probability(("v1", "v2")) == Fraction(1, 4)

    def test_json_round_trip_random_instance(self, rng):
        instance = attach_random_probabilities(random_polytree(7, ("R", "S"), rng), rng)
        rebuilt = probabilistic_graph_from_json(probabilistic_graph_to_json(instance))
        assert rebuilt.graph == instance.graph
        assert set(rebuilt.probabilities().values()) == set(instance.probabilities().values())

    def test_missing_probabilities_default_to_one(self):
        data = {"edges": [["a", "b", "R"]], "probabilities": []}
        rebuilt = probabilistic_graph_from_dict(data)
        assert rebuilt.probability(("a", "b")) == 1

    def test_malformed_probability_entry_rejected(self):
        with pytest.raises(GraphError):
            probabilistic_graph_from_dict({"edges": [["a", "b", "R"]], "probabilities": [["a", "b"]]})


class TestFiles:
    def test_save_and_load_query_and_instance(self, tmp_path, rng):
        query = one_way_path(["R", "S"], prefix="q")
        instance = attach_random_probabilities(random_polytree(6, ("R", "S"), rng), rng)
        query_path = tmp_path / "query.json"
        instance_path = tmp_path / "instance.json"
        save_graph(query, str(query_path))
        save_graph(instance, str(instance_path))
        assert load_query(str(query_path)) == query
        loaded = load_instance(str(instance_path))
        assert loaded.graph == instance.graph
        assert loaded.probabilities() == {
            loaded.graph.get_edge(str(e.source), str(e.target)): p
            for e, p in instance.probabilities().items()
        }
