"""Unit tests for the dispatching :class:`PHomSolver` and ``phom_probability``."""

from __future__ import annotations

import warnings
from fractions import Fraction

import pytest

from repro.exceptions import ClassConstraintError, IntractableFallbackWarning, ReproError
from repro.core.solver import PHomSolver, phom_probability
from repro.graphs.builders import (
    disjoint_union,
    downward_tree,
    one_way_path,
    star_tree,
    two_way_path,
    unlabeled_path,
)
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities, workload_for_cell


class TestTrivialCases:
    def test_edgeless_query(self):
        instance = ProbabilisticGraph(one_way_path(["R"]), {("v0", "v1"): "1/7"})
        result = PHomSolver().solve(DiGraph(vertices=["q"]), instance)
        assert result.probability == 1
        assert result.method == "trivial-edgeless-query"

    def test_label_mismatch(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        result = PHomSolver().solve(one_way_path(["T"], prefix="q"), instance)
        assert result.probability == 0
        assert result.method == "trivial-label-mismatch"

    def test_empty_inputs_rejected(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        with pytest.raises(ReproError):
            PHomSolver().solve(DiGraph(), instance)
        with pytest.raises(ReproError):
            PHomSolver().solve(one_way_path(["R"]), ProbabilisticGraph(DiGraph()))


class TestDispatchRouting:
    def test_connected_query_on_2wp_uses_prop_411(self):
        instance = ProbabilisticGraph.with_uniform_probability(
            two_way_path([("R", "forward"), ("S", "backward")]), "1/2"
        )
        result = PHomSolver().solve(one_way_path(["R"], prefix="q"), instance)
        assert result.method == "connected-2wp"
        assert "4.11" in result.proposition

    def test_labeled_path_on_dwt_uses_prop_410(self):
        # The star instance is a DWT but not a 2WP, so Proposition 4.10 applies.
        instance = ProbabilisticGraph.with_uniform_probability(star_tree(3, label="R"), "1/2")
        result = PHomSolver().solve(one_way_path(["R"], prefix="q"), instance)
        assert result.method == "labeled-dwt"
        assert "4.10" in result.proposition

    def test_unlabeled_query_on_dwt_uses_prop_36(self):
        instance = ProbabilisticGraph.with_uniform_probability(star_tree(3), "1/2")
        query = disjoint_union([unlabeled_path(1), unlabeled_path(1)], prefix="q")
        # As written (minimization off) the union query takes Prop 3.6.
        unminimized = PHomSolver(minimize_queries=False).solve(query, instance)
        assert unminimized.method == "graded-collapse"
        assert "3.6" in unminimized.proposition
        # The default solver folds the two identical components into one
        # edge, a 1WP, which the DWT path route answers directly.
        result = PHomSolver().solve(query, instance)
        assert result.method == "labeled-dwt"
        assert "minimized" in result.notes
        assert result.probability == unminimized.probability

    def test_graded_collapse_route_still_reached_on_core_queries(self):
        # A query that *is* its own core (components of different lengths
        # cannot fold into each other upward) keeps the Prop 3.6 route.
        instance = ProbabilisticGraph.with_uniform_probability(star_tree(3), "1/2")
        query = disjoint_union([unlabeled_path(2), unlabeled_path(2)], prefix="q")
        result = PHomSolver(minimize_queries=False).solve(query, instance)
        assert result.method == "graded-collapse"
        assert "3.6" in result.proposition

    def test_unlabeled_dwt_query_on_polytree_uses_prop_55(self):
        polytree = DiGraph(edges=[("a", "b"), ("c", "b"), ("b", "d")])
        instance = ProbabilisticGraph.with_uniform_probability(polytree, "1/2")
        result = PHomSolver().solve(unlabeled_path(2), instance)
        assert result.method.startswith("polytree-")
        assert "5.4" in result.proposition

    def test_hard_cell_falls_back_to_brute_force_with_warning(self):
        polytree = DiGraph(edges=[("a", "b", "R"), ("c", "b", "S"), ("b", "d", "R")])
        instance = ProbabilisticGraph.with_uniform_probability(polytree, "1/2")
        query = one_way_path(["R", "R"], prefix="q")  # labeled 1WP on PT: #P-hard (Prop 4.1)
        with pytest.warns(IntractableFallbackWarning):
            result = PHomSolver().solve(query, instance)
        assert result.method == "brute-force-worlds"
        assert result.probability == brute_force_phom(query, instance)

    def test_hard_cell_raises_when_brute_force_disallowed(self):
        polytree = DiGraph(edges=[("a", "b", "R"), ("c", "b", "S"), ("b", "d", "R")])
        instance = ProbabilisticGraph.with_uniform_probability(polytree, "1/2")
        query = one_way_path(["R", "R"], prefix="q")
        with pytest.raises(ClassConstraintError):
            PHomSolver(allow_brute_force=False).solve(query, instance)

    def test_prefer_flag_switches_methods(self):
        # A genuine polytree (not a DWT, not a 2WP), so only the Prop 5.4 route applies.
        polytree = DiGraph(edges=[("a", "b"), ("c", "b"), ("b", "d")])
        instance = ProbabilisticGraph.with_uniform_probability(polytree, "1/2")
        dp_result = PHomSolver(prefer="dp").solve(unlabeled_path(1), instance)
        automaton_result = PHomSolver(prefer="automaton").solve(unlabeled_path(1), instance)
        assert dp_result.probability == automaton_result.probability
        assert dp_result.method == "polytree-dp"
        assert automaton_result.method == "polytree-automaton"

    def test_invalid_prefer_rejected(self):
        with pytest.raises(ValueError):
            PHomSolver(prefer="psychic")

    def test_result_metadata(self):
        instance = ProbabilisticGraph.with_uniform_probability(one_way_path(["R", "S"]), "1/2")
        result = PHomSolver().solve(one_way_path(["R"], prefix="q"), instance)
        assert result.query_class is GraphClass.ONE_WAY_PATH
        assert result.instance_class is GraphClass.ONE_WAY_PATH
        assert result.labeled is True
        assert float(result) == float(result.probability)


class TestExplicitMethods:
    def test_available_methods_listed(self):
        methods = PHomSolver.available_methods()
        assert "brute-force-worlds" in methods
        assert "connected-2wp-dp" in methods
        assert "polytree-automaton" in methods

    def test_unknown_method_rejected(self):
        instance = ProbabilisticGraph(one_way_path(["R"]))
        with pytest.raises(ValueError):
            PHomSolver().solve(one_way_path(["R"], prefix="q"), instance, method="alchemy")

    def test_explicit_methods_agree_on_compatible_input(self):
        # A labeled 1WP instance is simultaneously a DWT and a 2WP, so many
        # methods apply and they must all agree.
        instance = ProbabilisticGraph(
            one_way_path(["R", "S", "R"]),
            {("v0", "v1"): "1/2", ("v1", "v2"): "2/3", ("v2", "v3"): "1/5"},
        )
        query = one_way_path(["R", "S"], prefix="q")
        solver = PHomSolver()
        reference = brute_force_phom(query, instance)
        for method in [
            "brute-force-worlds",
            "brute-force-matches",
            "generic-lineage",
            "labeled-dwt-dp",
            "labeled-dwt-lineage",
            "connected-2wp-dp",
            "connected-2wp-lineage",
        ]:
            assert solver.solve(query, instance, method=method).probability == reference

    def test_explicit_method_rejects_wrong_class(self):
        instance = ProbabilisticGraph.with_uniform_probability(star_tree(3, label="R"), "1/2")
        query = one_way_path(["R"], prefix="q")
        with pytest.raises(ClassConstraintError):
            PHomSolver().solve(query, instance, method="connected-2wp-dp")


class TestAutoAgainstBruteForce:
    @pytest.mark.parametrize(
        "query_class,instance_class,labeled",
        [
            (GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, True),
            (GraphClass.CONNECTED, GraphClass.TWO_WAY_PATH, True),
            (GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False),
            (GraphClass.UNION_DOWNWARD_TREE, GraphClass.POLYTREE, False),
            (GraphClass.ALL, GraphClass.DOWNWARD_TREE, False),
            (GraphClass.UNION_ONE_WAY_PATH, GraphClass.ONE_WAY_PATH, True),
            (GraphClass.TWO_WAY_PATH, GraphClass.POLYTREE, False),
            (GraphClass.ONE_WAY_PATH, GraphClass.CONNECTED, False),
        ],
    )
    def test_dispatcher_matches_oracle(self, query_class, instance_class, labeled, rng):
        solver = PHomSolver()
        for _ in range(4):
            workload = workload_for_cell(
                query_class, instance_class, labeled, rng.randint(1, 3), rng.randint(2, 5), rng
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", IntractableFallbackWarning)
                result = solver.solve(workload.query, workload.instance)
            assert result.probability == brute_force_phom(workload.query, workload.instance)

    def test_probability_convenience_function(self, figure1_instance, example22_query):
        assert phom_probability(example22_query, figure1_instance) == Fraction(287, 500)

    def test_probabilities_are_in_unit_interval(self, rng):
        solver = PHomSolver()
        for _ in range(10):
            workload = workload_for_cell(
                GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, False, rng.randint(1, 3), rng.randint(2, 6), rng
            )
            probability = solver.probability(workload.query, workload.instance)
            assert 0 <= probability <= 1
