"""Tests for the top-level package namespace and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    AutomatonError,
    ClassConstraintError,
    GraphError,
    IntractableFallbackWarning,
    LineageError,
    ProbabilityError,
    ReproError,
)


class TestPublicNamespace:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_example(self):
        H = repro.DiGraph()
        H.add_edge("a", "b", "R")
        H.add_edge("d", "b", "R")
        H.add_edge("b", "c", "S")
        instance = repro.ProbabilisticGraph(
            H, {("a", "b"): "0.1", ("d", "b"): "0.8", ("b", "c"): "0.7"}
        )
        query = repro.one_way_path(["R", "S"])
        assert float(repro.phom_probability(query, instance)) == pytest.approx(0.574)

    def test_tables_accessible_from_top_level(self):
        assert len(repro.table1()) == 25
        assert repro.Complexity.PTIME.value == "PTIME"
        cell = repro.classify_cell(
            repro.GraphClass.ONE_WAY_PATH,
            repro.GraphClass.DOWNWARD_TREE,
            repro.classification.tables.Setting.LABELED,
        )
        assert cell.complexity is repro.Complexity.PTIME


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [GraphError, ClassConstraintError, ProbabilityError, LineageError, AutomatonError],
    )
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)
        assert issubclass(exception_type, Exception)

    def test_fallback_warning_is_a_warning(self):
        assert issubclass(IntractableFallbackWarning, UserWarning)

    def test_catching_the_base_class(self):
        graph = repro.DiGraph()
        graph.add_edge("a", "b")
        with pytest.raises(ReproError):
            graph.add_edge("a", "b")
