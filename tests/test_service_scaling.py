"""Regression tests for balanced sharding, work stealing and lean dispatch.

The bugfix tier behind these tests: the coordinator must spread K
registered instances over ``min(K, num_workers)`` workers (the old
``crc32 % num_workers`` hash could park every instance on one shard and
leave whole workers idle), stealing must never change an answer (exact
results bit-identical across worker counts, pinned-seed estimates
identical with stealing on or off), a SIGKILLed thief must recover with
zero lost requests, and the batch statistics must not be skewed by
entries that fail normalization.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.solver import PHomSolver
from repro.graphs.classes import GraphClass
from repro.service import Fault, FaultPlan, QueryService, ServiceRequest
from repro.service.worker import WorkerState, handle_message
from repro.workloads.generators import (
    attach_random_probabilities,
    intractable_workload,
    make_instance,
    query_traffic_trace,
)


def build_instance(seed: int):
    graph = make_instance(GraphClass.UNION_DOWNWARD_TREE, True, 16, seed)
    return attach_random_probabilities(graph, seed)


def trace_queries(seed: int, count: int):
    trace = query_traffic_trace(
        count, 5, skew=1.2, query_class=GraphClass.ONE_WAY_PATH, rng=seed
    )
    return trace.queries()


def skewed_batch(ids, queries):
    """An all-cold batch that concentrates work on the first instance.

    Every query targets ``ids[0]``, so its owning shard is the hot one
    while the other owners see a single request each — exactly the shape
    whose cold-count imbalance trips the coordinator's steal trigger.
    """
    requests = [ServiceRequest(query, ids[0]) for query in queries]
    requests += [ServiceRequest(queries[0], instance_id) for instance_id in ids[1:]]
    return requests


class TestBalancedSharding:
    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_four_instances_leave_no_worker_idle(self, num_workers):
        instances = [build_instance(seed) for seed in (11, 12, 13, 14)]
        with QueryService(num_workers=num_workers) as service:
            ids = [service.register_instance(instance) for instance in instances]
            owners = [service._worker_for(instance_id) for instance_id in ids]
            # Least-loaded assignment: 4 instances cover min(4, W) workers,
            # and no worker owns more than ceil(4 / W).
            assert set(owners) == set(range(num_workers))
            assert max(owners.count(worker) for worker in set(owners)) <= -(
                -len(ids) // num_workers
            )
            # The per-worker stats rows are keyed by worker index and show
            # each shard's registered instances — none may be empty.
            stats = service.stats()
            assert [row["worker"] for row in stats.workers] == list(
                range(num_workers)
            )
            assert all(row["instances"] for row in stats.workers)

    def test_assignment_is_stable_across_lookups(self):
        with QueryService(num_workers=2) as service:
            ids = [
                service.register_instance(build_instance(seed))
                for seed in (21, 22, 23)
            ]
            first = {instance_id: service._worker_for(instance_id) for instance_id in ids}
            again = {instance_id: service._worker_for(instance_id) for instance_id in ids}
            assert first == again


class TestStealingEquivalence:
    def test_exact_answers_bit_identical_across_worker_counts(self):
        queries = trace_queries(61, 10)
        solver = PHomSolver()
        reference = None
        for num_workers in (1, 2, 4):
            instances = [build_instance(seed) for seed in (31, 32, 33)]
            with QueryService(num_workers=num_workers) as service:
                ids = [service.register_instance(inst) for inst in instances]
                results = service.submit_many(skewed_batch(ids, queries))
                stats = service.stats()
            answers = [str(result.probability) for result in results]
            if num_workers > 1:
                # The skewed batch must actually exercise the steal path,
                # otherwise this test proves nothing about it.
                assert stats.steals >= 1
                assert stats.replicas_shipped >= 1
                assert any(result.stolen for result in results)
            if reference is None:
                reference = answers
                expected = [
                    str(solver.solve(queries[i], instances[0]).probability)
                    for i in range(len(queries))
                ]
                assert answers[: len(queries)] == expected
            else:
                assert answers == reference

    def test_pinned_seed_estimates_unchanged_by_steal_routing(self):
        workload = intractable_workload(8, rng=45)
        estimates = {}
        for stealing in (True, False):
            with QueryService(num_workers=2, work_stealing=stealing) as service:
                instance = pickle.loads(pickle.dumps(workload.instance))
                instance_id = service.register_instance(instance)
                # Distinct pinned seeds make distinct coalesce keys: all
                # cold, all on one shard, so stealing (when enabled) must
                # move some of them — without changing a single estimate.
                requests = [
                    ServiceRequest(
                        workload.query,
                        instance_id,
                        precision="approx",
                        epsilon=0.3,
                        delta=0.2,
                        seed=seed,
                    )
                    for seed in range(5)
                ]
                results = service.submit_many(requests)
                stats = service.stats()
            assert stats.steals >= (1 if stealing else 0)
            if not stealing:
                assert stats.steals == 0
            estimates[stealing] = [float(result) for result in results]
        assert estimates[True] == estimates[False]

    def test_repeated_batches_hit_the_frame_cache(self):
        instances = [build_instance(seed) for seed in (71, 72)]
        with QueryService(num_workers=2) as service:
            ids = [service.register_instance(inst) for inst in instances]
            first = service.submit_many(skewed_batch(ids, trace_queries(73, 6)))
            # Rebuild the queries from the same seed: equal coalesce keys,
            # different objects — the cached frames answer, and each result
            # is requalified against the spelling actually submitted.
            second = service.submit_many(skewed_batch(ids, trace_queries(73, 6)))
            assert len(service._frame_cache) > 0
        assert [str(r.probability) for r in first] == [
            str(r.probability) for r in second
        ]
        assert not any(r.error for r in first) and not any(r.error for r in second)


class TestThiefRecovery:
    def test_killed_thief_loses_no_requests(self):
        queries = trace_queries(81, 10)
        instances = [build_instance(seed) for seed in (51, 52)]
        solver = PHomSolver()
        expected = [str(solver.solve(q, instances[0]).probability) for q in queries]
        # Worker 1 is the idle shard of the skewed batch, hence the thief;
        # the kill fires on its second message — right when the stolen
        # replica and work arrive — so supervision must restart it, replay
        # its journal, and re-ship the stolen shard before re-dispatching.
        plan = FaultPlan(
            faults=(Fault(kind="kill", worker=1, after_messages=1),), seed=7
        )
        with QueryService(
            num_workers=2, fault_plan=plan, backoff_base=0.01
        ) as service:
            ids = [service.register_instance(inst) for inst in instances]
            results = service.submit_many(skewed_batch(ids, queries))
            stats = service.stats()
        assert not any(result.error for result in results)
        answers = [str(result.probability) for result in results[: len(queries)]]
        assert answers == expected
        assert stats.steals >= 1
        assert stats.restarts >= 1


class TestBatchStatsHygiene:
    def test_rejected_entries_do_not_skew_stats(self):
        with QueryService(num_workers=0) as service:
            instance_id = service.register_instance(build_instance(91))
            query = trace_queries(91, 1)[0]
            batch = [
                ServiceRequest(query, instance_id),
                ServiceRequest(query, instance_id),  # coalesces with the first
                "not a request",
            ]
            results = service.submit_many(batch, on_error="return")
            stats = service.stats()
        assert results[2].error and results[2].error_class == "ServiceError"
        assert str(results[0].probability) == str(results[1].probability)
        # The garbage entry never reached a worker: it counts as rejected,
        # not as a request, so the dedupe rate stays 1 hit out of 2.
        assert stats.requests == 2
        assert stats.rejected == 1
        assert stats.coalesced == 1
        assert stats.dedupe_hit_rate() == pytest.approx(0.5)


class TestSnapshotShipping:
    def test_worker_register_unpickles_shipped_bytes(self):
        state = WorkerState(0, PHomSolver(), "exact")
        instance = build_instance(95)
        blob = pickle.dumps(instance, protocol=pickle.HIGHEST_PROTOCOL)
        status, edge_count = handle_message(state, "register", ("iid", blob))
        assert status == "ok"
        assert edge_count == instance.graph.num_edges()
        installed = state.instances["iid"]
        # The worker holds its own unpickled copy, not the coordinator's
        # object — mutating one cannot leak into the other.
        assert installed is not instance
        edge = instance.uncertain_edges()[0]
        assert installed.probability(edge) == instance.probability(edge)

    def test_worker_register_applies_journal_update_tail(self):
        state = WorkerState(0, PHomSolver(), "exact")
        instance = build_instance(96)
        edge = instance.uncertain_edges()[0]
        endpoints = (edge.source, edge.target)
        blob = pickle.dumps(instance, protocol=pickle.HIGHEST_PROTOCOL)
        status, _ = handle_message(
            state, "register", ("iid", blob, ((endpoints, "1/3"),))
        )
        assert status == "ok"
        installed = state.instances["iid"]
        assert str(installed.probability(edge)) == "1/3"
        # The snapshot itself was shipped unmodified.
        assert instance.probability(edge) != installed.probability(edge)
