"""Unit tests for graded DAGs and level mappings (Definition 3.5)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.builders import disjoint_union, downward_tree, star_tree, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.grading import difference_of_levels, is_graded, level_mapping


def _check_level_mapping(graph, mapping):
    for edge in graph.edges():
        assert mapping.levels[edge.target] == mapping.levels[edge.source] - 1


class TestGradedness:
    def test_path_is_graded(self):
        path = unlabeled_path(4)
        mapping = level_mapping(path)
        assert mapping is not None
        _check_level_mapping(path, mapping)
        assert mapping.difference == 4

    def test_zigzag_dag_levels(self):
        graph = DiGraph(
            edges=[("a", "b"), ("b", "c"), ("d", "c"), ("d", "e"), ("f", "e")]
        )
        mapping = level_mapping(graph)
        assert mapping is not None
        _check_level_mapping(graph, mapping)
        assert mapping.difference == 2

    def test_figure6_remark_difference_can_exceed_longest_path(self):
        # The paper notes (after Definition 3.5 / Figure 6) that the
        # difference of levels is *not* the length of the longest directed
        # path: here the difference is 3 while the longest path has 2 edges.
        graph = DiGraph(
            edges=[("a3", "a2"), ("a2", "a1"), ("b2", "a1"), ("b2", "b1"), ("b1", "b0")]
        )
        mapping = level_mapping(graph)
        assert mapping is not None
        _check_level_mapping(graph, mapping)
        assert graph.is_weakly_connected()
        assert mapping.difference == 3
        assert graph.longest_directed_path_length() == 2

    def test_directed_cycle_is_not_graded(self):
        cycle = DiGraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
        assert not is_graded(cycle)
        assert level_mapping(cycle) is None

    def test_self_loop_is_not_graded(self):
        assert not is_graded(DiGraph(edges=[("a", "a")]))

    def test_jumping_edge_is_not_graded(self):
        # Two directed paths of different lengths between the same endpoints.
        graph = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        assert not is_graded(graph)

    def test_diamond_is_graded(self):
        diamond = DiGraph(edges=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        mapping = level_mapping(diamond)
        assert mapping is not None
        assert mapping.difference == 2

    def test_star_is_graded(self):
        assert difference_of_levels(star_tree(4)) == 1

    def test_isolated_vertices(self):
        graph = DiGraph(vertices=["a", "b"])
        mapping = level_mapping(graph)
        assert mapping is not None
        assert mapping.difference == 0


class TestDifferenceOfLevels:
    def test_difference_is_max_over_components(self):
        union = disjoint_union([unlabeled_path(1), unlabeled_path(3), star_tree(2)])
        assert difference_of_levels(union) == 3

    def test_levels_are_shifted_per_component(self):
        union = disjoint_union([unlabeled_path(2), unlabeled_path(1)])
        mapping = level_mapping(union)
        assert mapping is not None
        for component in union.weakly_connected_components():
            assert min(mapping.levels[v] for v in component) == 0

    def test_difference_of_levels_on_ungraded_raises(self):
        cycle = DiGraph(edges=[("a", "b"), ("b", "a")])
        with pytest.raises(GraphError):
            difference_of_levels(cycle)

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            level_mapping(DiGraph())

    def test_downward_tree_difference_is_height(self):
        tree = downward_tree({"b": "a", "c": "b", "d": "b", "e": "a"})
        assert difference_of_levels(tree) == tree.longest_directed_path_length() == 2
