"""Unit tests for provenance (d-DNNF) circuits of tree automata runs."""

from __future__ import annotations

from fractions import Fraction
from itertools import product

from repro.automata.binary_tree import encode_polytree
from repro.automata.path_automaton import build_longest_path_automaton
from repro.automata.provenance import provenance_circuit
from repro.graphs.builders import unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_polytree
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities


class TestCircuitSemantics:
    def test_circuit_agrees_with_automaton_on_every_annotation(self, rng):
        for _ in range(5):
            graph = random_polytree(rng.randint(2, 5), ("_",), rng)
            instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
            tree = encode_polytree(instance)
            for m in (1, 2, 3):
                automaton = build_longest_path_automaton(m)
                circuit = provenance_circuit(automaton, tree)
                edges = instance.edges()
                for bits in product((False, True), repeat=len(edges)):
                    annotation = dict(zip(edges, bits))
                    assert circuit.evaluate(annotation) == automaton.accepts(tree, annotation)

    def test_circuit_is_a_ddnnf(self, rng):
        graph = random_polytree(6, ("_",), rng)
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/3")
        tree = encode_polytree(instance)
        circuit = provenance_circuit(build_longest_path_automaton(2), tree)
        assert circuit.is_decomposable()
        assert circuit.is_deterministic(max_support=graph.num_edges())

    def test_unsatisfiable_query_gives_false_circuit(self):
        # A path query longer than the instance can never hold.
        instance = ProbabilisticGraph(unlabeled_path(2))
        tree = encode_polytree(instance)
        circuit = provenance_circuit(build_longest_path_automaton(5), tree)
        assert circuit.probability(instance.probabilities()) == 0

    def test_certain_instance_gives_probability_one(self):
        instance = ProbabilisticGraph(unlabeled_path(3))
        tree = encode_polytree(instance)
        circuit = provenance_circuit(build_longest_path_automaton(3), tree)
        assert circuit.probability(instance.probabilities()) == 1

    def test_probability_matches_brute_force(self, rng):
        for _ in range(10):
            graph = random_polytree(rng.randint(2, 6), ("_",), rng)
            instance = attach_random_probabilities(graph, rng)
            tree = encode_polytree(instance)
            for m in (1, 2, 3):
                circuit = provenance_circuit(build_longest_path_automaton(m), tree)
                assert circuit.probability(instance.probabilities()) == brute_force_phom(
                    unlabeled_path(m), instance
                )

    def test_circuit_size_grows_linearly_with_instance(self):
        automaton = build_longest_path_automaton(2)
        sizes = []
        for n in (4, 8, 16):
            instance = ProbabilisticGraph.with_uniform_probability(unlabeled_path(n), "1/2")
            circuit = provenance_circuit(automaton, encode_polytree(instance))
            sizes.append(circuit.num_gates() / n)
        # Gates per instance edge stay bounded (no super-linear blow-up).
        assert max(sizes) <= 3 * min(sizes)

    def test_probability_independent_of_rooting(self):
        graph = DiGraph(edges=[("a", "b"), ("c", "b"), ("b", "d"), ("d", "e")])
        instance = ProbabilisticGraph.with_uniform_probability(graph, "1/2")
        automaton = build_longest_path_automaton(2)
        values = set()
        for root in graph.vertices:
            circuit = provenance_circuit(automaton, encode_polytree(instance, root=root))
            values.add(circuit.probability(instance.probabilities()))
        assert len(values) == 1
