"""Shared machinery for regenerating the classification tables (Experiments E2-E4).

A *table regeneration* does, for every cell of the table:

1. derive the cell's complexity from the paper's border cases
   (:func:`repro.classification.tables.classify_cell`);
2. draw a small random workload of that cell (query and instance from the
   row/column classes);
3. run the dispatching solver and an independent brute-force oracle on it and
   check that they agree exactly;
4. check that PTIME cells were answered by a polynomial algorithm (never by
   the brute-force fallback) and record which proposition was used.

The returned grid is what the benchmark files print and what
``EXPERIMENTS.md`` records against the paper's tables.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.classification.tables import Complexity, Setting, classify_cell, table_columns, table_rows
from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning
from repro.graphs.classes import GraphClass
from repro.probability.brute_force import brute_force_phom
from repro.workloads import workload_for_cell

from conftest import BRUTE_FORCE_INSTANCE_SIZE, bench_rng


@dataclass(frozen=True)
class CellObservation:
    """What happened when one table cell was exercised on a sample workload."""

    query_class: GraphClass
    instance_class: GraphClass
    complexity: Complexity
    proposition: str
    method_used: str
    agrees_with_brute_force: bool


def regenerate_table(table_number: int, query_size: int = 2, instance_size: int = BRUTE_FORCE_INSTANCE_SIZE) -> List[CellObservation]:
    """Exercise every cell of a table on a small workload and report what happened."""
    setting = Setting.LABELED if table_number == 2 else Setting.UNLABELED
    labeled = setting is Setting.LABELED
    solver = PHomSolver()
    observations: List[CellObservation] = []
    for row_index, query_class in enumerate(table_rows(table_number)):
        for column_index, instance_class in enumerate(table_columns()):
            cell = classify_cell(query_class, instance_class, setting)
            workload = workload_for_cell(
                query_class,
                instance_class,
                labeled,
                query_size,
                instance_size,
                rng=bench_rng(100 * table_number + 10 * row_index + column_index),
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", IntractableFallbackWarning)
                result = solver.solve(workload.query, workload.instance)
            reference = brute_force_phom(workload.query, workload.instance)
            observations.append(
                CellObservation(
                    query_class=query_class,
                    instance_class=instance_class,
                    complexity=cell.complexity,
                    proposition=cell.proposition,
                    method_used=result.method,
                    agrees_with_brute_force=result.probability == reference,
                )
            )
    return observations


def check_observations(observations: List[CellObservation]) -> None:
    """Assert the invariants every regenerated table must satisfy."""
    for observation in observations:
        assert observation.agrees_with_brute_force, observation
        if observation.complexity is Complexity.PTIME:
            assert not observation.method_used.startswith("brute-force"), observation


def format_observations(observations: List[CellObservation]) -> str:
    """A compact text rendering of the regenerated table (printed by the benches)."""
    lines = []
    for observation in observations:
        lines.append(
            f"{str(observation.query_class):>5} on {str(observation.instance_class):>9}: "
            f"{observation.complexity.value:>8}  via {observation.method_used:<22} "
            f"({observation.proposition})"
        )
    return "\n".join(lines)
