"""Experiment E16 — Lemma 3.7: disconnected instances reduce to their components.

Times the complement-product composition on instances with a growing number
of components and checks it against solving the disjoint union directly with
the dispatcher and (on small inputs) against brute force.
"""

from __future__ import annotations

import pytest

from repro.core.disconnected import phom_on_disconnected_instance
from repro.core.labeled_dwt import phom_labeled_path_on_dwt
from repro.core.solver import PHomSolver
from repro.graphs.builders import disjoint_union
from repro.graphs.generators import random_downward_tree, random_one_way_path
from repro.probability.brute_force import brute_force_phom
from repro.workloads import attach_random_probabilities

from conftest import bench_rng


def _workload(num_components: int, component_size: int, seed: int = 37):
    rng = bench_rng(seed)
    components = [
        random_downward_tree(component_size, ("R", "S"), rng) for _ in range(num_components)
    ]
    instance = attach_random_probabilities(disjoint_union(components), rng)
    query = random_one_way_path(3, ("R", "S"), rng, prefix="q")
    return query, instance


@pytest.mark.parametrize("num_components", [2, 8, 32])
def test_lemma37_composition_scaling(benchmark, num_components):
    query, instance = _workload(num_components, 20)
    probability = benchmark(
        phom_on_disconnected_instance,
        query,
        instance,
        lambda q, c: phom_labeled_path_on_dwt(q, c, "dp"),
    )
    assert 0 <= probability <= 1


def test_lemma37_dispatcher_handles_union_instances(benchmark):
    query, instance = _workload(5, 20, seed=38)
    solver = PHomSolver()
    result = benchmark(solver.solve, query, instance)
    assert result.method == "labeled-dwt"
    assert "Lemma 3.7" in result.proposition


def test_lemma37_matches_brute_force_on_small_instances(benchmark):
    query, instance = _workload(2, 3, seed=39)

    def both():
        via_lemma = phom_on_disconnected_instance(
            query, instance, lambda q, c: phom_labeled_path_on_dwt(q, c, "dp")
        )
        return via_lemma, brute_force_phom(query, instance)

    via_lemma, brute = benchmark(both)
    assert via_lemma == brute
