"""Experiment E5 — Figure 2: the inclusion lattice of graph classes.

Checks (and times) that the implemented membership tests respect every
inclusion of Figure 2 on randomly generated members of each class: whenever
``C ⊆ C'`` and a graph is generated in ``C``, it is recognised as a member of
``C'`` as well.
"""

from __future__ import annotations

from repro.graphs.classes import GraphClass, class_includes, classify_graph
from repro.workloads import make_query

from conftest import bench_rng

GENERATED_CLASSES = [
    GraphClass.ONE_WAY_PATH,
    GraphClass.TWO_WAY_PATH,
    GraphClass.DOWNWARD_TREE,
    GraphClass.POLYTREE,
    GraphClass.UNION_ONE_WAY_PATH,
    GraphClass.UNION_TWO_WAY_PATH,
    GraphClass.UNION_DOWNWARD_TREE,
    GraphClass.UNION_POLYTREE,
    GraphClass.CONNECTED,
    GraphClass.ALL,
]


def _verify_lattice(sample_count: int = 5, size: int = 12) -> int:
    rng = bench_rng(5)
    checks = 0
    for cls in GENERATED_CLASSES:
        for _ in range(sample_count):
            graph = make_query(cls, labeled=True, size=size, rng=rng)
            member_of = classify_graph(graph)
            assert cls in member_of
            for larger in GraphClass:
                if class_includes(cls, larger):
                    assert larger in member_of
                    checks += 1
    return checks


def test_figure2_inclusion_lattice(benchmark):
    checks = benchmark(_verify_lattice)
    assert checks > 0


def test_figure2_classification_of_large_graphs(benchmark):
    rng = bench_rng(6)
    graphs = [make_query(cls, labeled=True, size=40, rng=rng) for cls in GENERATED_CLASSES]

    def classify_all():
        return [classify_graph(graph) for graph in graphs]

    results = benchmark(classify_all)
    assert len(results) == len(graphs)
