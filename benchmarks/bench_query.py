"""Query-frontend benchmark script: core minimization vs as-written dispatch.

Thin wrapper over :mod:`repro.bench_query` so the benchmark can be run
either as

    python benchmarks/bench_query.py [--smoke] [--output BENCH_query.json]
                                     [--min-minimization-speedup X]

or through the CLI as ``repro bench query``.  The recorded artefact,
``BENCH_query.json``, is checked into the repository root and tracks the
query-language frontend across PRs: the end-to-end speedup of minimized
dispatch (Chandra–Merlin core + polynomial route) over unminimized solving
(brute force and Karp–Luby) on redundant-atom queries whose cores are
tractable, the parse+minimize overhead under plan caching, and the
service-trace verification that ``canonical_query_key`` coalesces
syntactically distinct queries with equal cores.  The
``--min-minimization-speedup`` flag turns regressions into a non-zero exit
code, which CI uses as a smoke gate.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", "query", *sys.argv[1:]]))
