"""Experiment E1 — Figure 1 / Examples 2.1 and 2.2.

The paper's worked example: on the probabilistic graph of Figure 1, the query
``-R-> -S-> <-S-`` (∃xyzt R(x,y) ∧ S(y,z) ∧ S(t,z)) has probability
``0.7 · (1 − (1 − 0.1)(1 − 0.8)) = 0.574``.  The benchmark times the two
brute-force oracles and the dispatcher on this instance and asserts the
paper's value exactly.
"""

from __future__ import annotations

import warnings
from fractions import Fraction

from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning
from repro.graphs.builders import two_way_path
from repro.graphs.digraph import DiGraph
from repro.probability.brute_force import brute_force_phom, brute_force_phom_over_matches
from repro.probability.prob_graph import ProbabilisticGraph

PAPER_VALUE = Fraction(574, 1000)


def figure1_instance() -> ProbabilisticGraph:
    graph = DiGraph()
    graph.add_edge("a", "b", "R")
    graph.add_edge("d", "b", "R")
    graph.add_edge("b", "c", "S")
    graph.add_edge("a", "d", "R")
    graph.add_edge("e", "c", "S")
    return ProbabilisticGraph(
        graph,
        {
            ("a", "b"): "0.1",
            ("d", "b"): "0.8",
            ("b", "c"): "0.7",
            ("a", "d"): 1,
            ("e", "c"): "0.05",
        },
    )


def example22_query() -> DiGraph:
    return two_way_path([("R", "forward"), ("S", "forward"), ("S", "backward")], prefix="q")


def test_example22_brute_force_worlds(benchmark):
    instance, query = figure1_instance(), example22_query()
    probability = benchmark(brute_force_phom, query, instance)
    assert probability == PAPER_VALUE


def test_example22_brute_force_matches(benchmark):
    instance, query = figure1_instance(), example22_query()
    probability = benchmark(brute_force_phom_over_matches, query, instance)
    assert probability == PAPER_VALUE


def test_example22_dispatcher(benchmark):
    instance, query = figure1_instance(), example22_query()
    solver = PHomSolver()

    def run():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            return solver.probability(query, instance)

    probability = benchmark(run)
    assert probability == PAPER_VALUE
