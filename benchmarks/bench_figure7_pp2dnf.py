"""Experiment E10 — Figure 7 / Proposition 4.1: the #PP2DNF reduction (labeled).

Builds the labeled 1WP-query / polytree-instance reduction for the formula of
Figure 7 (X1Y2 ∨ X1Y1 ∨ X2Y2) and for random PP2DNF formulas, verifies the
counting identity ``#SAT = Pr(G ⇝ H) · 2^{n1+n2}``, and times both the
construction (polynomial) and the counting (exponential, as expected for a
#P-hard cell).
"""

from __future__ import annotations

from repro.graphs.classes import is_one_way_path, is_polytree
from repro.reductions.pp2dnf import (
    PP2DNF,
    count_satisfying_valuations,
    prop41_reduction,
    random_pp2dnf,
    satisfying_valuations_via_phom,
)

from conftest import bench_rng

#: The PP2DNF formula of Figure 7: X1Y2 ∨ X1Y1 ∨ X2Y2.
FIGURE7_FORMULA = PP2DNF(2, 2, ((1, 2), (1, 1), (2, 2)))


def test_figure7_direct_count(benchmark):
    count = benchmark(count_satisfying_valuations, FIGURE7_FORMULA)
    assert count == 8


def test_figure7_reduction_construction(benchmark):
    query, instance = benchmark(prop41_reduction, FIGURE7_FORMULA)
    assert is_one_way_path(query)
    assert is_polytree(instance.graph)
    assert query.num_edges() == 8
    assert instance.graph.num_vertices() == 23


def test_figure7_count_via_phom(benchmark):
    count = benchmark(satisfying_valuations_via_phom, FIGURE7_FORMULA)
    assert count == 8


def test_random_pp2dnf_identity(benchmark):
    formula = random_pp2dnf(2, 2, 3, bench_rng(41))

    def both_sides():
        return satisfying_valuations_via_phom(formula), count_satisfying_valuations(formula)

    via_phom, direct = benchmark(both_sides)
    assert via_phom == direct


def test_reduction_construction_scales_polynomially(benchmark):
    formula = random_pp2dnf(8, 8, 20, bench_rng(42))
    query, instance = benchmark(prop41_reduction, formula)
    assert is_polytree(instance.graph)
    assert query.num_edges() == formula.num_clauses + 5
