"""Ablation benchmark: the design choices called out in DESIGN.md.

1. *Two routes per tractable case* — the paper's lineage/automaton
   constructions versus the direct dynamic programs, on identical workloads.
2. *State capping in the path automaton* — the number of automaton states
   actually instantiated with and without the cap at the query length.
3. *Arc consistency versus plain backtracking* for homomorphism tests into
   two-way paths (the Theorem 4.13 ingredient of Proposition 4.11).
4. *World-enumeration pruning* — brute force with and without skipping
   zero-probability worlds.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.automata.binary_tree import encode_polytree
from repro.automata.path_automaton import build_longest_path_automaton
from repro.core.labeled_dwt import phom_labeled_path_on_dwt
from repro.core.unlabeled_pt import phom_unlabeled_path_on_polytree
from repro.csp.xproperty import x_property_has_homomorphism
from repro.graphs.classes import two_way_path_order
from repro.graphs.generators import (
    random_connected_graph,
    random_downward_tree,
    random_one_way_path,
    random_polytree,
    random_two_way_path,
)
from repro.graphs.homomorphism import has_homomorphism
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import attach_random_probabilities

from conftest import bench_rng


# ----------------------------------------------------------------------
# 1. lineage / automaton route vs direct dynamic program
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["dp", "lineage"])
def test_ablation_prop410_method(benchmark, method):
    rng = bench_rng(1000)
    instance = attach_random_probabilities(random_downward_tree(100, ("R", "S"), rng), rng)
    query = random_one_way_path(4, ("R", "S"), rng, prefix="q")
    probability = benchmark(phom_labeled_path_on_dwt, query, instance, method)
    assert 0 <= probability <= 1


@pytest.mark.parametrize("method", ["dp", "automaton"])
def test_ablation_prop54_method(benchmark, method):
    instance = attach_random_probabilities(
        random_polytree(80, ("_",), bench_rng(1001)), bench_rng(1001)
    )
    probability = benchmark(phom_unlabeled_path_on_polytree, 4, instance, method)
    assert 0 <= probability <= 1


# ----------------------------------------------------------------------
# 2. automaton state capping
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cap", [4, 30])
def test_ablation_state_capping(benchmark, cap):
    """Reachable-state count with the natural cap (query length) vs an oversized cap.

    The oversized cap simulates "no capping": states then track path lengths
    far beyond the query length and the reachable state space grows with the
    instance rather than with the query.
    """
    rng = bench_rng(1002)
    instance = attach_random_probabilities(random_polytree(30, ("_",), rng), rng)
    tree = encode_polytree(instance)
    automaton = build_longest_path_automaton(cap)

    def count_states():
        return len(automaton.reachable_states(tree))

    states = benchmark(count_states)
    assert states <= (cap + 1) ** 3


# ----------------------------------------------------------------------
# 3. arc consistency (X-property algorithm) vs generic backtracking
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["x-property", "backtracking"])
def test_ablation_homomorphism_check_on_paths(benchmark, algorithm):
    rng = bench_rng(1003)
    target = random_two_way_path(40, ("R", "S"), rng)
    order = two_way_path_order(target)
    queries = [random_connected_graph(4, 0.3, ("R", "S"), rng, prefix=f"q{i}") for i in range(10)]

    def run():
        if algorithm == "x-property":
            return [x_property_has_homomorphism(q, target, order) for q in queries]
        return [has_homomorphism(q, target) for q in queries]

    answers = benchmark(run)
    assert len(answers) == 10


# ----------------------------------------------------------------------
# 4. possible-world pruning in the brute-force oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("skip_zero", [True, False])
def test_ablation_world_enumeration_pruning(benchmark, skip_zero):
    rng = bench_rng(1004)
    graph = random_downward_tree(12, ("R", "S"), rng)
    instance = attach_random_probabilities(graph, rng, certain_fraction=0.6)

    def enumerate_worlds():
        total = Fraction(0)
        count = 0
        for world in instance.possible_worlds(skip_zero_probability=skip_zero):
            total += world.probability
            count += 1
        return total, count

    total, count = benchmark(enumerate_worlds)
    assert total == 1
    if skip_zero:
        assert count == instance.num_nonzero_worlds()
    else:
        assert count == instance.num_possible_worlds()
