"""Experiment E6 — Figures 3 and 4: example members of the graph classes.

Figure 3 shows a labeled one-way path and a labeled two-way path over
``{R, S, T}``; Figure 4 shows an unlabeled downward tree and polytree.  The
benchmark reconstructs the four example graphs, checks that the recognisers
classify them exactly as the paper does, and times class recognition on
larger randomly generated members.
"""

from __future__ import annotations

from repro.graphs.builders import downward_tree, one_way_path, polytree_from_parents, two_way_path
from repro.graphs.builders import BACKWARD, FORWARD
from repro.graphs.classes import (
    GraphClass,
    graph_class_of,
    is_downward_tree,
    is_one_way_path,
    is_polytree,
    is_two_way_path,
)
from repro.graphs.generators import random_downward_tree, random_polytree, random_two_way_path

from conftest import bench_rng


def figure3_examples():
    """The 1WP (top) and 2WP (bottom) of Figure 3 over σ = {R, S, T}."""
    owp = one_way_path(["R", "S", "S", "T"])
    twp = two_way_path(
        [("R", FORWARD), ("S", BACKWARD), ("S", FORWARD), ("T", BACKWARD), ("R", FORWARD)]
    )
    return owp, twp


def figure4_examples():
    """The unlabeled DWT (left) and PT (right) of Figure 4."""
    dwt = downward_tree({"b": "a", "c": "a", "d": "b", "e": "b", "f": "c"})
    pt = polytree_from_parents(
        {
            "b": ("a", "_", FORWARD),
            "c": ("a", "_", BACKWARD),
            "d": ("b", "_", FORWARD),
            "e": ("b", "_", BACKWARD),
        }
    )
    return dwt, pt


def test_figure3_and_figure4_classification(benchmark):
    def classify_examples():
        owp, twp = figure3_examples()
        dwt, pt = figure4_examples()
        return (
            graph_class_of(owp),
            graph_class_of(twp),
            graph_class_of(dwt),
            graph_class_of(pt),
        )

    classes = benchmark(classify_examples)
    assert classes == (
        GraphClass.ONE_WAY_PATH,
        GraphClass.TWO_WAY_PATH,
        GraphClass.DOWNWARD_TREE,
        GraphClass.POLYTREE,
    )
    owp, twp = figure3_examples()
    dwt, pt = figure4_examples()
    assert is_one_way_path(owp) and is_two_way_path(twp)
    assert not is_one_way_path(twp)
    assert is_downward_tree(dwt) and is_polytree(pt) and not is_downward_tree(pt)


def test_recognisers_scale_to_large_graphs(benchmark):
    rng = bench_rng(34)
    graphs = [
        random_two_way_path(200, rng=rng),
        random_downward_tree(200, rng=rng),
        random_polytree(200, rng=rng),
    ]

    def recognise_all():
        return [
            is_two_way_path(graphs[0]),
            is_downward_tree(graphs[1]),
            is_polytree(graphs[2]),
        ]

    assert benchmark(recognise_all) == [True, True, True]
