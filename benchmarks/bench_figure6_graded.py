"""Experiment E9 — Figure 6 / Proposition 3.6: graded DAGs and the query collapse.

Arbitrary unlabeled queries on (unions of) downward-tree instances are solved
by computing a level mapping of the query (Definition 3.5, illustrated in
Figure 6) and collapsing the query to a one-way path.  The benchmark times
the collapse on large graded DAG queries and the end-to-end solver on large
⊔DWT instances, and checks the zero-probability shortcut for non-graded
queries.
"""

from __future__ import annotations

from repro.core.disconnected import phom_unlabeled_on_union_dwt
from repro.graphs.builders import disjoint_union
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_downward_tree, random_graded_dag, random_unlabeled_query_dag
from repro.graphs.grading import difference_of_levels, is_graded, level_mapping
from repro.workloads import attach_random_probabilities

from conftest import bench_rng


def test_level_mapping_of_large_graded_dag(benchmark):
    query = random_graded_dag(8, 6, 0.4, rng=bench_rng(9))
    mapping = benchmark(level_mapping, query)
    assert mapping is not None
    assert mapping.difference == 7


def test_gradedness_check_rejects_cyclic_queries(benchmark):
    cyclic = DiGraph(edges=[(f"v{i}", f"v{(i + 1) % 20}") for i in range(20)])
    assert benchmark(is_graded, cyclic) is False


def test_prop36_end_to_end_on_union_dwt(benchmark):
    rng = bench_rng(36)
    components = [random_downward_tree(25, ("_",), rng) for _ in range(3)]
    instance = attach_random_probabilities(disjoint_union(components), rng)
    query = random_graded_dag(3, 4, 0.5, rng=rng)
    assert is_graded(query)
    probability = benchmark(phom_unlabeled_on_union_dwt, query, instance)
    assert 0 <= probability <= 1


def test_prop36_zero_shortcut_for_non_graded_queries(benchmark):
    rng = bench_rng(37)
    instance = attach_random_probabilities(random_downward_tree(40, ("_",), rng), rng)
    # A query with a jumping edge (two directed paths of different lengths).
    query = DiGraph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
    probability = benchmark(phom_unlabeled_on_union_dwt, query, instance)
    assert probability == 0


def test_collapse_length_of_random_dag_queries(benchmark):
    rng = bench_rng(38)
    queries = [random_unlabeled_query_dag(12, 0.2, rng) for _ in range(10)]

    def collapse_all():
        lengths = []
        for query in queries:
            lengths.append(difference_of_levels(query) if is_graded(query) else None)
        return lengths

    lengths = benchmark(collapse_all)
    assert len(lengths) == 10
