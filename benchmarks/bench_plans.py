"""Compiled-plan benchmark script: plan reuse and incremental updates.

Thin wrapper over :mod:`repro.bench_plans` so the benchmark can be run either
as

    python benchmarks/bench_plans.py [--smoke] [--output BENCH_plans.json]
                                     [--min-reuse-speedup X]
                                     [--min-incremental-speedup Y]
                                     [--min-tape-speedup Z]

or through the CLI as ``repro bench plans``.  The recorded artefact,
``BENCH_plans.json``, is checked into the repository root and tracks the
serving-path numbers across PRs: re-evaluating compiled plans under drifting
probabilities versus PR-1-style ``solve_many`` (float), single-edge
``plan.update`` versus a full re-solve, and the ``tape_batch`` curve —
batched flat-tape evaluation (:mod:`repro.tape`) at batch sizes 1/16/256
versus one ``plan.evaluate`` call per valuation.  The ``--min-*-speedup``
flags turn regressions into a non-zero exit code, which CI uses as a smoke
gate.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", "plans", *sys.argv[1:]]))
