"""Hot-path benchmark script: repeated queries against a shared instance.

Thin wrapper over :mod:`repro.bench` so the benchmark can be run either as

    python benchmarks/bench_hotpaths.py [--smoke] [--output BENCH_hotpaths.json]

or through the CLI as ``repro bench``.  The recorded artefact,
``BENCH_hotpaths.json``, is checked into the repository root and gives every
PR a measured before/after trajectory for the serving hot path:
seed-style per-call solving vs the cached solver vs ``solve_many`` with the
exact and float numeric backends.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
