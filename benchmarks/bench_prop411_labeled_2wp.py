"""Experiment E12 — Proposition 4.11 / Theorem 4.13: connected queries on 2WP instances.

Times the X-property-based match enumeration plus β-acyclic lineage (the
paper's route) and the run-length dynamic program on two-way-path instances
of increasing size, for branching and cyclic connected queries; checks
agreement with brute force on small instances and the X-property of the
subpaths.
"""

from __future__ import annotations

import pytest

from repro.core.labeled_2wp import phom_connected_on_2wp, two_way_path_lineage
from repro.csp.xproperty import has_x_property
from repro.graphs.classes import two_way_path_order
from repro.graphs.generators import random_connected_graph, random_two_way_path
from repro.probability.brute_force import brute_force_phom
from repro.workloads import attach_random_probabilities

from conftest import bench_rng


def _workload(instance_size: int, query_size: int, seed: int = 411):
    rng = bench_rng(seed)
    instance = attach_random_probabilities(
        random_two_way_path(instance_size, ("R", "S"), rng), rng
    )
    query = random_connected_graph(query_size, 0.3, ("R", "S"), rng, prefix="q")
    return query, instance


@pytest.mark.parametrize("instance_size", [15, 30, 60])
def test_prop411_dp_scaling(benchmark, instance_size):
    query, instance = _workload(instance_size, 4)
    probability = benchmark(phom_connected_on_2wp, query, instance, "dp")
    assert 0 <= probability <= 1


@pytest.mark.parametrize("instance_size", [15, 30])
def test_prop411_lineage_scaling(benchmark, instance_size):
    query, instance = _workload(instance_size, 4)
    probability = benchmark(phom_connected_on_2wp, query, instance, "lineage")
    assert probability == phom_connected_on_2wp(query, instance, "dp")


def test_prop411_lineage_is_beta_acyclic_and_xproperty_holds(benchmark):
    query, instance = _workload(25, 4)

    def build_and_check():
        lineage = two_way_path_lineage(query, instance)
        order = two_way_path_order(instance.graph)
        return lineage.is_beta_acyclic(), has_x_property(instance.graph, order)

    beta_acyclic, x_property = benchmark(build_and_check)
    assert beta_acyclic and x_property


def test_prop411_matches_brute_force_on_small_instances(benchmark):
    query, instance = _workload(5, 3, seed=412)

    def all_three():
        return (
            phom_connected_on_2wp(query, instance, "dp"),
            phom_connected_on_2wp(query, instance, "lineage"),
            brute_force_phom(query, instance),
        )

    dp, lineage, brute = benchmark(all_three)
    assert dp == lineage == brute
