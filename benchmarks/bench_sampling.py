"""Sampling benchmark script: Karp–Luby estimation vs exact brute force.

Thin wrapper over :mod:`repro.bench_sampling` so the benchmark can be run
either as

    python benchmarks/bench_sampling.py [--smoke] [--output BENCH_sampling.json]
                                        [--min-sampling-speedup X]
                                        [--max-epsilon-ratio Y]

or through the CLI as ``repro bench sampling``.  The recorded artefact,
``BENCH_sampling.json``, is checked into the repository root and tracks the
sampling subsystem across PRs: the wall-clock speedup of the Karp–Luby
``(ε, δ)`` estimator over exhaustive possible-world enumeration on layered
intractable instances (up to ``2^20`` worlds in the full run), the achieved
relative error under a pinned seed, and the accuracy-vs-samples convergence
curves of both the importance sampler and the naive world sampler.  The
``--min-sampling-speedup`` / ``--max-epsilon-ratio`` flags turn regressions
into a non-zero exit code, which CI uses as a smoke gate.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", "sampling", *sys.argv[1:]]))
