"""Experiment E3 — Table 2: labeled setting, connected queries.

Regenerates the paper's Table 2 cell by cell (classification + correctness +
polynomial routing for the PTIME cells) and times the two tractable
mechanisms of the labeled setting: Proposition 4.10 (1WP queries on DWT
instances) and Proposition 4.11 (connected queries on 2WP instances).
"""

from __future__ import annotations

import warnings

from repro.classification.tables import Complexity
from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning
from repro.graphs.classes import GraphClass

from conftest import TRACTABLE_INSTANCE_SIZE, TWO_WP_INSTANCE_SIZE, cell_workload
from table_utils import check_observations, format_observations, regenerate_table


def test_table2_regeneration(benchmark):
    observations = benchmark.pedantic(regenerate_table, args=(2,), rounds=2, iterations=1)
    check_observations(observations)
    hard_cells = sum(1 for o in observations if o.complexity is Complexity.SHARP_P_HARD)
    ptime_cells = sum(1 for o in observations if o.complexity is Complexity.PTIME)
    assert (ptime_cells, hard_cells) == (11, 14)
    print("\nTable 2 (labeled, connected queries)")
    print(format_observations(observations))


def test_table2_cell_1wp_queries_on_dwt_instances(benchmark):
    """PTIME cell (1WP, DWT): Proposition 4.10."""
    workload = cell_workload(
        GraphClass.ONE_WAY_PATH, GraphClass.DOWNWARD_TREE, labeled=True,
        query_size=4, instance_size=TRACTABLE_INSTANCE_SIZE,
    )
    solver = PHomSolver()
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method == "labeled-dwt"
    assert 0 <= result.probability <= 1


def test_table2_cell_connected_queries_on_2wp_instances(benchmark):
    """PTIME cell (Connected, 2WP): Proposition 4.11."""
    workload = cell_workload(
        GraphClass.CONNECTED, GraphClass.TWO_WAY_PATH, labeled=True,
        query_size=4, instance_size=TWO_WP_INSTANCE_SIZE,
    )
    solver = PHomSolver()
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method == "connected-2wp"


def test_table2_cell_polytree_queries_on_1wp_instances(benchmark):
    """PTIME cell (PT, 1WP): arbitrary connected queries on labeled one-way paths."""
    workload = cell_workload(
        GraphClass.POLYTREE, GraphClass.ONE_WAY_PATH, labeled=True,
        query_size=4, instance_size=TWO_WP_INSTANCE_SIZE,
    )
    solver = PHomSolver()
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method == "connected-2wp"


def test_table2_hard_cell_1wp_on_polytree(benchmark):
    """#P-hard cell (1WP, PT): Proposition 4.1 — only brute force applies."""
    workload = cell_workload(
        GraphClass.ONE_WAY_PATH, GraphClass.POLYTREE, labeled=True,
        query_size=2, instance_size=8,
    )
    solver = PHomSolver()

    def run():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            return solver.solve(workload.query, workload.instance)

    result = benchmark(run)
    assert result.method == "brute-force-worlds"


def test_table2_hard_cell_dwt_on_dwt(benchmark):
    """#P-hard cell (DWT, DWT): Proposition 4.4 — only brute force applies."""
    workload = cell_workload(
        GraphClass.DOWNWARD_TREE, GraphClass.DOWNWARD_TREE, labeled=True,
        query_size=3, instance_size=7,
    )
    solver = PHomSolver()

    def run():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            return solver.solve(workload.query, workload.instance)

    result = benchmark(run)
    assert 0 <= result.probability <= 1
