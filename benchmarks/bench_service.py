"""Serving-layer benchmark script: QueryService vs single-process solve_many.

Thin wrapper over :mod:`repro.bench_service` so the benchmark can be run
either as

    python benchmarks/bench_service.py [--smoke] [--output BENCH_service.json]
                                       [--min-service-speedup X]
                                       [--min-worker-scaling X]
                                       [--max-p99-ms MS]
                                       [--faults] [--max-recovery-ms MS]
                                       [--restart]
                                       [--min-obs-overhead-ratio X]
                                       [--trace-out trace.jsonl]

or through the CLI as ``repro bench service``.  The recorded artefact,
``BENCH_service.json``, is checked into the repository root and tracks the
serving numbers across PRs: throughput versus worker count on a Zipf-skewed
traffic trace, the request-coalescing hit rate, and the speedup of the
4-worker service over a persistent single-process ``solve_many`` loop —
with exact answers asserted bit-identical and pinned-seed approx estimates
asserted identical at every worker count on every run.  The
``--min-service-speedup`` flag turns regressions into a non-zero exit code,
which CI uses as a smoke gate (like ``--min-worker-scaling`` below, it is
enforced only on machines with at least as many CPUs as workers — a
smaller box cannot honestly show parallel speedup).

The report also records a ``throughput_vs_workers`` curve: a balanced
multi-instance trace replayed at 1/2/4 workers with p50/p99 batch
latencies, steal counts and the per-worker instance map.  The curve's
machine-independent invariants — exact answers bit-identical across
worker counts, no registered shard leaving a worker idle — are asserted
on every run; ``--min-worker-scaling X`` gates 4-worker throughput at
``X`` times the 1-worker replay (enforced only when the machine has at
least as many CPUs as workers, and recorded as
``scaling_gate_enforceable`` either way) and ``--max-p99-ms`` caps the
worst recorded p99 batch latency.

``--faults`` additionally runs the chaos scenario — a seeded
:class:`~repro.service.faults.FaultPlan` kills one worker mid-trace — and
records a ``service_recovery`` section (restart latency, retried-request
overhead, degraded-answer accuracy); ``--max-recovery-ms`` gates on the
recorded worst-case restart latency.

Every run also records an ``observability`` section: the trace is
replayed untraced and at trace sample rate 1.0 in interleaved,
order-alternated rounds, and the report captures the throughput ratio
(two noise-floor estimators, answers asserted bit-identical, the span
stream validated) plus per-route latency histograms (exact-dp, ddnnf,
karp-luby, tape-batch) from the telemetry registry.
``--min-obs-overhead-ratio 0.95`` turns more than 5% tracing overhead
into a non-zero exit code — the CI observability smoke gate — and
``--trace-out PATH`` keeps the traced replay's span JSONL so
``repro trace --validate`` can re-check the same artifact.

``--restart`` runs the durable-state scenario (:mod:`repro.persist`) and
records a ``restart_recovery`` section: a cold replay populates a state
directory, a warm restart from it must recompile zero plans with
bit-identical answers, and a seeded disk-fault matrix (torn-write,
truncate-tail, bit-flip, enospc, store-bit-flip) must be fully detected
and recovered — any violation is a non-zero exit code, which CI uses as
the warm-restart smoke gate.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", "service", *sys.argv[1:]]))
