"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a table, a figure, or
a proposition-level experiment).  The helpers below centralise workload
construction so that the numbers reported in ``EXPERIMENTS.md`` are
reproducible: all workloads are drawn from fixed seeds.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Tuple

import pytest

from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads import Workload, attach_random_probabilities, workload_for_cell

#: Seed used by every benchmark workload (PODS 2017 conference dates).
BENCH_SEED = 20170514

#: Default instance sizes for the polynomial-time algorithms.
TRACTABLE_INSTANCE_SIZE = 60
#: Instance size used for the quadratic 2WP subpath enumeration (Prop 4.11).
TWO_WP_INSTANCE_SIZE = 30
#: Default query sizes for the polynomial-time algorithms.
TRACTABLE_QUERY_SIZE = 4
#: Instance sizes small enough for the exponential brute-force oracle.
BRUTE_FORCE_INSTANCE_SIZE = 5


def bench_rng(offset: int = 0) -> random.Random:
    """A deterministic random generator for benchmark workloads."""
    return random.Random(BENCH_SEED + offset)


def cell_workload(
    query_class: GraphClass,
    instance_class: GraphClass,
    labeled: bool,
    query_size: int = TRACTABLE_QUERY_SIZE,
    instance_size: int = TRACTABLE_INSTANCE_SIZE,
    seed_offset: int = 0,
) -> Workload:
    """A reproducible workload for one classification-table cell."""
    return workload_for_cell(
        query_class,
        instance_class,
        labeled,
        query_size,
        instance_size,
        rng=bench_rng(seed_offset),
    )


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG fixture for benchmarks."""
    return bench_rng()
