"""Experiment E17 — the tractability frontier, empirically.

On the PTIME side of the frontier the solvers scale polynomially with the
instance size; on the #P-hard side the only available algorithm is
possible-world enumeration, which blows up exponentially in the number of
uncertain edges.  This benchmark measures both sides so the contrast shows
up directly in the timing report:

* ``ptime_side``: the Prop 4.10 / Prop 5.4 solvers on instances with 60-240
  edges (seconds stay in the same order of magnitude);
* ``hard_side``: brute force on the Prop 4.1 cell (labeled 1WP on PT) with
  6 / 8 / 10 uncertain edges (each step multiplies the work by ~4).
"""

from __future__ import annotations

import pytest

from repro.core.labeled_dwt import phom_labeled_path_on_dwt
from repro.core.unlabeled_pt import phom_unlabeled_path_on_polytree
from repro.graphs.generators import random_downward_tree, random_one_way_path, random_polytree
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.reductions.pp2dnf import prop41_reduction, random_pp2dnf
from repro.workloads import attach_random_probabilities

from conftest import bench_rng


@pytest.mark.parametrize("instance_size", [60, 120, 240])
def test_ptime_side_prop410(benchmark, instance_size):
    rng = bench_rng(170)
    instance = attach_random_probabilities(
        random_downward_tree(instance_size, ("R", "S"), rng), rng
    )
    query = random_one_way_path(5, ("R", "S"), rng, prefix="q")
    probability = benchmark(phom_labeled_path_on_dwt, query, instance, "dp")
    assert 0 <= probability <= 1


@pytest.mark.parametrize("instance_size", [60, 120, 240])
def test_ptime_side_prop54(benchmark, instance_size):
    rng = bench_rng(171)
    instance = attach_random_probabilities(random_polytree(instance_size, ("_",), rng), rng)
    probability = benchmark(phom_unlabeled_path_on_polytree, 5, instance, "dp")
    assert 0 <= probability <= 1


@pytest.mark.parametrize("uncertain_edges", [6, 8, 10])
def test_hard_side_prop41_brute_force(benchmark, uncertain_edges):
    # The Prop 4.1 reduction has one uncertain edge per PP2DNF variable, so
    # the brute-force cost is 2^{#variables} possible worlds: each step of
    # the sweep multiplies the number of worlds by four.
    num_x = uncertain_edges // 2
    num_y = uncertain_edges - num_x
    formula = random_pp2dnf(num_x, num_y, 3, bench_rng(172))
    query, instance = prop41_reduction(formula)
    assert len(instance.uncertain_edges()) == uncertain_edges

    def run():
        return brute_force_phom(query, instance)

    probability = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 <= probability <= 1
