"""Experiment E7 — Figure 5 / Proposition 3.3: the #Bipartite-Edge-Cover reduction.

Builds the labeled ⊔1WP-query / 1WP-instance reduction for the bipartite
graph of Figure 5 and for random bipartite graphs, checks the counting
identity ``#edge-covers = Pr(G ⇝ H) · 2^m`` against a direct counter, and
times both sides (both are exponential, as #P-hardness predicts).
"""

from __future__ import annotations

from repro.probability.brute_force import brute_force_phom
from repro.reductions.bipartite import BipartiteGraph, count_edge_covers, random_bipartite_graph
from repro.reductions.edge_cover import edge_covers_via_phom, prop33_reduction

from conftest import bench_rng

#: The bipartite graph of Figure 5: x1-y1, x1-y2, x2-y2, x2-y3.
FIGURE5_GRAPH = BipartiteGraph(2, 3, ((1, 1), (1, 2), (2, 2), (2, 3)))


def test_figure5_direct_edge_cover_count(benchmark):
    count = benchmark(count_edge_covers, FIGURE5_GRAPH)
    assert count == 3


def test_figure5_reduction_construction(benchmark):
    query, instance = benchmark(prop33_reduction, FIGURE5_GRAPH)
    assert instance.graph.num_edges() == 23
    assert len(query.weakly_connected_components()) == 5


def test_figure5_count_via_phom(benchmark):
    count = benchmark(edge_covers_via_phom, FIGURE5_GRAPH)
    assert count == count_edge_covers(FIGURE5_GRAPH)


def test_random_bipartite_identity(benchmark):
    graph = random_bipartite_graph(2, 2, 0.6, bench_rng(7))

    def both_sides():
        return edge_covers_via_phom(graph), count_edge_covers(graph)

    via_phom, direct = benchmark(both_sides)
    assert via_phom == direct
