"""Experiment E11 — Proposition 4.10: labeled 1WP queries on DWT instances.

Times the two implementations (β-acyclic lineage and the KMP dynamic
program) on downward-tree instances of increasing size, checks they agree
with each other (and, on small instances, with brute force), and verifies
that the lineage really is β-acyclic.
"""

from __future__ import annotations

import pytest

from repro.core.labeled_dwt import dwt_path_lineage, phom_labeled_path_on_dwt
from repro.graphs.builders import path_query_labels
from repro.graphs.generators import random_downward_tree, random_one_way_path
from repro.probability.brute_force import brute_force_phom
from repro.workloads import attach_random_probabilities

from conftest import bench_rng


def _workload(instance_size: int, query_length: int, seed: int = 410):
    rng = bench_rng(seed)
    instance = attach_random_probabilities(
        random_downward_tree(instance_size, ("R", "S"), rng), rng
    )
    query = random_one_way_path(query_length, ("R", "S"), rng, prefix="q")
    return query, instance


@pytest.mark.parametrize("instance_size", [40, 80, 160])
def test_prop410_dp_scaling(benchmark, instance_size):
    query, instance = _workload(instance_size, 4)
    probability = benchmark(phom_labeled_path_on_dwt, query, instance, "dp")
    assert 0 <= probability <= 1


@pytest.mark.parametrize("instance_size", [40, 80, 160])
def test_prop410_lineage_scaling(benchmark, instance_size):
    query, instance = _workload(instance_size, 4)
    probability = benchmark(phom_labeled_path_on_dwt, query, instance, "lineage")
    assert probability == phom_labeled_path_on_dwt(query, instance, "dp")


def test_prop410_lineage_is_beta_acyclic(benchmark):
    query, instance = _workload(120, 3)

    def build_and_check():
        lineage = dwt_path_lineage(path_query_labels(query), instance)
        return lineage.is_beta_acyclic(), lineage.num_clauses()

    beta_acyclic, _clauses = benchmark(build_and_check)
    assert beta_acyclic


def test_prop410_matches_brute_force_on_small_instances(benchmark):
    query, instance = _workload(6, 2, seed=411)

    def all_three():
        return (
            phom_labeled_path_on_dwt(query, instance, "dp"),
            phom_labeled_path_on_dwt(query, instance, "lineage"),
            brute_force_phom(query, instance),
        )

    dp, lineage, brute = benchmark(all_three)
    assert dp == lineage == brute
