"""Experiment E13 — Proposition 5.4: unlabeled 1WP queries on polytree instances.

Times the full tree-automaton pipeline (binary encoding → automaton →
provenance d-DNNF → probability) and the direct message-passing dynamic
program on polytrees of increasing size and for increasing query lengths,
and records the circuit sizes (which must grow linearly in the instance).
"""

from __future__ import annotations

import pytest

from repro.automata.binary_tree import encode_polytree
from repro.automata.path_automaton import build_longest_path_automaton, number_of_states
from repro.automata.provenance import provenance_circuit
from repro.core.unlabeled_pt import phom_unlabeled_path_on_polytree
from repro.graphs.builders import unlabeled_path
from repro.graphs.generators import random_polytree
from repro.probability.brute_force import brute_force_phom
from repro.workloads import attach_random_probabilities

from conftest import bench_rng


def _instance(size: int, seed: int = 54):
    rng = bench_rng(seed)
    return attach_random_probabilities(random_polytree(size, ("_",), rng), rng)


@pytest.mark.parametrize("instance_size", [30, 60, 120])
def test_prop54_automaton_scaling_in_instance(benchmark, instance_size):
    instance = _instance(instance_size)
    probability = benchmark(phom_unlabeled_path_on_polytree, 4, instance, "automaton")
    assert 0 <= probability <= 1


@pytest.mark.parametrize("query_length", [2, 4, 8])
def test_prop54_automaton_scaling_in_query(benchmark, query_length):
    instance = _instance(80)
    probability = benchmark(phom_unlabeled_path_on_polytree, query_length, instance, "automaton")
    assert 0 <= probability <= 1
    assert number_of_states(query_length) == (query_length + 1) ** 3


@pytest.mark.parametrize("instance_size", [30, 60, 120])
def test_prop54_direct_dp_scaling(benchmark, instance_size):
    instance = _instance(instance_size)
    probability = benchmark(phom_unlabeled_path_on_polytree, 4, instance, "dp")
    assert probability == phom_unlabeled_path_on_polytree(4, instance, "automaton")


def test_prop54_circuit_construction_and_size(benchmark):
    instance = _instance(100)
    automaton = build_longest_path_automaton(4)

    def compile_circuit():
        tree = encode_polytree(instance)
        return provenance_circuit(automaton, tree)

    circuit = benchmark(compile_circuit)
    # The circuit stays linear in the instance (with an automaton-dependent factor).
    assert circuit.num_gates() <= 200 * instance.graph.num_edges()


def test_prop54_matches_brute_force_on_small_instances(benchmark):
    instance = _instance(6, seed=55)

    def all_three():
        return (
            phom_unlabeled_path_on_polytree(2, instance, "automaton"),
            phom_unlabeled_path_on_polytree(2, instance, "dp"),
            brute_force_phom(unlabeled_path(2), instance),
        )

    automaton, dp, brute = benchmark(all_three)
    assert automaton == dp == brute
