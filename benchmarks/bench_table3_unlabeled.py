"""Experiment E4 — Table 3: unlabeled setting, connected queries.

Regenerates the paper's Table 3 cell by cell and times the tractable
mechanisms specific to the unlabeled connected setting: Proposition 5.4/5.5
(path and downward-tree queries on polytree instances via tree automata) and
Proposition 3.6 (arbitrary connected queries on downward-tree instances).
"""

from __future__ import annotations

import warnings

from repro.classification.tables import Complexity
from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning
from repro.graphs.classes import GraphClass

from conftest import TRACTABLE_INSTANCE_SIZE, TWO_WP_INSTANCE_SIZE, cell_workload
from table_utils import check_observations, format_observations, regenerate_table


def test_table3_regeneration(benchmark):
    observations = benchmark.pedantic(regenerate_table, args=(3,), rounds=2, iterations=1)
    check_observations(observations)
    hard_cells = sum(1 for o in observations if o.complexity is Complexity.SHARP_P_HARD)
    ptime_cells = sum(1 for o in observations if o.complexity is Complexity.PTIME)
    assert (ptime_cells, hard_cells) == (17, 8)
    print("\nTable 3 (unlabeled, connected queries)")
    print(format_observations(observations))


def test_table3_cell_1wp_queries_on_polytrees(benchmark):
    """PTIME cell (1WP, PT): Proposition 5.4 (tree automaton + d-DNNF)."""
    workload = cell_workload(
        GraphClass.ONE_WAY_PATH, GraphClass.POLYTREE, labeled=False,
        query_size=4, instance_size=TRACTABLE_INSTANCE_SIZE,
    )
    solver = PHomSolver(prefer="automaton")
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method == "polytree-automaton"
    assert 0 <= result.probability <= 1


def test_table3_cell_dwt_queries_on_polytrees(benchmark):
    """PTIME cell (DWT, PT): Proposition 5.5 (collapse to the height path)."""
    workload = cell_workload(
        GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, labeled=False,
        query_size=5, instance_size=TRACTABLE_INSTANCE_SIZE,
    )
    solver = PHomSolver(prefer="automaton")
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method == "polytree-automaton"


def test_table3_cell_connected_queries_on_dwt(benchmark):
    """PTIME cell (Connected, DWT): Proposition 3.6 (graded-DAG collapse)."""
    workload = cell_workload(
        GraphClass.CONNECTED, GraphClass.DOWNWARD_TREE, labeled=False,
        query_size=5, instance_size=TRACTABLE_INSTANCE_SIZE,
    )
    solver = PHomSolver()
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method in ("graded-collapse", "connected-2wp", "labeled-dwt")


def test_table3_cell_connected_queries_on_2wp(benchmark):
    """PTIME cell (Connected, 2WP): Proposition 4.11 applies unchanged in the unlabeled setting."""
    workload = cell_workload(
        GraphClass.CONNECTED, GraphClass.TWO_WAY_PATH, labeled=False,
        query_size=4, instance_size=TWO_WP_INSTANCE_SIZE,
    )
    solver = PHomSolver()
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method == "connected-2wp"


def test_table3_hard_cell_2wp_on_polytree(benchmark):
    """#P-hard cell (2WP, PT): Proposition 5.6 — only brute force applies."""
    workload = cell_workload(
        GraphClass.TWO_WAY_PATH, GraphClass.POLYTREE, labeled=False,
        query_size=3, instance_size=8,
    )
    solver = PHomSolver()

    def run():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            return solver.solve(workload.query, workload.instance)

    result = benchmark(run)
    assert 0 <= result.probability <= 1
