"""Experiment E15 — Figure 8 / Proposition 5.6: the unlabeled #PP2DNF reduction.

The labeled reduction of Proposition 4.1 is made unlabeled by replacing
``S`` edges with the orientation pattern ``→→←`` and ``T`` edges with
``→→→``; the query becomes the two-way path of Figure 8 and the instance
stays a polytree.  The benchmark verifies the counting identity on a tiny
formula, the Figure 8 shapes on the paper's example formula, and times the
(polynomial) construction on larger formulas.
"""

from __future__ import annotations

from repro.graphs.classes import is_polytree, is_two_way_path
from repro.reductions.pp2dnf import (
    PP2DNF,
    count_satisfying_valuations,
    prop56_reduction,
    random_pp2dnf,
    satisfying_valuations_via_phom,
)

from conftest import bench_rng

FIGURE8_FORMULA = PP2DNF(2, 2, ((1, 2), (1, 1), (2, 2)))
TINY_FORMULA = PP2DNF(1, 1, ((1, 1),))


def test_figure8_reduction_construction(benchmark):
    query, instance = benchmark(prop56_reduction, FIGURE8_FORMULA)
    assert is_two_way_path(query)
    assert is_polytree(instance.graph)
    assert query.is_unlabeled() and instance.graph.is_unlabeled()
    # Query of Figure 8: →→→ (→→←)^{m+3} →→→ with m = 3 clauses.
    assert query.num_edges() == 24
    assert len(instance.uncertain_edges()) == FIGURE8_FORMULA.num_variables


def test_figure8_count_via_phom_on_tiny_formula(benchmark):
    count = benchmark(satisfying_valuations_via_phom, TINY_FORMULA, None, True)
    assert count == count_satisfying_valuations(TINY_FORMULA) == 1


def test_figure8_construction_scales_polynomially(benchmark):
    formula = random_pp2dnf(6, 6, 12, bench_rng(56))
    query, instance = benchmark(prop56_reduction, formula)
    assert is_polytree(instance.graph)
    assert query.num_edges() == 3 * (formula.num_clauses + 3) + 6
