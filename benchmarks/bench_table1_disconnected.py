"""Experiment E2 — Table 1: unlabeled setting, disconnected queries.

Regenerates the paper's Table 1: every cell (query class ⊔1WP/⊔2WP/⊔DWT/⊔PT/All
× instance class 1WP/2WP/DWT/PT/Connected) is classified from the border-case
propositions, exercised on a sampled workload, checked against brute force,
and — for PTIME cells — answered by a polynomial algorithm.  Additional
benchmarks time the two tractability mechanisms of this table (Prop 3.6 and
Prop 5.5 + Lemma 3.7) on larger instances.
"""

from __future__ import annotations

from repro.classification.tables import Complexity
from repro.core.solver import PHomSolver
from repro.graphs.classes import GraphClass

from conftest import TRACTABLE_INSTANCE_SIZE, cell_workload
from table_utils import check_observations, format_observations, regenerate_table


def test_table1_regeneration(benchmark):
    observations = benchmark.pedantic(regenerate_table, args=(1,), rounds=2, iterations=1)
    check_observations(observations)
    hard_cells = sum(1 for o in observations if o.complexity is Complexity.SHARP_P_HARD)
    ptime_cells = sum(1 for o in observations if o.complexity is Complexity.PTIME)
    assert (ptime_cells, hard_cells) == (14, 11)
    print("\nTable 1 (unlabeled, disconnected queries)")
    print(format_observations(observations))


def test_table1_cell_all_queries_on_dwt_instances(benchmark):
    """PTIME cell (All, DWT): arbitrary unlabeled queries on downward trees (Prop 3.6)."""
    workload = cell_workload(
        GraphClass.ALL, GraphClass.DOWNWARD_TREE, labeled=False,
        query_size=6, instance_size=TRACTABLE_INSTANCE_SIZE,
    )
    solver = PHomSolver()
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method == "graded-collapse"
    assert 0 <= result.probability <= 1


def test_table1_cell_union_dwt_queries_on_union_dwt_instances(benchmark):
    """PTIME cell (⊔DWT, DWT): disconnected tree queries on tree instances."""
    workload = cell_workload(
        GraphClass.UNION_DOWNWARD_TREE, GraphClass.UNION_DOWNWARD_TREE, labeled=False,
        query_size=6, instance_size=TRACTABLE_INSTANCE_SIZE,
    )
    solver = PHomSolver()
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method == "graded-collapse"


def test_table1_cell_union_1wp_queries_on_polytrees(benchmark):
    """PTIME cell (⊔1WP, PT): disconnected path queries collapse onto polytree instances (Prop 5.5)."""
    workload = cell_workload(
        GraphClass.UNION_ONE_WAY_PATH, GraphClass.POLYTREE, labeled=False,
        query_size=5, instance_size=TRACTABLE_INSTANCE_SIZE,
    )
    solver = PHomSolver()
    result = benchmark(solver.solve, workload.query, workload.instance)
    assert result.method.startswith("polytree-")


def test_table1_hard_cell_union_2wp_on_2wp(benchmark):
    """#P-hard cell (⊔2WP, 2WP): the class-level problem is hard (Prop 3.4).

    A sampled workload may still land in a tractable subclass (e.g. all
    components may come out one-way), in which case the dispatcher legally
    answers in polynomial time; the benchmark therefore only checks
    correctness bounds and reports the timing of whatever route was taken.
    """
    workload = cell_workload(
        GraphClass.UNION_TWO_WAY_PATH, GraphClass.TWO_WAY_PATH, labeled=False,
        query_size=3, instance_size=7,
    )
    solver = PHomSolver()
    import warnings

    from repro.exceptions import IntractableFallbackWarning

    def run():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            return solver.solve(workload.query, workload.instance)

    result = benchmark(run)
    assert 0 <= result.probability <= 1
