"""Experiment E8 — Proposition 3.4: the unlabeled edge-cover reduction.

Same counting identity as Experiment E7, but with the orientation patterns
replacing the labels (two-wayness simulates labels): the query becomes a
⊔2WP and the instance a 2WP, both unlabeled.  The benchmark verifies the
identity and measures how much larger the unlabeled reduction is.
"""

from __future__ import annotations

from repro.graphs.classes import GraphClass, graph_in_class, is_two_way_path
from repro.reductions.bipartite import BipartiteGraph, count_edge_covers
from repro.reductions.edge_cover import edge_covers_via_phom, prop33_reduction, prop34_reduction

SMALL_GRAPH = BipartiteGraph(1, 2, ((1, 1), (1, 2)))


def test_prop34_reduction_construction(benchmark):
    query, instance = benchmark(prop34_reduction, SMALL_GRAPH)
    assert graph_in_class(query, GraphClass.UNION_TWO_WAY_PATH)
    assert is_two_way_path(instance.graph)
    assert query.is_unlabeled() and instance.graph.is_unlabeled()
    # The unlabeled expansion multiplies the size by the pattern lengths.
    labeled_query, labeled_instance = prop33_reduction(SMALL_GRAPH)
    assert instance.graph.num_edges() > labeled_instance.graph.num_edges()
    assert query.num_edges() > labeled_query.num_edges()


def test_prop34_count_via_phom(benchmark):
    count = benchmark(edge_covers_via_phom, SMALL_GRAPH, None, True)
    assert count == count_edge_covers(SMALL_GRAPH) == 1
