"""CI gate: every seeded disk corruption must be caught by ``repro store verify``.

The durable-state layer (:mod:`repro.persist`) promises that *silent*
corruption is impossible: every write-ahead-log frame and every plan-store
entry is checksummed, so damage is always detected — and detection is what
this gate measures, at 100% or failure.

The script builds a state-directory fixture whose corruption is injected
through the same seeded :class:`~repro.service.faults.DiskFaultInjector`
that the benchmarks and tests use — never by ad-hoc file poking — with one
fault kind per write-ahead-log segment plus one bit-flipped plan-store
entry:

* segment 2 ends in a ``torn-write`` (a partial frame from a crash
  mid-append);
* segment 3 ends in a ``truncate-tail`` (bytes rolled back after the
  write);
* segment 4 ends in a ``bit-flip`` (one inverted bit in a framed record);
* one plan-store entry is rewritten through a ``bit-flip`` injector.

It then requires: ``repro store verify`` exits non-zero; the read-only
scan reports exactly the clean records as valid (every damaged record
excluded — 100% detection, no silent replay); and the plan store reports
exactly the one corrupt entry.  Any miss is a non-zero exit for CI.

Run as ``python benchmarks/store_corruption_gate.py``.
"""

from __future__ import annotations

import io
import os
import shutil
import sys
import tempfile

from repro.bench import BENCH_SEED, _rng
from repro.cli import main as cli_main
from repro.core.solver import PHomSolver
from repro.graphs.classes import GraphClass
from repro.persist import (
    PlanStore,
    WriteAheadLog,
    instance_digest,
    plan_store_key,
    scan_wal,
)
from repro.service import DiskFaultInjector, Fault, FaultPlan
from repro.workloads.generators import attach_random_probabilities, make_instance


def build_fixture(state_dir: str) -> dict:
    """Seed one state directory with injector-driven corruption.

    Returns the expectation: how many write-ahead-log records stay valid
    and how many plan entries are corrupt.
    """
    plan = FaultPlan(
        faults=(
            Fault(kind="torn-write", after_messages=3),
            Fault(kind="truncate-tail", after_messages=5),
            Fault(kind="bit-flip", after_messages=7),
        ),
        seed=BENCH_SEED,
    )
    injector = DiskFaultInjector(plan)
    wal = WriteAheadLog(
        os.path.join(state_dir, "wal"), fsync="always", fault_injector=injector
    )
    appended = 0

    def append_batch(count: int) -> None:
        nonlocal appended
        for _ in range(count):
            appended += 1
            wal.append(("update", "gate", (f"v{appended}", "w"), f"{appended}/16"))

    append_batch(2)   # segment 1: clean
    wal.rotate()
    append_batch(2)   # segment 2: second append torn
    wal.rotate()
    append_batch(2)   # segment 3: second append rolled back
    wal.rotate()
    append_batch(2)   # segment 4: second append bit-flipped
    wal.close()
    if injector.fired != ["torn-write", "truncate-tail", "bit-flip"]:
        raise AssertionError(f"fixture faults misfired: {injector.fired}")

    rng = _rng(77)
    graph = make_instance(GraphClass.UNION_DOWNWARD_TREE, True, 20, rng)
    instance = attach_random_probabilities(graph, rng, certain_fraction=0.2)
    solver = PHomSolver()
    queries = [make_instance(GraphClass.ONE_WAY_PATH, True, 3, _rng(78 + i))
               for i in range(2)]
    compiled = []
    for index, query in enumerate(queries):
        try:
            compiled.append((f"gate-key-{index}", solver.compile(query, instance)))
        except Exception:  # noqa: BLE001 - a query outside the instance's
            # label alphabet just compiles to a constant plan elsewhere; the
            # gate only needs two entries of any kind.
            continue
    if not compiled:  # pragma: no cover - generator guarantee
        raise AssertionError("fixture produced no compilable plans")
    digest = instance_digest(instance)
    clean_store = PlanStore(os.path.join(state_dir, "plans"))
    for key, plan_obj in compiled:
        clean_store.put(key, digest, "gate", plan_obj)
    # Rewrite the first entry through a bit-flip injector: silent media
    # corruption of a plan at rest.
    key, plan_obj = compiled[0]
    victim_path = clean_store.entry_path(plan_store_key(key, digest, "gate"))
    os.remove(victim_path)
    flipped = PlanStore(
        os.path.join(state_dir, "plans"),
        fault_injector=DiskFaultInjector(
            FaultPlan(faults=(Fault(kind="bit-flip"),), seed=BENCH_SEED)
        ),
    )
    flipped.put(key, digest, "gate", plan_obj)
    # Appends 4, 6 and 8 are damaged; everything else must replay.
    return {"valid_records": appended - 3, "corrupt_entries": 1,
            "total_entries": len(compiled)}


def main() -> int:
    state_dir = tempfile.mkdtemp(prefix="repro-corruption-gate-")
    try:
        expected = build_fixture(state_dir)
        failures = []

        out, err = io.StringIO(), io.StringIO()
        exit_code = cli_main(["store", "verify", state_dir], out, err)
        sys.stdout.write(out.getvalue())
        if exit_code != 1:
            failures.append(
                f"'repro store verify' exited {exit_code} on a corrupt "
                "state directory (expected 1)"
            )

        wal_report = scan_wal(os.path.join(state_dir, "wal"))
        if not wal_report.corruption_detected:
            failures.append("the WAL scan reported no corruption")
        if wal_report.records_replayed != expected["valid_records"]:
            failures.append(
                f"WAL scan replayed {wal_report.records_replayed} record(s), "
                f"expected exactly the {expected['valid_records']} clean ones"
            )
        if wal_report.corrupt_frames != 1:
            failures.append(
                f"WAL scan counted {wal_report.corrupt_frames} corrupt "
                "frame(s), expected 1 (the bit flip)"
            )
        if wal_report.torn_tail_bytes <= 0:
            failures.append("WAL scan missed the torn/truncated tails")

        store_report = PlanStore(os.path.join(state_dir, "plans")).verify()
        if store_report["corrupt"] != expected["corrupt_entries"]:
            failures.append(
                f"plan-store verify found {store_report['corrupt']} corrupt "
                f"entr(ies), expected {expected['corrupt_entries']}"
            )
        if store_report["entries"] != expected["total_entries"]:
            failures.append(
                f"plan-store verify saw {store_report['entries']} entr(ies), "
                f"expected {expected['total_entries']}"
            )

        if failures:
            for failure in failures:
                sys.stderr.write(f"gate failure: {failure}\n")
            return 1
        sys.stdout.write(
            "store-corruption gate passed: every seeded fault detected "
            f"({expected['valid_records']} clean records replayed, "
            "3 WAL corruptions + 1 corrupt plan entry caught)\n"
        )
        return 0
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
