"""Experiment E14 — Proposition 5.5: DWT and ⊔DWT queries collapse on polytree instances.

In the unlabeled setting a downward-tree query is equivalent to the one-way
path of its height.  The benchmark times the collapse plus evaluation for
branching queries of increasing size, and checks the equivalence claim
explicitly via homomorphism tests on the query graphs.
"""

from __future__ import annotations

import pytest

from repro.core.unlabeled_pt import (
    collapse_query_to_path_length,
    phom_unlabeled_tree_query_on_polytree,
)
from repro.graphs.builders import disjoint_union, unlabeled_path
from repro.graphs.generators import random_downward_tree, random_polytree
from repro.graphs.homomorphism import homomorphic_equivalent
from repro.probability.brute_force import brute_force_phom
from repro.workloads import attach_random_probabilities

from conftest import bench_rng


def _instance(size: int, seed: int = 55):
    rng = bench_rng(seed)
    return attach_random_probabilities(random_polytree(size, ("_",), rng), rng)


@pytest.mark.parametrize("query_size", [5, 20, 80])
def test_prop55_collapse_and_evaluate(benchmark, query_size):
    rng = bench_rng(query_size)
    query = random_downward_tree(query_size, ("_",), rng, prefix="q")
    instance = _instance(60)
    probability = benchmark(phom_unlabeled_tree_query_on_polytree, query, instance, "automaton")
    assert 0 <= probability <= 1


def test_prop55_union_queries(benchmark):
    rng = bench_rng(56)
    query = disjoint_union(
        [random_downward_tree(10, ("_",), rng, prefix="q") for _ in range(3)], prefix="q"
    )
    instance = _instance(60)
    probability = benchmark(phom_unlabeled_tree_query_on_polytree, query, instance)
    assert 0 <= probability <= 1


def test_prop55_equivalence_claim(benchmark):
    rng = bench_rng(57)
    queries = [random_downward_tree(8, ("_",), rng, prefix="q") for _ in range(5)]

    def check_equivalences():
        results = []
        for query in queries:
            length = collapse_query_to_path_length(query)
            results.append(homomorphic_equivalent(query, unlabeled_path(length)))
        return results

    assert all(benchmark(check_equivalences))


def test_prop55_matches_brute_force_on_small_inputs(benchmark):
    rng = bench_rng(58)
    query = random_downward_tree(4, ("_",), rng, prefix="q")
    instance = _instance(6, seed=59)

    def both():
        return (
            phom_unlabeled_tree_query_on_polytree(query, instance),
            brute_force_phom(query, instance),
        )

    collapsed, brute = benchmark(both)
    assert collapsed == brute
