#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figure 1 / Example 2.2).

Paper concept: the PHom problem itself — Figure 1 / Example 2.2, computed by
possible worlds, inclusion-exclusion over matches, and the dispatcher.

Builds a small probabilistic graph over the labels {R, S}, asks for the
probability that the conjunctive query ∃xyzt R(x,y) ∧ S(y,z) ∧ S(t,z) holds
(i.e. that the query graph -R-> -S-> <-S- has a homomorphism to the surviving
subgraph), and shows the different ways the library can answer:

* the brute-force possible-world oracle;
* inclusion–exclusion over query matches (the calculation done by hand in
  Example 2.2 of the paper);
* the dispatching solver, which reports which algorithm it used and why.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import warnings
from fractions import Fraction

from repro import DiGraph, ProbabilisticGraph, PHomSolver, two_way_path
from repro.exceptions import IntractableFallbackWarning
from repro.probability import brute_force_phom, brute_force_phom_over_matches


def build_instance() -> ProbabilisticGraph:
    """The probabilistic graph of Figure 1 (up to renaming), with exact rational probabilities."""
    graph = DiGraph()
    graph.add_edge("alice", "bob", "R")
    graph.add_edge("dave", "bob", "R")
    graph.add_edge("bob", "carol", "S")
    graph.add_edge("alice", "dave", "R")
    graph.add_edge("eve", "carol", "S")
    return ProbabilisticGraph(
        graph,
        {
            ("alice", "bob"): "0.1",
            ("dave", "bob"): "0.8",
            ("bob", "carol"): "0.7",
            ("alice", "dave"): 1,
            ("eve", "carol"): "0.05",
        },
    )


def build_query() -> DiGraph:
    """The query graph of Example 2.2: -R-> -S-> <-S- ."""
    return two_way_path([("R", "forward"), ("S", "forward"), ("S", "backward")], prefix="q")


def main() -> None:
    instance = build_instance()
    query = build_query()

    print("Instance:", instance)
    print("Query:   ", query)
    print()

    by_worlds = brute_force_phom(query, instance)
    by_matches = brute_force_phom_over_matches(query, instance)
    print(f"Pr(G ⇝ H) by possible-world enumeration : {by_worlds} = {float(by_worlds)}")
    print(f"Pr(G ⇝ H) by inclusion-exclusion        : {by_matches} = {float(by_matches)}")

    solver = PHomSolver()
    with warnings.catch_warnings():
        # The labeled (1WP, PT) cell is #P-hard, so the dispatcher warns that
        # it falls back to brute force on this instance; that is expected.
        warnings.simplefilter("ignore", IntractableFallbackWarning)
        result = solver.solve(query, instance)
    print(f"Dispatcher answer                       : {result.probability}")
    print(f"  method used     : {result.method}")
    print(f"  query class     : {result.query_class}")
    print(f"  instance class  : {result.instance_class}")
    print()

    paper_value = Fraction(7, 10) * (1 - Fraction(9, 10) * Fraction(2, 10))
    print(f"Paper's hand computation 0.7·(1 − 0.9·0.2) = {paper_value} = {float(paper_value)}")
    assert by_worlds == by_matches == result.probability == paper_value
    print("All four values agree — Example 2.2 reproduced.")


if __name__ == "__main__":
    main()
