#!/usr/bin/env python3
"""Print the paper's complexity classification (Tables 1, 2 and 3).

Paper concept: the combined-complexity dichotomy — Tables 1-3 derived from
the border-case propositions over the class lattice of Figure 2.

The tables are not hard-coded: every cell is derived from the border-case
propositions via the inclusion lattice of Figure 2, exactly as in the paper.
The script prints the three tables, the border cases they are derived from,
and a worked explanation for a couple of interesting cells.

Run with:  python examples/complexity_tables.py
"""

from __future__ import annotations

from repro.classification import Setting, base_results, classify_cell, format_table, table1, table2, table3
from repro.classification.tables import table_columns, table_rows
from repro.graphs.classes import GraphClass


def main() -> None:
    print("Border-case results the tables are derived from:")
    for result in base_results():
        print(
            f"  PHom_{'L' if result.setting is Setting.LABELED else '#L'}"
            f"({result.query_class}, {result.instance_class}) is {result.complexity}"
            f"  [{result.proposition}]"
        )
    print()

    print("Table 1 — unlabeled setting, disconnected queries")
    print(format_table(table1(), table_rows(1)))
    print()
    print("Table 2 — labeled setting, connected queries")
    print(format_table(table2(), table_rows(2)))
    print()
    print("Table 3 — unlabeled setting, connected queries")
    print(format_table(table3(), table_rows(3)))
    print()

    print("Two cells worth noticing:")
    labeled = classify_cell(GraphClass.DOWNWARD_TREE, GraphClass.DOWNWARD_TREE, Setting.LABELED)
    unlabeled = classify_cell(GraphClass.DOWNWARD_TREE, GraphClass.DOWNWARD_TREE, Setting.UNLABELED)
    print(
        f"  (DWT, DWT) is {labeled.complexity} with labels ({labeled.proposition}) but "
        f"{unlabeled.complexity} without ({unlabeled.proposition})."
    )
    frontier = classify_cell(GraphClass.TWO_WAY_PATH, GraphClass.POLYTREE, Setting.UNLABELED)
    tractable = classify_cell(GraphClass.DOWNWARD_TREE, GraphClass.POLYTREE, Setting.UNLABELED)
    print(
        f"  On polytree instances, DWT queries are {tractable.complexity} ({tractable.proposition}) "
        f"while 2WP queries are {frontier.complexity} ({frontier.proposition}): allowing two-wayness "
        "in the query lets it simulate labels."
    )
    print()
    print(f"Cells per table: {len(table_columns()) * len(table_rows(1))}")


if __name__ == "__main__":
    main()
