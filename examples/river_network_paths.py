#!/usr/bin/env python3
"""Long-path probabilities in an uncertain river / drainage network (Propositions 5.4 & 5.5).

Paper concept: Propositions 5.4 & 5.5 — unlabeled path/tree queries on
polytree instances via tree automata, provenance circuits and the direct DP.

A drainage network is naturally a polytree: the underlying undirected graph
of channels is (essentially) a tree, but flow directions vary and individual
channels may be dry in any given season.  A classic question is "what is the
probability that there exists a directed flow path of length at least m?" —
exactly the unlabeled 1WP query on a polytree instance of Proposition 5.4.

The example builds a random polytree network with per-channel flow
probabilities, sweeps the path length m, and also evaluates a branching
(downward-tree) query, which Proposition 5.5 collapses to its height.  Both
the tree-automaton/d-DNNF route and the direct dynamic program are run and
compared.

Run with:  python examples/river_network_paths.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro import ProbabilisticGraph
from repro.automata import build_longest_path_automaton, encode_polytree, provenance_circuit
from repro.core import (
    phom_unlabeled_path_on_polytree,
    phom_unlabeled_tree_query_on_polytree,
)
from repro.graphs.builders import unlabeled_path
from repro.graphs.generators import random_downward_tree, random_polytree
from repro.probability import brute_force_phom
from repro.workloads import attach_random_probabilities


def build_network(num_junctions: int, seed: int = 17) -> ProbabilisticGraph:
    """A random polytree with seasonal flow probabilities on each channel."""
    rng = random.Random(seed)
    network = random_polytree(num_junctions, ("_",), rng, prefix="junction")
    probabilities = {
        edge: Fraction(rng.randint(4, 10), 10) for edge in network.edges()
    }
    return ProbabilisticGraph(network, probabilities)


def main() -> None:
    network = build_network(num_junctions=80)
    print(f"River network instance: {network}")
    print()

    print("Probability of a directed flow path of length ≥ m:")
    for length in range(1, 9):
        via_automaton = phom_unlabeled_path_on_polytree(length, network, method="automaton")
        via_dp = phom_unlabeled_path_on_polytree(length, network, method="dp")
        assert via_automaton == via_dp
        print(f"  m = {length}:  {float(via_automaton):.6f}")
    print()

    # Inspect the compiled lineage circuit for m = 5.
    circuit = provenance_circuit(build_longest_path_automaton(5), encode_polytree(network))
    print(
        f"d-DNNF lineage circuit for m = 5: {circuit.num_gates()} gates, "
        f"{circuit.num_wires()} wires over {len(circuit.variables())} edge variables"
    )
    print()

    # A branching monitoring query (a downward tree) collapses to its height.
    rng = random.Random(23)
    tree_query = random_downward_tree(12, ("_",), rng, prefix="q")
    probability = phom_unlabeled_tree_query_on_polytree(tree_query, network)
    print(
        f"A branching DWT query with {tree_query.num_vertices()} nodes collapses to the path of "
        f"length {tree_query.longest_directed_path_length()}; probability = {float(probability):.6f}"
    )
    print()

    # Cross-check against brute force on a small network.
    small = build_network(num_junctions=7, seed=20)
    fast = phom_unlabeled_path_on_polytree(3, small, method="automaton")
    slow = brute_force_phom(unlabeled_path(3), small)
    print(f"Cross-check on a 7-junction network (m = 3): automaton={fast}, brute force={slow}")
    assert fast == slow
    print("Proposition 5.4 solver agrees with the brute-force oracle.")


if __name__ == "__main__":
    main()
