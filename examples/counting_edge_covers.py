#!/usr/bin/env python3
"""Hardness in action: counting edge covers through PHom (Proposition 3.3).

Paper concept: Proposition 3.3 — #P-hardness of PHom for disconnected labeled
path queries, by reduction from #Bipartite-Edge-Cover.

The #P-hardness of PHom for disconnected labeled path queries is shown by
reduction from #Bipartite-Edge-Cover.  This example runs the reduction
"forwards" as an (admittedly exotic) application: it counts the edge covers
of small bipartite graphs by building the ⊔1WP query and 1WP probabilistic
instance of Proposition 3.3 and reading the count off the homomorphism
probability.  It also prints the paper's classification for the relevant
cells, to make clear why no polynomial algorithm is offered here.

Run with:  python examples/counting_edge_covers.py
"""

from __future__ import annotations

from repro.classification import Setting, classify_cell
from repro.graphs.classes import GraphClass, graph_class_of
from repro.reductions import (
    BipartiteGraph,
    count_edge_covers,
    edge_covers_via_phom,
    prop33_reduction,
    random_bipartite_graph,
)


def describe(graph: BipartiteGraph, name: str) -> None:
    query, instance = prop33_reduction(graph)
    via_phom = edge_covers_via_phom(graph)
    direct = count_edge_covers(graph)
    print(f"{name}: |X|={graph.num_left}, |Y|={graph.num_right}, m={graph.num_edges}")
    print(f"  query  class: {graph_class_of(query)}  ({query.num_edges()} edges, "
          f"{len(query.weakly_connected_components())} components)")
    print(f"  instance class: {graph_class_of(instance.graph)}  ({instance.graph.num_edges()} edges)")
    print(f"  edge covers via PHom reduction : {via_phom}")
    print(f"  edge covers by direct counting : {direct}")
    assert via_phom == direct
    print()


def main() -> None:
    cell = classify_cell(GraphClass.UNION_ONE_WAY_PATH, GraphClass.ONE_WAY_PATH, Setting.LABELED)
    print(
        "Classification of the (⊔1WP, 1WP) labeled cell: "
        f"{cell.complexity} ({cell.proposition})"
    )
    print("— so the counts below are obtained by the exponential brute-force oracle.\n")

    # The bipartite graph of Figure 5.
    figure5 = BipartiteGraph(2, 3, ((1, 1), (1, 2), (2, 2), (2, 3)))
    describe(figure5, "Figure 5 graph")

    # The complete bipartite graph K_{2,2}.
    k22 = BipartiteGraph(2, 2, ((1, 1), (1, 2), (2, 1), (2, 2)))
    describe(k22, "K_{2,2}")

    # A random bipartite graph.
    describe(random_bipartite_graph(2, 2, 0.7, rng=5), "random bipartite graph")

    print("All counts obtained through the Proposition 3.3 reduction match the direct counter.")


if __name__ == "__main__":
    main()
