#!/usr/bin/env python3
"""Serving Zipf-skewed query traffic through the parallel QueryService.

Paper concept: the engineering layer above the dichotomy — every request is
routed by the classification of Tables 1-3 (tractable cells to their
polynomial algorithms, #P-hard cells to the (ε, δ) Karp-Luby sampler), and
the serving layer adds sharding, request coalescing and result caching on
top without changing a single answer.

The example registers two probabilistic instances with a
:class:`repro.service.QueryService`, replays a Zipf-skewed traffic trace
(a few hot queries, a long tail — the shape of real query logs) in
micro-batches of mixed precision, applies a live probability update halfway
through, and finally shows a #P-hard request answered by the seeded sampler.
The printed statistics show how much of the stream never reached a solver:
duplicates coalesced before dispatch plus worker-side result-cache hits.

Run with:  python examples/service_traffic.py
"""

from __future__ import annotations

from repro.graphs.classes import GraphClass
from repro.service import QueryService, ServiceRequest
from repro.workloads import (
    attach_random_probabilities,
    intractable_workload,
    make_instance,
    query_traffic_trace,
)


def build_instances():
    """Two tractable instances: a labeled ⊔DWT and a labeled ⊔2WP."""
    dwt = make_instance(GraphClass.UNION_DOWNWARD_TREE, True, 30, rng=1)
    twp = make_instance(GraphClass.UNION_TWO_WAY_PATH, True, 30, rng=2)
    return {
        "catalogue": attach_random_probabilities(dwt, rng=1),
        "event-log": attach_random_probabilities(twp, rng=2),
    }


def main() -> None:
    instances = build_instances()
    traces = {
        "catalogue": query_traffic_trace(
            60, 8, skew=1.2, query_class=GraphClass.ONE_WAY_PATH, rng=11
        ),
        "event-log": query_traffic_trace(
            60, 8, skew=1.2, query_class=GraphClass.TWO_WAY_PATH, rng=12
        ),
    }

    # num_workers=0 serves inline (same semantics, no subprocesses), which
    # keeps the example deterministic and instant; pass e.g. num_workers=4
    # to shard the instances across a real worker pool.
    with QueryService(num_workers=0, default_precision="exact") as service:
        for name, instance in instances.items():
            service.register_instance(instance, name)

        # Interleave the two streams into micro-batches of 12 requests, the
        # even positions answered on the float backend.
        requests = []
        for position, (a, b) in enumerate(
            zip(traces["catalogue"].queries(), traces["event-log"].queries())
        ):
            precision = "float" if position % 2 == 0 else "exact"
            requests.append(ServiceRequest(a, "catalogue", precision=precision))
            requests.append(ServiceRequest(b, "event-log", precision=precision))
        for start in range(0, len(requests), 12):
            batch = requests[start : start + 12]
            results = service.submit_many(batch)
            if start == 0:
                first = results[0]
                print(
                    f"first answer: Pr = {float(first):.6f} via {first.method} "
                    f"on worker {first.worker}"
                )
            if start == len(requests) // 2 // 12 * 12:
                # Halfway: a sensor reports a revised confidence. Plans
                # survive (they capture structure only); cached results for
                # the touched instance are invalidated automatically.
                edge = instances["catalogue"].uncertain_edges()[0]
                service.update_probability("catalogue", edge, "1/2")
                print(f"updated {edge} to 1/2 mid-stream")

        # A #P-hard request: the layered R.S instance of the sampling
        # benchmark. The dispatcher has no tractable route, so with
        # precision="approx" the Karp-Luby sampler answers under a pinned
        # seed — reproducibly, regardless of which worker runs it.
        hard = intractable_workload(10, rng=3)
        service.register_instance(hard.instance, "hard-cell")
        estimate = service.submit(
            hard.query, "hard-cell",
            precision="approx", epsilon=0.1, delta=0.05, seed=42,
        )
        print(f"#P-hard cell estimate: {float(estimate):.6f} ({estimate.notes})")

        stats = service.stats()
        print(
            f"served {stats.requests} requests in {stats.batches} batches: "
            f"{stats.coalesced} coalesced before dispatch "
            f"({stats.dedupe_hit_rate():.0%}), "
            f"{stats.result_cache_hits()} result-cache hits, "
            f"{stats.updates} live update"
        )
        plan_stats = stats.workers[0]["plan_cache"]
        print(
            f"worker plan cache: {plan_stats['compiles']} compiles, "
            f"{plan_stats['hits']} hits, {plan_stats['evictions']} evictions"
        )


if __name__ == "__main__":
    main()
