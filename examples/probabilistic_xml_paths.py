#!/usr/bin/env python3
"""Path queries over an uncertain XML-style document tree (Proposition 4.10).

Paper concept: Proposition 4.10 — labeled path queries on downward-tree
instances in polynomial time (the probabilistic-XML setting).

The paper points out that its richest tractable setting — labeled one-way
path queries on labeled downward-tree instances — is reminiscent of
probabilistic XML: the instance is a document tree whose edges (element
containment) may be uncertain, and the query is a label path such as
``catalog/product/review/author``.

This example builds a synthetic product-catalogue tree with uncertain
sub-elements (e.g. reviews extracted by a noisy wrapper), evaluates several
path queries with the polynomial Proposition 4.10 solver, and cross-checks
one of them against brute force.

Run with:  python examples/probabilistic_xml_paths.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro import DiGraph, ProbabilisticGraph, one_way_path
from repro.core import phom_labeled_path_on_dwt
from repro.probability import brute_force_phom


def build_catalogue(num_products: int, seed: int = 7) -> ProbabilisticGraph:
    """A downward tree: catalog → product → (price | review → author)."""
    rng = random.Random(seed)
    graph = DiGraph()
    probabilities = {}
    graph.add_vertex("catalog")
    for product_index in range(num_products):
        product = f"product{product_index}"
        edge = graph.add_edge("catalog", product, "product")
        probabilities[edge] = Fraction(1)
        price_edge = graph.add_edge(product, f"{product}/price", "price")
        # Prices scraped from a secondary source: sometimes missing.
        probabilities[price_edge] = Fraction(rng.randint(6, 10), 10)
        for review_index in range(rng.randint(0, 3)):
            review = f"{product}/review{review_index}"
            review_edge = graph.add_edge(product, review, "review")
            # Reviews come from a noisy information-extraction pipeline.
            probabilities[review_edge] = Fraction(rng.randint(3, 9), 10)
            author_edge = graph.add_edge(review, f"{review}/author", "author")
            probabilities[author_edge] = Fraction(rng.randint(5, 10), 10)
    return ProbabilisticGraph(graph, probabilities)


def main() -> None:
    catalogue = build_catalogue(num_products=12)
    print(f"Catalogue instance: {catalogue}")
    print()

    queries = {
        "catalog/product": ["product"],
        "catalog/product/price": ["product", "price"],
        "catalog/product/review": ["product", "review"],
        "catalog/product/review/author": ["product", "review", "author"],
    }
    for name, labels in queries.items():
        query = one_way_path(labels, prefix="q")
        probability = phom_labeled_path_on_dwt(query, catalogue, method="dp")
        via_lineage = phom_labeled_path_on_dwt(query, catalogue, method="lineage")
        assert probability == via_lineage
        print(f"Pr[ //{name} ] = {float(probability):.6f}   ({probability})")

    # Cross-check the deepest query against the exponential oracle on a
    # smaller catalogue (the brute-force oracle would not survive 12 products).
    small = build_catalogue(num_products=2, seed=11)
    deep_query = one_way_path(["product", "review", "author"], prefix="q")
    fast = phom_labeled_path_on_dwt(deep_query, small, method="dp")
    slow = brute_force_phom(deep_query, small)
    print()
    print(f"Cross-check on a 2-product catalogue: dp={fast}, brute force={slow}")
    assert fast == slow
    print("Proposition 4.10 solver agrees with the brute-force oracle.")


if __name__ == "__main__":
    main()
