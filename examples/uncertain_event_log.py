#!/usr/bin/env python3
"""Pattern queries over an uncertain event sequence (Proposition 4.11).

Paper concept: Proposition 4.11 — any connected query on two-way-path
instances in polynomial time, via windows, the X-property and beta-acyclic
lineage.

A two-way-path instance is just a labeled word whose letters (edges) may be
uncertain — for instance an event log reconstructed from noisy sensors, where
each transition between consecutive timestamps is annotated with the kind of
event that (probably) happened.  Proposition 4.11 says that *any* connected
conjunctive query — branching, cyclic, with both edge orientations — can be
evaluated on such instances in polynomial combined complexity, by testing the
query against every contiguous window with the X-property algorithm and then
evaluating a β-acyclic lineage.

This example builds a synthetic login/transfer/logout log and evaluates a few
pattern queries, including one that is *not* a path.

Run with:  python examples/uncertain_event_log.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro import DiGraph, ProbabilisticGraph, one_way_path
from repro.core import phom_connected_on_2wp
from repro.graphs.builders import two_way_path
from repro.probability import brute_force_phom

EVENTS = ("login", "transfer", "logout")


def build_log(length: int, seed: int = 3) -> ProbabilisticGraph:
    """A labeled one-way path t0 -e1-> t1 -e2-> ... with uncertain events."""
    rng = random.Random(seed)
    graph = DiGraph()
    probabilities = {}
    for step in range(length):
        label = rng.choice(EVENTS)
        edge = graph.add_edge(f"t{step}", f"t{step + 1}", label)
        # Sensor confidence for this event.
        probabilities[edge] = Fraction(rng.randint(5, 10), 10)
    return ProbabilisticGraph(graph, probabilities)


def main() -> None:
    log = build_log(length=40)
    print(f"Event-log instance: {log}")
    print()

    # A simple sequential pattern: a transfer immediately after a login.
    login_then_transfer = one_way_path(["login", "transfer"], prefix="q")
    # A branching pattern: some session step is followed by both a transfer
    # and a logout (the query graph is a little tree, not a path).
    fanout = DiGraph(edges=[("s", "a", "transfer"), ("s", "b", "logout")])
    # A two-way pattern: a transfer that is preceded and followed by a login
    # somewhere in the same contiguous window of surviving events.
    sandwich = two_way_path(
        [("login", "forward"), ("transfer", "forward"), ("login", "forward")], prefix="q"
    )

    for name, query in [
        ("login ; transfer", login_then_transfer),
        ("step with transfer and logout successors", fanout),
        ("login ; transfer ; login", sandwich),
    ]:
        probability = phom_connected_on_2wp(query, log, method="dp")
        lineage_value = phom_connected_on_2wp(query, log, method="lineage")
        assert probability == lineage_value
        print(f"Pr[ {name} ] = {float(probability):.6f}")

    # Cross-check against brute force on a short log.
    short_log = build_log(length=7, seed=1)
    fast = phom_connected_on_2wp(login_then_transfer, short_log, method="dp")
    slow = brute_force_phom(login_then_transfer, short_log)
    print()
    print(f"Cross-check on a 7-event log: dp={fast}, brute force={slow}")
    assert fast == slow
    print("Proposition 4.11 solver agrees with the brute-force oracle.")


if __name__ == "__main__":
    main()
