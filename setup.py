"""Setuptools shim so that editable installs work without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-build-isolation --no-use-pep517`` (the offline
installation path) has a legacy entry point.
"""

from setuptools import setup

setup()
