"""CSP substrate: the X-property and the tractable homomorphism check of Theorem 4.13.

Proposition 4.11 needs to decide, for every connected subpath ``C`` of a
two-way path instance, whether the (arbitrary, connected) query graph has a
homomorphism to ``C``.  Graph homomorphism is NP-complete in general, but
Gutjahr, Welzl & Woeginger (and Gottlob, Koch & Schulz for labeled graphs)
showed that when the target has the *X-property* with respect to some total
order, arc consistency decides the problem and the minimum-element
assignment is a witness homomorphism.  This subpackage implements the
property check and the algorithm.
"""

from repro.csp.xproperty import (
    has_x_property,
    x_property_homomorphism,
    x_property_has_homomorphism,
)

__all__ = [
    "has_x_property",
    "x_property_homomorphism",
    "x_property_has_homomorphism",
]
