"""The X-property (Definition 4.12) and the consistency algorithm of Theorem 4.13.

A labeled directed graph ``H`` has the X-property with respect to a total
order ``<`` of its vertices when, for every label ``R`` and all vertices
``n0 < n1`` and ``n2 < n3``, if ``n0 -R-> n3`` and ``n1 -R-> n2`` are edges
then ``n0 -R-> n2`` is an edge as well.  Equivalently, the set of ``R``-edges
is closed under taking coordinatewise minima.

Theorem 4.13 (Gottlob–Koch–Schulz, extending Gutjahr–Welzl–Woeginger) states
that homomorphism testing into an X-property target is decided by arc
consistency; the witness homomorphism maps every query vertex to the minimum
of its arc-consistent domain.  The correctness argument is exactly the
min-closure one: if ``(u, v)`` is a query edge with label ``R``, arc
consistency gives supporters ``(min D(u), y)`` and ``(x, min D(v))`` in the
``R``-edges of ``H``, and min-closure turns them into the edge
``(min D(u), min D(v))``.

Proposition 4.11 applies this with ``H`` a connected subpath of a two-way
path, which has the X-property vacuously (the premise of the implication can
never hold on a simple path without multi-edges).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.exceptions import ClassConstraintError, GraphError
from repro.graphs.digraph import DiGraph, Vertex
from repro.graphs.homomorphism import arc_consistent_domains


def _position_map(order: Sequence[Vertex], graph: DiGraph) -> Dict[Vertex, int]:
    positions = {v: i for i, v in enumerate(order)}
    missing = set(graph.vertices) - set(positions)
    if missing:
        raise GraphError(f"order is missing vertices {missing!r}")
    if len(positions) != len(order):
        raise GraphError("order contains duplicate vertices")
    return positions


def has_x_property(graph: DiGraph, order: Sequence[Vertex]) -> bool:
    """Whether ``graph`` has the X-property w.r.t. the given total vertex order.

    The check is the direct quadratic test over pairs of equally-labeled
    edges; it is only used for validation and in the test suite, never on
    the hot path of the solvers.
    """
    position = _position_map(order, graph)
    edges_by_label: Dict[str, List] = {}
    for edge in graph.edges():
        edges_by_label.setdefault(edge.label, []).append(edge)
    for label, edges in edges_by_label.items():
        for first in edges:
            for second in edges:
                n0, n3 = first.source, first.target
                n1, n2 = second.source, second.target
                if position[n0] < position[n1] and position[n2] < position[n3]:
                    if not graph.has_edge(n0, n2, label):
                        return False
    return True


def x_property_homomorphism(
    query: DiGraph,
    instance: DiGraph,
    order: Sequence[Vertex],
    verify_property: bool = False,
) -> Optional[Dict[Vertex, Vertex]]:
    """A homomorphism from ``query`` to ``instance``, or ``None``, via Theorem 4.13.

    Parameters
    ----------
    query:
        The query graph ``G`` (any directed labeled graph).
    instance:
        The target graph ``H``, assumed to have the X-property w.r.t.
        ``order``.
    order:
        A total order of the vertices of ``instance``.
    verify_property:
        When true, the X-property of the instance is checked first and a
        :class:`~repro.exceptions.ClassConstraintError` is raised if it does
        not hold.  The solvers of Proposition 4.11 pass targets that have
        the property by construction and skip the check.

    Notes
    -----
    If the instance does not have the X-property the minimum-element
    assignment may fail; in that case the function raises
    :class:`~repro.exceptions.ClassConstraintError` rather than returning a
    wrong answer.
    """
    if verify_property and not has_x_property(instance, order):
        raise ClassConstraintError("instance does not have the X-property w.r.t. the order")
    if query.num_vertices() == 0:
        raise GraphError("the empty query has no homomorphism semantics")
    position = _position_map(order, instance)
    domains = arc_consistent_domains(query, instance)
    if domains is None:
        return None
    assignment = {u: min(domain, key=lambda v: position[v]) for u, domain in domains.items()}
    for edge in query.edges():
        if not instance.has_edge(assignment[edge.source], assignment[edge.target], edge.label):
            raise ClassConstraintError(
                "minimum-element assignment is not a homomorphism; "
                "the instance presumably lacks the X-property w.r.t. the given order"
            )
    return assignment


def x_property_has_homomorphism(
    query: DiGraph, instance: DiGraph, order: Sequence[Vertex]
) -> bool:
    """Whether ``query ⇝ instance``, assuming the instance has the X-property."""
    return x_property_homomorphism(query, instance, order) is not None
