"""Hot-path benchmark: repeated queries against a shared probabilistic instance.

The ROADMAP's target workload is a server answering *many* queries against
the *same* instance.  This module measures exactly that, across the three
tractable dispatch routes of the paper, in four configurations:

* ``per_call_cold`` — the seed behaviour: every call rebuilds the instance
  object and a fresh solver, so class recognition, connectivity, edge
  ordering and the probability tables are recomputed from scratch per query
  (the seed had no caching whatsoever, so this models its per-call cost);
* ``per_call_cached`` — one shared solver and instance; the structural
  metadata caches introduced by this subsystem are warm after the first
  call;
* ``solve_many_exact`` — the batch API with the exact Fraction backend;
* ``solve_many_float`` — the batch API with the float backend, the
  fastest configuration that still meets a 1e-9 agreement contract.

Each run cross-checks the answers: every cached/batched exact result must be
*bit-identical* to the cold baseline, and every float result must agree with
exact to within ``1e-9``.  Results are written to ``BENCH_hotpaths.json`` so
the repository carries a recorded performance trajectory across PRs.

Run it with ``repro bench`` or ``python benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.solver import PHomSolver
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads.generators import attach_random_probabilities, make_instance, make_query
from repro import __version__

#: Seed shared with the paper-table benchmarks (PODS 2017 conference dates).
BENCH_SEED = 20170514

#: Agreement contract between the float and exact backends.
FLOAT_TOLERANCE = 1e-9


@dataclass
class BenchWorkload:
    """One repeated-query workload: a shared instance and a batch of queries."""

    name: str
    description: str
    instance: ProbabilisticGraph
    queries: List[DiGraph]


def _rng(offset: int):
    import random

    return random.Random(BENCH_SEED + offset)


def build_workloads(instance_size: int, num_queries: int) -> List[BenchWorkload]:
    """The three repeated-query workloads, one per tractable dispatch route."""
    workloads: List[BenchWorkload] = []

    # Labeled 1WP queries on a downward tree (Proposition 4.10).
    rng = _rng(1)
    dwt = make_instance(GraphClass.DOWNWARD_TREE, True, instance_size, rng)
    workloads.append(
        BenchWorkload(
            name="labeled-dwt",
            description=f"labeled 1WP queries on a {instance_size}-vertex downward tree",
            instance=attach_random_probabilities(dwt, rng),
            queries=[
                make_query(GraphClass.ONE_WAY_PATH, True, 2 + (i % 3), rng)
                for i in range(num_queries)
            ],
        )
    )

    # Connected labeled queries on a two-way path (Proposition 4.11).
    rng = _rng(2)
    two_wp = make_instance(GraphClass.TWO_WAY_PATH, True, max(instance_size // 2, 4), rng)
    workloads.append(
        BenchWorkload(
            name="connected-2wp",
            description=(
                f"connected labeled queries on a {max(instance_size // 2, 4)}-edge two-way path"
            ),
            instance=attach_random_probabilities(two_wp, rng),
            queries=[
                make_query(GraphClass.TWO_WAY_PATH, True, 2 + (i % 2), rng)
                for i in range(num_queries)
            ],
        )
    )

    # Unlabeled ⊔DWT queries on a disconnected union of downward trees
    # (Propositions 3.6 / 5.5 + Lemma 3.7): exercises the shared component
    # split of the batch API.
    rng = _rng(3)
    union_dwt = make_instance(GraphClass.UNION_DOWNWARD_TREE, False, instance_size, rng)
    workloads.append(
        BenchWorkload(
            name="unlabeled-union-dwt",
            description=(
                f"unlabeled tree queries on a {instance_size}-vertex union of downward trees"
            ),
            instance=attach_random_probabilities(union_dwt, rng),
            queries=[
                make_query(GraphClass.DOWNWARD_TREE, False, 2 + (i % 3), rng)
                for i in range(num_queries)
            ],
        )
    )
    return workloads


def _rebuild_instance(instance: ProbabilisticGraph) -> ProbabilisticGraph:
    """A cache-cold copy of the instance (fresh graph, fresh probability table)."""
    return ProbabilisticGraph(instance.graph.copy(), instance.probabilities())


def _time(fn: Callable[[], object], repeat: int) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return time.perf_counter() - start


def run_workload(workload: BenchWorkload, repeat: int) -> Dict[str, object]:
    """Time the four configurations on one workload and cross-check answers."""
    queries = workload.queries
    instance = workload.instance
    calls = len(queries) * repeat

    # Baseline: seed-style cold state on every call.
    def per_call_cold() -> List:
        results = []
        for query in queries:
            cold = _rebuild_instance(instance)
            results.append(PHomSolver().solve(query, cold).probability)
        return results

    baseline = per_call_cold()
    cold_seconds = _time(per_call_cold, repeat)

    # Shared solver + instance: warm metadata caches.
    solver = PHomSolver()
    cached = [solver.solve(q, instance).probability for q in queries]
    cached_seconds = _time(
        lambda: [solver.solve(q, instance) for q in queries], repeat
    )

    batch_exact = [r.probability for r in solver.solve_many(queries, instance)]
    batch_exact_seconds = _time(lambda: solver.solve_many(queries, instance), repeat)

    batch_float = [
        r.probability for r in solver.solve_many(queries, instance, precision="float")
    ]
    batch_float_seconds = _time(
        lambda: solver.solve_many(queries, instance, precision="float"), repeat
    )

    # Correctness contract: exact modes are bit-identical, float is 1e-9-close.
    if cached != baseline or batch_exact != baseline:
        raise AssertionError(f"exact results diverged on workload {workload.name}")
    for exact_value, float_value in zip(baseline, batch_float):
        if abs(float(exact_value) - float_value) > FLOAT_TOLERANCE:
            raise AssertionError(
                f"float backend diverged by more than {FLOAT_TOLERANCE} "
                f"on workload {workload.name}"
            )

    def mode(seconds: float) -> Dict[str, float]:
        return {
            "seconds": round(seconds, 6),
            "ops_per_sec": round(calls / seconds, 2) if seconds > 0 else float("inf"),
        }

    return {
        "name": workload.name,
        "description": workload.description,
        "num_queries": len(queries),
        "repeat": repeat,
        "instance_vertices": instance.graph.num_vertices(),
        "instance_edges": instance.graph.num_edges(),
        "modes": {
            "per_call_cold": mode(cold_seconds),
            "per_call_cached": mode(cached_seconds),
            "solve_many_exact": mode(batch_exact_seconds),
            "solve_many_float": mode(batch_float_seconds),
        },
        "speedup_vs_cold": {
            "per_call_cached": round(cold_seconds / cached_seconds, 2),
            "solve_many_exact": round(cold_seconds / batch_exact_seconds, 2),
            "solve_many_float": round(cold_seconds / batch_float_seconds, 2),
        },
        "float_max_abs_error": max(
            (abs(float(e) - f) for e, f in zip(baseline, batch_float)), default=0.0
        ),
    }


def run_benchmarks(
    instance_size: int = 60,
    num_queries: int = 40,
    repeat: int = 3,
) -> Dict[str, object]:
    """Run every workload and return the full benchmark report."""
    workload_reports = [
        run_workload(workload, repeat)
        for workload in build_workloads(instance_size, num_queries)
    ]
    overall = min(w["speedup_vs_cold"]["solve_many_float"] for w in workload_reports)
    return {
        "benchmark": "hotpaths",
        "version": __version__,
        "python": platform.python_version(),
        "config": {
            "instance_size": instance_size,
            "num_queries": num_queries,
            "repeat": repeat,
            "seed": BENCH_SEED,
            "float_tolerance": FLOAT_TOLERANCE,
        },
        "workloads": workload_reports,
        "summary": {
            "min_solve_many_float_speedup_vs_seed_per_call": overall,
            "contract": (
                "exact results bit-identical to per-call baseline; "
                f"float within {FLOAT_TOLERANCE}"
            ),
        },
    }


def write_report(report: Dict[str, object], path: str) -> None:
    """Serialise the report to disk (stable key order, trailing newline).

    The write is atomic — a temp file in the same directory, fsynced, then
    ``os.replace`` — so an interrupted benchmark run can never leave a
    truncated ``BENCH_*.json`` behind: the old report survives intact until
    the new one is durably complete.  Every suite's ``write_*_report``
    aliases this function.
    """
    directory = os.path.dirname(os.path.abspath(path))
    temporary = os.path.join(directory, f".{os.path.basename(path)}.tmp.{os.getpid()}")
    try:
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    except BaseException:
        if os.path.exists(temporary):
            os.remove(temporary)
        raise


def format_report(report: Dict[str, object]) -> str:
    """A terse human-readable rendering of the report."""
    lines = [f"hotpath benchmark (seed {report['config']['seed']})"]
    for workload in report["workloads"]:
        lines.append(f"  {workload['name']}: {workload['description']}")
        for name, numbers in workload["modes"].items():
            lines.append(
                f"    {name:<18} {numbers['ops_per_sec']:>12.1f} solves/sec"
            )
        lines.append(
            "    speedup vs cold    "
            + ", ".join(
                f"{k}={v}x" for k, v in workload["speedup_vs_cold"].items()
            )
        )
    summary = report["summary"]["min_solve_many_float_speedup_vs_seed_per_call"]
    lines.append(f"  minimum solve_many(float) speedup vs seed-style per-call: {summary}x")
    return "\n".join(lines)
