"""Probabilistic graphs (tuple-independent instances) and the brute-force oracle.

* :mod:`repro.probability.prob_graph` — the :class:`ProbabilisticGraph`
  representation ``(H, π)`` of Section 2, with exact rational probabilities
  and possible-world enumeration.
* :mod:`repro.probability.brute_force` — the exponential-time reference
  solver that sums the probabilities of the possible worlds satisfying the
  query.  Every polynomial algorithm in :mod:`repro.core` is tested against
  it.
"""

from repro.probability.prob_graph import ProbabilisticGraph, PossibleWorld
from repro.probability.brute_force import (
    brute_force_phom,
    brute_force_phom_over_matches,
)

__all__ = [
    "ProbabilisticGraph",
    "PossibleWorld",
    "brute_force_phom",
    "brute_force_phom_over_matches",
]
