"""Probabilistic graphs: the tuple-independent instances of the paper.

A probabilistic graph ``(H, π)`` (Section 2) annotates every edge of a
directed labeled graph ``H`` with a rational probability ``π(e) ∈ [0, 1]``.
It concisely represents the probability distribution over the subgraphs
``H' ⊆ H`` (possible worlds) obtained by keeping or deleting every edge
independently:

```
Pr(H') = Π_{e ∈ H'} π(e) × Π_{e ∉ H'} (1 − π(e))
```

All probabilities are stored as :class:`fractions.Fraction` so that the
library computes *exact* answers; the test suite can therefore compare the
polynomial-time algorithms against the brute-force oracle with equality
rather than with numerical tolerances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from types import MappingProxyType
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.exceptions import GraphError, ProbabilityError
from repro.graphs.digraph import DiGraph, Edge, Vertex

ProbabilityLike = Union[int, float, str, Fraction]


def as_probability(value: ProbabilityLike) -> Fraction:
    """Convert a user-supplied probability into an exact :class:`Fraction` in [0, 1].

    Floats are converted through their decimal string representation (so
    ``0.1`` becomes exactly ``1/10`` rather than the binary float closest to
    it), which matches the paper's convention that probabilities are
    rational numbers given in the input.
    """
    if isinstance(value, Fraction):
        probability = value
    elif isinstance(value, bool):
        raise ProbabilityError(f"probabilities must be numbers, got {value!r}")
    elif isinstance(value, int):
        probability = Fraction(value)
    elif isinstance(value, float):
        if not math.isfinite(value):
            raise ProbabilityError(f"probability must be finite, got {value!r}")
        probability = Fraction(str(value))
    elif isinstance(value, str):
        try:
            probability = Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise ProbabilityError(f"cannot interpret {value!r} as a probability: {exc}") from None
    else:
        raise ProbabilityError(f"cannot interpret {value!r} as a probability")
    if probability < 0 or probability > 1:
        raise ProbabilityError(f"probability {probability} is outside [0, 1]")
    return probability


@dataclass(frozen=True)
class PossibleWorld:
    """One possible world of a probabilistic graph: a subgraph and its probability."""

    graph: DiGraph
    probability: Fraction
    kept_edges: Tuple[Edge, ...]


class ProbabilisticGraph:
    """A probabilistic instance graph ``(H, π)``.

    Parameters
    ----------
    graph:
        The underlying directed labeled graph ``H``.
    probabilities:
        Mapping from edges to probabilities.  Keys may be :class:`Edge`
        objects or ``(source, target)`` pairs.  Edges missing from the
        mapping receive ``default``.
    default:
        Probability assigned to unmapped edges (default 1, i.e. certain).
    """

    def __init__(
        self,
        graph: DiGraph,
        probabilities: Optional[Mapping] = None,
        default: ProbabilityLike = 1,
    ) -> None:
        self._graph = graph.copy()
        default_probability = as_probability(default)
        self._probabilities: Dict[Edge, Fraction] = {
            edge: default_probability for edge in self._graph.edge_set()
        }
        if probabilities:
            for key, value in probabilities.items():
                edge = self._resolve_edge(key)
                self._probabilities[edge] = as_probability(value)
        # The instance graph never changes after construction; freezing it
        # makes its memoised metadata (class recognition, components, edge
        # order) shareable across every query answered on this instance.
        self._graph.freeze()
        self._view: Mapping[Edge, Fraction] = MappingProxyType(self._probabilities)
        self._float_probabilities: Optional[Mapping[Edge, float]] = None
        self._components: Optional[List["ProbabilisticGraph"]] = None
        #: Set on components handed out by a parent's ``connected_components``
        #: cache, so mutating a shared component detaches the parent's cache
        #: instead of silently corrupting the parent's future answers.
        self._component_owner: Optional["ProbabilisticGraph"] = None

    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the graph and the exact probability table.

        The read-only views (``mappingproxy`` objects cannot be pickled), the
        memoised float table and the component split are all rebuilt lazily
        on the receiving side, and the component-owner backlink is dropped —
        an unpickled instance is an independent copy, not a live component of
        its original parent.
        """
        return {"_graph": self._graph, "_probabilities": self._probabilities}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._graph = state["_graph"]
        self._probabilities = state["_probabilities"]
        self._view = MappingProxyType(self._probabilities)
        self._float_probabilities = None
        self._components = None
        self._component_owner = None

    def _resolve_edge(self, key) -> Edge:
        if isinstance(key, Edge):
            candidate = self._graph.get_edge(key.source, key.target)
            if candidate.label != key.label:
                raise GraphError(f"edge {key!r} does not match the instance edge {candidate!r}")
            return candidate
        if isinstance(key, tuple) and len(key) == 2:
            return self._graph.get_edge(key[0], key[1])
        raise GraphError(f"cannot interpret {key!r} as an edge of the instance")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The underlying graph ``H`` (do not mutate)."""
        return self._graph

    def probability(self, edge: Union[Edge, Tuple[Vertex, Vertex]]) -> Fraction:
        """The probability ``π(e)`` of an edge."""
        return self._probabilities[self._resolve_edge(edge)]

    def probabilities(self) -> Dict[Edge, Fraction]:
        """A copy of the full probability assignment."""
        return dict(self._probabilities)

    def probabilities_view(self) -> Mapping[Edge, Fraction]:
        """A read-only *view* of the probability assignment (no copy).

        This is what the solvers use on their hot paths; it reflects later
        :meth:`set_probability` updates.  Use :meth:`probabilities` for an
        independent snapshot.
        """
        return self._view

    def float_probabilities(self) -> Mapping[Edge, float]:
        """The probability assignment truncated to floats (memoised, read-only).

        Backs the ``precision="float"`` fast path; the table is rebuilt
        lazily after :meth:`set_probability`.
        """
        if self._float_probabilities is None:
            self._float_probabilities = MappingProxyType(
                {edge: float(p) for edge, p in self._probabilities.items()}
            )
        return self._float_probabilities

    def set_probability(self, edge, value: ProbabilityLike) -> None:
        """Update the probability of one edge."""
        self._probabilities[self._resolve_edge(edge)] = as_probability(value)
        self._float_probabilities = None
        self._components = None
        if self._component_owner is not None:
            # This instance was shared through a parent's component cache;
            # detach so the parent rebuilds fresh components next time.
            self._component_owner._components = None
            self._component_owner = None

    def edges(self) -> List[Edge]:
        """All edges of the instance, in a deterministic order."""
        return self._graph.edges()

    def uncertain_edges(self) -> List[Edge]:
        """Edges with probability strictly between 0 and 1."""
        return [e for e in self.edges() if 0 < self._probabilities[e] < 1]

    def certain_edges(self) -> List[Edge]:
        """Edges with probability exactly 1 (present in every non-null world)."""
        return [e for e in self.edges() if self._probabilities[e] == 1]

    def impossible_edges(self) -> List[Edge]:
        """Edges with probability exactly 0 (absent from every non-null world)."""
        return [e for e in self.edges() if self._probabilities[e] == 0]

    def num_possible_worlds(self) -> int:
        """Number of possible worlds (2 to the number of edges)."""
        return 2 ** self._graph.num_edges()

    def num_nonzero_worlds(self) -> int:
        """Number of possible worlds with non-zero probability."""
        return 2 ** len(self.uncertain_edges())

    # ------------------------------------------------------------------
    # possible worlds
    # ------------------------------------------------------------------
    def world_probability(self, kept_edges: Iterable[Edge]) -> Fraction:
        """The probability of the possible world keeping exactly ``kept_edges``."""
        kept = set(kept_edges)
        unknown = kept - self._graph.edge_set()
        if unknown:
            raise GraphError(f"edges {unknown!r} are not edges of the instance")
        result = Fraction(1)
        for edge, probability in self._probabilities.items():
            result *= probability if edge in kept else (1 - probability)
        return result

    def possible_worlds(self, skip_zero_probability: bool = True) -> Iterator[PossibleWorld]:
        """Enumerate possible worlds (exponentially many).

        When ``skip_zero_probability`` is true (the default), edges with
        probability 1 are always kept and edges with probability 0 always
        dropped, so only worlds of non-zero probability are produced; the
        produced probabilities then sum to 1.
        """
        if skip_zero_probability:
            always = [e for e in self.edges() if self._probabilities[e] == 1]
            free = self.uncertain_edges()
        else:
            always = []
            free = self.edges()
        for choices in product((False, True), repeat=len(free)):
            kept = list(always) + [e for e, keep in zip(free, choices) if keep]
            probability = Fraction(1)
            for edge, keep in zip(free, choices):
                p = self._probabilities[edge]
                probability *= p if keep else (1 - p)
            yield PossibleWorld(
                graph=self._graph.subgraph_with_edges(kept),
                probability=probability,
                kept_edges=tuple(kept),
            )

    # ------------------------------------------------------------------
    # restriction (used by Lemma 3.7)
    # ------------------------------------------------------------------
    def restrict_to_component(self, vertices: Iterable[Vertex]) -> "ProbabilisticGraph":
        """The probabilistic graph induced by a set of vertices.

        Edge probabilities are preserved.  Used to split a disconnected
        instance into its connected components (Lemma 3.7).
        """
        component = self._graph.induced_component(vertices)
        # Edges compare by value, so the component's edges index the parent's
        # probability table directly — no per-edge get_edge round trip.
        probabilities = {
            edge: self._probabilities[edge] for edge in component.edge_set()
        }
        return ProbabilisticGraph(component, probabilities)

    def connected_components(self) -> List["ProbabilisticGraph"]:
        """The probabilistic graphs induced by each weakly connected component.

        The split is memoised: repeated queries against the same instance
        (for instance through :meth:`PHomSolver.solve_many`) share one set of
        component instances instead of re-running the BFS and re-copying the
        probability tables per query.  The cache is dropped on
        :meth:`set_probability`.
        """
        if self._components is None:
            components = [
                self.restrict_to_component(component)
                for component in self._graph.weakly_connected_components()
            ]
            for component in components:
                component._component_owner = self
            self._components = components
        return list(self._components)

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def with_uniform_probability(
        cls, graph: DiGraph, probability: ProbabilityLike
    ) -> "ProbabilisticGraph":
        """A probabilistic graph where every edge has the same probability."""
        return cls(graph, probabilities=None, default=probability)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProbabilisticGraph(|V|={self._graph.num_vertices()}, "
            f"|E|={self._graph.num_edges()}, "
            f"uncertain={len(self.uncertain_edges())})"
        )
