"""Exponential-time reference solvers for the probabilistic homomorphism problem.

``PHom`` asks for ``Pr(G ⇝ H) = Σ_{H' ⊆ H, G ⇝ H'} Pr(H')``.  The paper
shows this is #P-hard in general, so the only *generally* correct algorithms
are exponential.  This module provides two of them:

* :func:`brute_force_phom` enumerates possible worlds and tests each one for
  a homomorphism — a direct transcription of the definition;
* :func:`brute_force_phom_over_matches` enumerates the minimal matches of the
  query and applies inclusion–exclusion over their edge sets, which is often
  much faster when the query has few matches (this is the calculation used in
  Example 2.2).

Both are used as oracles by the test suite; every polynomial-time solver in
:mod:`repro.core` must agree with them exactly.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Dict, FrozenSet, List, Set

from repro.graphs.digraph import DiGraph, Edge
from repro.graphs.homomorphism import enumerate_homomorphisms, has_homomorphism
from repro.numeric import EXACT, Number, NumericContext
from repro.probability.prob_graph import ProbabilisticGraph


def brute_force_phom(
    query: DiGraph, instance: ProbabilisticGraph, context: NumericContext = EXACT
) -> Number:
    """``Pr(query ⇝ instance)`` by possible-world enumeration.

    Runs in time ``O(2^u · hom(query, world))`` where ``u`` is the number of
    uncertain edges; only usable on small instances, but unconditionally
    correct.  World probabilities are accumulated in the requested numeric
    backend (exact rationals by default).
    """
    if query.num_vertices() == 0:
        return context.zero
    total = context.zero
    for world in instance.possible_worlds():
        if world.probability == 0:
            continue
        if has_homomorphism(query, world.graph):
            total += context.convert(world.probability)
    return total


def _minimal_match_edge_sets(query: DiGraph, instance: ProbabilisticGraph) -> List[FrozenSet[Edge]]:
    """The distinct edge sets of query matches in the full instance graph."""
    instance_graph = instance.graph
    edge_sets: Set[FrozenSet[Edge]] = set()
    for hom in enumerate_homomorphisms(query, instance_graph):
        edges = frozenset(
            instance_graph.get_edge(hom[e.source], hom[e.target]) for e in query.edges()
        )
        edge_sets.add(edges)
    # Keep only inclusion-minimal edge sets: any world containing a superset
    # also contains the subset, so non-minimal sets are redundant for the
    # union event (and dropping them speeds up inclusion-exclusion).
    minimal: List[FrozenSet[Edge]] = []
    for candidate in sorted(edge_sets, key=len):
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return minimal


def brute_force_phom_over_matches(
    query: DiGraph, instance: ProbabilisticGraph, context: NumericContext = EXACT
) -> Number:
    """``Pr(query ⇝ instance)`` by inclusion–exclusion over match edge sets.

    The event ``query ⇝ world`` is the union, over matches ``M`` of the query
    in the instance, of the events "all edges of ``M`` are present".
    Inclusion–exclusion over the (inclusion-minimal) match edge sets gives the
    probability of the union.  Exponential in the number of matches.
    """
    if query.num_vertices() == 0:
        return context.zero
    matches = _minimal_match_edge_sets(query, instance)
    if not matches:
        return context.zero
    probabilities = context.instance_probabilities(instance)
    one = context.one
    total = context.zero
    for size in range(1, len(matches) + 1):
        sign = one if size % 2 == 1 else -one
        for subset in combinations(matches, size):
            union_edges: Set[Edge] = set()
            for match in subset:
                union_edges |= match
            term = one
            for edge in union_edges:
                term *= probabilities[edge]
            total += sign * term
    return total
