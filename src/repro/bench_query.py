"""Query-frontend benchmark: core minimization as a dispatch-level speedup.

The paper's classification is driven by the *shape* of the query graph, so a
query written with redundant atoms can land in a #P-hard cell even though
its homomorphic core sits in a polynomial one.  This suite measures what the
:mod:`repro.query` frontend buys on exactly those queries:

* ``minimization`` — for redundant-atom queries over tractable 1WP cores
  (:func:`repro.workloads.generators.redundant_query_workload`) on
  downward-tree instances of growing size, the wall-clock of the minimizing
  dispatcher (which folds the query and runs the polynomial DWT route)
  versus the non-minimizing dispatcher's exact brute force and Karp–Luby
  sampling; the minimized exact answer is asserted **equal** (as a bit-exact
  rational) to the unminimized brute-force oracle on every workload;
* ``overhead`` — the cost of the frontend itself: parse time, fold-search
  time, and the steady-state cost of solving a *string* query per call under
  plan caching (parse + minimize + cached-plan evaluate) against the cold
  compile, showing the frontend amortizes;
* ``coalescing`` — a service trace of syntactically distinct string queries
  with equal cores, replayed through an inline
  :class:`~repro.service.QueryService`: the recorded stats verify that
  :func:`repro.plan.canonical_query_key` merges the variants (distinct
  computations == distinct cores, not distinct spellings).

Results are written to ``BENCH_query.json``; run with ``repro bench query``
or ``python benchmarks/bench_query.py``.  ``--min-minimization-speedup``
turns regressions into a non-zero exit code (the CI smoke gate).
"""

from __future__ import annotations

import platform
import time
import warnings
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.bench import BENCH_SEED, write_report
from repro.approx import make_rng
from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning
from repro.graphs.classes import GraphClass, graph_in_class
from repro.query import format_query, parse_query_graph, query_core
from repro.service import QueryService, ServiceRequest
from repro.workloads.generators import (
    attach_random_probabilities,
    make_instance,
    redundant_query_workload,
)
from repro import __version__

#: Instance sizes (vertices of the DWT instance) for the speedup ladder.
MINIMIZATION_INSTANCE_SIZES = (10, 14, 18)
SMOKE_INSTANCE_SIZES = (8, 10)

#: Redundant atoms added on top of the 2-edge 1WP core.
REDUNDANCY = 4
SMOKE_REDUNDANCY = 3

#: Calls used to measure the steady-state string-query cost.
OVERHEAD_CALLS = 200
SMOKE_OVERHEAD_CALLS = 50

#: Coalescing trace shape: distinct cores x spelling variants x repetitions.
TRACE_CORES = 4
TRACE_VARIANTS = 3
TRACE_REPEATS = 5


def _non_path_dwt_instance(size: int, rng) -> object:
    """A labeled DWT instance that is *not* a union of two-way paths.

    On a path-shaped instance every connected query is answered by the
    Proposition 4.11 route, minimized or not — which would let the
    unminimized dispatcher off the #P-hard hook and void the comparison.
    """
    while True:
        graph = make_instance(GraphClass.DOWNWARD_TREE, True, size, rng)
        if not graph_in_class(graph, GraphClass.UNION_TWO_WAY_PATH):
            return attach_random_probabilities(graph, rng, certain_fraction=0.2)


def _timed(callable_):
    start = time.perf_counter()
    value = callable_()
    return value, time.perf_counter() - start


def run_query_benchmarks(
    instance_sizes: Optional[Sequence[int]] = None,
    seed: int = BENCH_SEED,
    smoke: bool = False,
) -> Dict[str, object]:
    """Run the full suite and return the JSON-serialisable report."""
    if instance_sizes is None:
        instance_sizes = SMOKE_INSTANCE_SIZES if smoke else MINIMIZATION_INSTANCE_SIZES
    redundancy = SMOKE_REDUNDANCY if smoke else REDUNDANCY

    rows: List[Dict[str, object]] = []
    for size in instance_sizes:
        rng = make_rng(seed + size)
        workload = redundant_query_workload(
            core_class=GraphClass.ONE_WAY_PATH,
            core_size=2,
            redundancy=redundancy,
            instance_size=size,
            labeled=True,
            rng=rng,
        )
        # Swap in an instance guaranteed to keep the unminimized dispatcher
        # on the #P-hard fallback (see _non_path_dwt_instance).
        instance = _non_path_dwt_instance(size, rng)
        query = workload.query
        core = query_core(query)

        # Unminimized exact oracle: the dispatcher as it was before this
        # frontend existed, brute-forcing the #P-hard cell.
        plain = PHomSolver(minimize_queries=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntractableFallbackWarning)
            oracle_result, brute_seconds = _timed(lambda: plain.solve(query, instance))
        if oracle_result.method != "brute-force-worlds":
            raise AssertionError(
                f"expected the unminimized dispatcher to brute-force the "
                f"redundant query, got {oracle_result.method!r}"
            )

        # Unminimized sampling: what PR 3 offered for this cell.
        sampler = PHomSolver(
            minimize_queries=False, precision="approx",
            epsilon=0.1, delta=0.05, seed=seed,
        )
        sampled_result, sampling_seconds = _timed(lambda: sampler.solve(query, instance))

        # Minimized dispatch (fresh solver: the fold search and plan compile
        # are both paid inside the timing).
        minimizing = PHomSolver()
        minimized_result, minimized_seconds = _timed(
            lambda: minimizing.solve(query, instance)
        )
        if minimized_result.method == "brute-force-worlds":
            raise AssertionError(
                "expected the minimizing dispatcher to reach a polynomial route"
            )
        if minimized_result.probability != oracle_result.probability:
            raise AssertionError(
                f"minimized exact answer {minimized_result.probability} differs "
                f"from the unminimized oracle {oracle_result.probability}"
            )
        rows.append(
            {
                "instance_size": size,
                "instance_uncertain_edges": len(instance.uncertain_edges()),
                "query": format_query(query),
                "core": format_query(core),
                "query_atoms": query.num_edges(),
                "core_atoms": core.num_edges(),
                "minimized_method": minimized_result.method,
                "exact": str(oracle_result.probability),
                "exact_float": float(oracle_result.probability),
                "estimate_float": float(sampled_result.probability),
                "exact_equal": minimized_result.probability == oracle_result.probability,
                "brute_force_seconds": brute_seconds,
                "karp_luby_seconds": sampling_seconds,
                "minimized_seconds": minimized_seconds,
                "speedup_vs_brute_force": (
                    brute_seconds / minimized_seconds if minimized_seconds else None
                ),
                "speedup_vs_karp_luby": (
                    sampling_seconds / minimized_seconds if minimized_seconds else None
                ),
            }
        )

    overhead = _overhead_measurements(
        SMOKE_OVERHEAD_CALLS if smoke else OVERHEAD_CALLS, seed, smoke
    )
    coalescing = _coalescing_trace(seed, smoke)

    return {
        "suite": "query",
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "seed": seed,
            "smoke": smoke,
            "redundancy": redundancy,
            "contract": (
                "minimized dispatch answers are bit-identical rationals to "
                "the unminimized brute-force oracle; speedups compare one "
                "cold solve each"
            ),
        },
        "minimization": rows,
        "overhead": overhead,
        "coalescing": coalescing,
    }


def _overhead_measurements(calls: int, seed: int, smoke: bool) -> Dict[str, object]:
    """Parse/minimize cost versus the plan-cache steady state."""
    rng = make_rng(seed)
    text = "r1 -[R]-> q1, R(q0, q1), S(q1, q2), S(r2, q2)"
    instance = _non_path_dwt_instance(8 if smoke else 12, rng)

    graph, parse_seconds = _timed(lambda: parse_query_graph(text))
    _core, minimize_seconds = _timed(lambda: query_core(graph))

    solver = PHomSolver()
    _first, cold_seconds = _timed(lambda: solver.solve(text, instance))
    start = time.perf_counter()
    for _ in range(calls):
        solver.solve(text, instance)  # re-parses; hits the plan cache
    string_call_seconds = (time.perf_counter() - start) / calls
    shared = parse_query_graph(text)
    solver.solve(shared, instance)  # warm the memoised core on the object
    start = time.perf_counter()
    for _ in range(calls):
        solver.solve(shared, instance)
    graph_call_seconds = (time.perf_counter() - start) / calls
    return {
        "query": text,
        "calls": calls,
        "parse_seconds": parse_seconds,
        "minimize_seconds": minimize_seconds,
        "cold_solve_seconds": cold_seconds,
        "string_steady_seconds_per_call": string_call_seconds,
        "graph_steady_seconds_per_call": graph_call_seconds,
        "frontend_overhead_ratio": (
            string_call_seconds / graph_call_seconds if graph_call_seconds else None
        ),
        "amortized_vs_cold": (
            cold_seconds / string_call_seconds if string_call_seconds else None
        ),
    }


def _coalescing_trace(seed: int, smoke: bool) -> Dict[str, object]:
    """Replay spelling variants through a service; verify core coalescing."""
    rng = make_rng(seed + 1)
    instance = _non_path_dwt_instance(8 if smoke else 12, rng)
    labels = sorted(instance.graph.labels())
    first, second = labels[0], labels[-1]
    cores = [
        f"{first}(a, b)",
        f"{first}(a, b), {second}(b, c)",
        f"a -[{first}{{2}}]-> b",
        f"{second}(a, b), {second}(b, c)",
    ][: TRACE_CORES]

    def variants(core_text: str) -> List[str]:
        graph = parse_query_graph(core_text)
        renamed = {v: f"v{i}" for i, v in enumerate(sorted(graph.vertices))}
        spelled = ", ".join(
            f"{e.label}({renamed[e.source]}, {renamed[e.target]})"
            for e in graph.edges()
        )
        edge = graph.edges()[0]
        redundant = f"{core_text}, {edge.label}(extra, {edge.target})"
        return [core_text, spelled, redundant][:TRACE_VARIANTS]

    requests = []
    for core_text in cores:
        for variant in variants(core_text):
            for _ in range(TRACE_REPEATS):
                requests.append(variant)
    rng.shuffle(requests)

    with QueryService(num_workers=0) as service:
        instance_id = service.register_instance(instance)
        batch = [
            ServiceRequest(query=text, instance_id=instance_id, precision="exact")
            for text in requests
        ]
        results = service.submit_many(batch)
        stats = service.stats()

    distinct_keys = {
        request.coalesce_key(default_precision="exact") for request in batch
    }
    if len(distinct_keys) > len(cores):
        raise AssertionError(
            f"canonical_query_key left {len(distinct_keys)} distinct keys for "
            f"{len(cores)} distinct cores; spelling variants did not coalesce"
        )
    # Spelling variants of one core must also report identical probabilities.
    by_key: Dict[object, Fraction] = {}
    for request, outcome in zip(batch, results):
        key = request.coalesce_key(default_precision="exact")
        previous = by_key.setdefault(key, outcome.probability)
        if previous != outcome.probability:
            raise AssertionError("coalesced variants returned different answers")
    return {
        "requests": len(requests),
        "distinct_cores": len(cores),
        "variants_per_core": TRACE_VARIANTS,
        "repeats": TRACE_REPEATS,
        "distinct_coalesce_keys": len(distinct_keys),
        "coalesced": stats.coalesced,
        "verified": True,
    }


def check_query_thresholds(
    report: Dict[str, object], min_minimization_speedup: float = 0.0
) -> None:
    """Raise ``AssertionError`` when the recorded run violates the gates.

    ``min_minimization_speedup`` applies to the *largest* instance of the
    ladder, against the cheaper of the two unminimized baselines (brute
    force and Karp–Luby) — the honest comparison, since an operator would
    pick whichever baseline is faster.
    """
    rows = report["minimization"]
    for row in rows:
        if not row["exact_equal"]:
            raise AssertionError(
                f"minimized answer on the size-{row['instance_size']} workload "
                f"is not bit-identical to the unminimized oracle"
            )
    if min_minimization_speedup > 0 and rows:
        largest = rows[-1]
        speedup = min(
            largest["speedup_vs_brute_force"] or 0.0,
            largest["speedup_vs_karp_luby"] or 0.0,
        )
        if speedup < min_minimization_speedup:
            raise AssertionError(
                f"minimization speedup on the size-{largest['instance_size']} "
                f"workload is {speedup:.1f}x, below the required "
                f"{min_minimization_speedup}x"
            )
    if not report["coalescing"]["verified"]:
        raise AssertionError("service-trace coalescing was not verified")


def format_query_report(report: Dict[str, object]) -> str:
    """A human-readable summary of the recorded run."""
    lines = [
        "query frontend benchmark (core minimization vs as-written dispatch)",
        f"  seed={report['meta']['seed']}, redundancy={report['meta']['redundancy']}",
    ]
    for row in report["minimization"]:
        lines.append(
            f"  |H|={row['instance_size']:>3} ({row['instance_uncertain_edges']} "
            f"uncertain edges): {row['query_atoms']} atoms -> "
            f"{row['core_atoms']} ({row['minimized_method']}) | "
            f"brute {row['brute_force_seconds']:.3f}s, "
            f"karp-luby {row['karp_luby_seconds']:.3f}s vs minimized "
            f"{row['minimized_seconds']:.4f}s = "
            f"{row['speedup_vs_brute_force']:.0f}x / "
            f"{row['speedup_vs_karp_luby']:.0f}x"
        )
    overhead = report["overhead"]
    lines.append(
        f"  frontend overhead: parse {overhead['parse_seconds'] * 1e6:.0f}us, "
        f"minimize {overhead['minimize_seconds'] * 1e6:.0f}us; steady-state "
        f"string solve {overhead['string_steady_seconds_per_call'] * 1e6:.0f}us/call "
        f"({overhead['frontend_overhead_ratio']:.1f}x the shared-graph call, "
        f"{overhead['amortized_vs_cold']:.1f}x faster than a cold compile)"
    )
    coalescing = report["coalescing"]
    lines.append(
        f"  coalescing: {coalescing['requests']} requests over "
        f"{coalescing['distinct_cores']} cores x "
        f"{coalescing['variants_per_core']} spellings -> "
        f"{coalescing['distinct_coalesce_keys']} coalesce key(s), "
        f"{coalescing['coalesced']} request(s) coalesced"
    )
    return "\n".join(lines)


def write_query_report(report: Dict[str, object], path: str) -> None:
    """Serialise the report (shared JSON writer with the other suites)."""
    write_report(report, path)
