"""Hypergraphs, β-leaves and β-acyclicity (Definition 4.7).

A hypergraph is a finite vertex set together with a set of non-empty
hyperedges.  A vertex is a *β-leaf* when the hyperedges containing it are
totally ordered by inclusion; a *β-elimination order* repeatedly removes
β-leaves (dropping emptied hyperedges) until no hyperedge remains, and a
hypergraph is *β-acyclic* when such an order exists.

β-acyclicity is the structural property that makes the lineages of
Propositions 4.10 and 4.11 tractable (via Theorem 4.9).  Removing a β-leaf
of a β-acyclic hypergraph leaves it β-acyclic, so the greedy procedure below
(eliminate any β-leaf, in any order) is a sound and complete test.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import LineageError

VertexName = Hashable
Hyperedge = FrozenSet[VertexName]


class Hypergraph:
    """A finite hypergraph with non-empty hyperedges.

    Duplicate hyperedges are merged (the edge set is a *set* of subsets),
    matching Definition 4.7.
    """

    def __init__(
        self,
        vertices: Optional[Iterable[VertexName]] = None,
        hyperedges: Optional[Iterable[Iterable[VertexName]]] = None,
    ) -> None:
        self._vertices: Set[VertexName] = set(vertices) if vertices is not None else set()
        self._hyperedges: Set[Hyperedge] = set()
        if hyperedges is not None:
            for edge in hyperedges:
                self.add_hyperedge(edge)

    def add_vertex(self, v: VertexName) -> None:
        """Add an isolated vertex."""
        self._vertices.add(v)

    def add_hyperedge(self, edge: Iterable[VertexName]) -> Hyperedge:
        """Add a hyperedge (its vertices are added to the vertex set)."""
        frozen = frozenset(edge)
        if not frozen:
            raise LineageError("hyperedges must be non-empty")
        self._vertices |= frozen
        self._hyperedges.add(frozen)
        return frozen

    @property
    def vertices(self) -> FrozenSet[VertexName]:
        """The vertex set."""
        return frozenset(self._vertices)

    @property
    def hyperedges(self) -> FrozenSet[Hyperedge]:
        """The set of hyperedges."""
        return frozenset(self._hyperedges)

    def incident_hyperedges(self, v: VertexName) -> List[Hyperedge]:
        """The hyperedges containing ``v``."""
        return [edge for edge in self._hyperedges if v in edge]

    def is_beta_leaf(self, v: VertexName) -> bool:
        """Whether ``v`` is a β-leaf (its incident hyperedges form a chain)."""
        incident = sorted(self.incident_hyperedges(v), key=len)
        for smaller, larger in zip(incident, incident[1:]):
            if not smaller <= larger:
                return False
        return True

    def remove_vertex(self, v: VertexName) -> "Hypergraph":
        """The hypergraph ``H \\ v`` (vertex removed from every hyperedge)."""
        new_edges = []
        for edge in self._hyperedges:
            reduced = edge - {v}
            if reduced:
                new_edges.append(reduced)
        return Hypergraph(vertices=self._vertices - {v}, hyperedges=new_edges)

    def copy(self) -> "Hypergraph":
        """An independent copy."""
        return Hypergraph(vertices=self._vertices, hyperedges=self._hyperedges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypergraph(|V|={len(self._vertices)}, |E|={len(self._hyperedges)})"


def beta_elimination_order(hypergraph: Hypergraph) -> Optional[List[VertexName]]:
    """A β-elimination order of the hypergraph, or ``None`` if none exists.

    The returned order lists the eliminated vertices in elimination order; it
    stops as soon as no hyperedge remains (vertices that are in no hyperedge
    never need to be eliminated, per Definition 4.7).
    """
    current = hypergraph.copy()
    order: List[VertexName] = []
    while current.hyperedges:
        leaf: Optional[VertexName] = None
        covered = set().union(*current.hyperedges)
        for v in sorted(covered, key=repr):
            if current.is_beta_leaf(v):
                leaf = v
                break
        if leaf is None:
            return None
        order.append(leaf)
        current = current.remove_vertex(leaf)
    return order


def is_beta_acyclic(hypergraph: Hypergraph) -> bool:
    """Whether the hypergraph is β-acyclic."""
    return beta_elimination_order(hypergraph) is not None


def hypergraph_of_clauses(clauses: Sequence[Iterable[VertexName]]) -> Hypergraph:
    """The hypergraph ``H(φ)`` of a positive DNF: one hyperedge per clause (Definition 4.8)."""
    hypergraph = Hypergraph()
    for clause in clauses:
        hypergraph.add_hyperedge(clause)
    return hypergraph
