"""Generic lineage construction (Definition 4.6).

Given a query graph ``G`` and a probabilistic instance ``(H, π)``, the
*lineage* of ``G`` on ``H`` is a Boolean function over the edges of ``H``
that evaluates to true on a valuation ``ν`` exactly when ``G ⇝ ν(H)``.
Because queries are conjunctive (edge-positive), the lineage is captured by
the positive DNF with one clause per match edge set: a world satisfies the
query iff it contains all edges of some match.

:func:`match_lineage` builds this DNF by homomorphism enumeration.  It is
exponential in general (there may be exponentially many matches); the
polynomial solvers of :mod:`repro.core` instead build their lineages by
structure-specific enumeration (downward paths of a DWT, connected subpaths
of a 2WP) with polynomially many clauses.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.graphs.digraph import DiGraph, Edge
from repro.graphs.homomorphism import enumerate_homomorphisms
from repro.lineage.dnf import PositiveDNF
from repro.probability.prob_graph import ProbabilisticGraph


def match_lineage(query: DiGraph, instance: ProbabilisticGraph, minimise: bool = True) -> PositiveDNF:
    """The positive-DNF lineage of ``query`` on ``instance``.

    Parameters
    ----------
    query:
        The query graph ``G``.
    instance:
        The probabilistic instance ``(H, π)``; only its underlying graph is
        used (probabilities play no role in the lineage itself).
    minimise:
        When true (default), clauses that are supersets of other clauses are
        dropped; this does not change the Boolean function (a world
        containing a superset clause also contains the subset clause) but
        keeps the DNF smaller.
    """
    instance_graph = instance.graph
    clause_sets: Set[FrozenSet[Edge]] = set()
    for hom in enumerate_homomorphisms(query, instance_graph):
        clause = frozenset(
            instance_graph.get_edge(hom[e.source], hom[e.target]) for e in query.edges()
        )
        clause_sets.add(clause)
    if minimise:
        kept = []
        for clause in sorted(clause_sets, key=len):
            if not any(existing <= clause for existing in kept):
                kept.append(clause)
        clause_sets = set(kept)
    return PositiveDNF(clause_sets)


def lineage_captures_query(
    lineage: PositiveDNF, query: DiGraph, instance: ProbabilisticGraph
) -> bool:
    """Check Definition 4.6 exhaustively: the lineage is true exactly on satisfying worlds.

    Exponential in the number of instance edges; used by the test suite to
    validate the structure-specific lineage builders on small inputs.
    """
    from repro.graphs.homomorphism import has_homomorphism

    for world in instance.possible_worlds(skip_zero_probability=False):
        valuation = {edge: True for edge in world.kept_edges}
        if lineage.evaluate(valuation) != has_homomorphism(query, world.graph):
            return False
    return True
