"""d-DNNF circuits (Definition 5.3) with linear-time probability computation.

A deterministic decomposable negation normal form circuit is a Boolean
circuit in which

* negation is only applied to input gates,
* the children of every AND gate depend on pairwise disjoint sets of input
  variables (*decomposability*), and
* the children of every OR gate are mutually exclusive (*determinism*).

Under these restrictions the probability of the circuit under independent
variables is computed bottom-up in linear time: AND gates multiply, OR gates
add.  This is the compilation target of the tree-automaton lineage of
Proposition 5.4: the provenance circuit of a *deterministic* bottom-up tree
automaton on an uncertain tree is a d-DNNF, so the probability of the query
follows in polynomial combined complexity.

The class below is a small arena-based DAG of gates.  Structural property
*checkers* are included (syntactic decomposability; exhaustive determinism on
small supports) so the test suite can verify that the circuits produced by
:mod:`repro.automata.provenance` really are d-DNNFs.

Tape-lowering contract
----------------------

:mod:`repro.tape` compiles circuit evaluation to a flat postfix tape by
*symbolically executing* :meth:`DDNNF.probability` with slot references in
place of numbers.  That is sound because the bottom-up pass branches only on
circuit *structure* (gate kinds and wires), never on the probability values
flowing through it; keep it that way — a value-dependent branch (e.g. a
short-circuit on ``p == 0``) would silently specialise compiled tapes to the
probabilities seen at compile time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from typing import Any, Callable

from repro.exceptions import LineageError
from repro.numeric import EXACT, Number, NumericContext

Variable = Hashable


class GateKind(enum.Enum):
    """The kinds of gates a d-DNNF circuit may contain."""

    VAR = "var"
    NOT = "not"
    AND = "and"
    OR = "or"
    TRUE = "true"
    FALSE = "false"


@dataclass(frozen=True)
class Gate:
    """One gate of the circuit: its kind, its variable (for literals) and its children."""

    kind: GateKind
    variable: Optional[Variable] = None
    children: Tuple[int, ...] = ()


class DDNNF:
    """An arena-based d-DNNF circuit.

    Gates are created through the ``add_*`` methods, which return integer
    gate identifiers; the circuit's output gate is set with
    :meth:`set_root`.  Literal gates are hash-consed so repeated requests
    for the same variable reuse the same gate.
    """

    def __init__(self) -> None:
        self._gates: List[Gate] = []
        self._literal_cache: Dict[Tuple[bool, Variable], int] = {}
        self._constant_cache: Dict[GateKind, int] = {}
        self._root: Optional[int] = None
        #: Memoised derived data (supports, wire indices), keyed by the gate
        #: count at computation time so adding gates invalidates lazily.
        self._derived: Dict[str, Tuple[int, Any]] = {}

    def _cached_derived(self, key: str, compute: Callable[[], Any]) -> Any:
        """Memoise ``compute()`` until the arena grows (gates are append-only)."""
        entry = self._derived.get(key)
        if entry is not None and entry[0] == len(self._gates):
            return entry[1]
        value = compute()
        self._derived[key] = (len(self._gates), value)
        return value

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, gate: Gate) -> int:
        self._gates.append(gate)
        return len(self._gates) - 1

    def add_var(self, variable: Variable) -> int:
        """The positive literal gate for ``variable``."""
        key = (True, variable)
        if key not in self._literal_cache:
            self._literal_cache[key] = self._add(Gate(GateKind.VAR, variable=variable))
        return self._literal_cache[key]

    def add_not(self, variable: Variable) -> int:
        """The negative literal gate for ``variable`` (negation applies to inputs only)."""
        key = (False, variable)
        if key not in self._literal_cache:
            self._literal_cache[key] = self._add(Gate(GateKind.NOT, variable=variable))
        return self._literal_cache[key]

    def add_true(self) -> int:
        """The constant-true gate."""
        if GateKind.TRUE not in self._constant_cache:
            self._constant_cache[GateKind.TRUE] = self._add(Gate(GateKind.TRUE))
        return self._constant_cache[GateKind.TRUE]

    def add_false(self) -> int:
        """The constant-false gate."""
        if GateKind.FALSE not in self._constant_cache:
            self._constant_cache[GateKind.FALSE] = self._add(Gate(GateKind.FALSE))
        return self._constant_cache[GateKind.FALSE]

    def add_and(self, children: Sequence[int]) -> int:
        """An AND gate over the given children (empty AND is the constant true)."""
        children = tuple(children)
        if not children:
            return self.add_true()
        if len(children) == 1:
            return children[0]
        self._check_children(children)
        return self._add(Gate(GateKind.AND, children=children))

    def add_or(self, children: Sequence[int]) -> int:
        """An OR gate over the given children (empty OR is the constant false)."""
        children = tuple(children)
        if not children:
            return self.add_false()
        if len(children) == 1:
            return children[0]
        self._check_children(children)
        return self._add(Gate(GateKind.OR, children=children))

    def _check_children(self, children: Sequence[int]) -> None:
        for child in children:
            if not (0 <= child < len(self._gates)):
                raise LineageError(f"unknown gate identifier {child!r}")

    def set_root(self, gate: int) -> None:
        """Declare the circuit's output gate."""
        self._check_children([gate])
        self._root = gate

    @property
    def root(self) -> int:
        """The output gate (raises if not set)."""
        if self._root is None:
            raise LineageError("circuit root has not been set")
        return self._root

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def gate(self, gate_id: int) -> Gate:
        """The gate with the given identifier."""
        return self._gates[gate_id]

    def num_gates(self) -> int:
        """Number of gates in the arena."""
        return len(self._gates)

    def num_wires(self) -> int:
        """Total number of child wires (circuit size measure)."""
        return sum(len(g.children) for g in self._gates)

    def variables(self) -> Set[Variable]:
        """The input variables mentioned by the circuit (memoised)."""
        return set(self.literal_index())

    def _supports(self) -> List[FrozenSet[Variable]]:
        """Variable support of every gate, computed bottom-up (memoised)."""
        return self._cached_derived("supports", self._compute_supports)

    def _compute_supports(self) -> List[FrozenSet[Variable]]:
        supports: List[FrozenSet[Variable]] = []
        for gate in self._gates:
            if gate.kind in (GateKind.VAR, GateKind.NOT):
                supports.append(frozenset([gate.variable]))
            elif gate.kind in (GateKind.TRUE, GateKind.FALSE):
                supports.append(frozenset())
            else:
                merged: Set[Variable] = set()
                for child in gate.children:
                    merged |= supports[child]
                supports.append(frozenset(merged))
        return supports

    # ------------------------------------------------------------------
    # wire indices (the compile-time half of incremental evaluation)
    # ------------------------------------------------------------------
    def parent_index(self) -> Tuple[Tuple[int, ...], ...]:
        """For every gate, the gates that have it as a child (reverse wires, memoised).

        Gate identifiers are topological (children are created before their
        parents), so walking an ancestor set in increasing identifier order
        always sees children before parents — the property the incremental
        :class:`CircuitEvaluator` relies on.
        """
        return self._cached_derived("parents", self._compute_parent_index)

    def _compute_parent_index(self) -> Tuple[Tuple[int, ...], ...]:
        parents: List[List[int]] = [[] for _ in self._gates]
        for gate_id, gate in enumerate(self._gates):
            for child in gate.children:
                parents[child].append(gate_id)
        return tuple(tuple(p) for p in parents)

    def literal_index(self) -> Dict[Variable, Tuple[int, ...]]:
        """Variable → identifiers of its literal gates (VAR and NOT; memoised)."""
        return self._cached_derived("literals", self._compute_literal_index)

    def _compute_literal_index(self) -> Dict[Variable, Tuple[int, ...]]:
        index: Dict[Variable, List[int]] = {}
        for gate_id, gate in enumerate(self._gates):
            if gate.kind in (GateKind.VAR, GateKind.NOT):
                index.setdefault(gate.variable, []).append(gate_id)
        return {variable: tuple(gates) for variable, gates in index.items()}

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def evaluate(self, valuation: Mapping[Variable, bool]) -> bool:
        """Evaluate the circuit under a valuation (missing variables default to false)."""
        values: List[bool] = []
        for gate in self._gates:
            if gate.kind is GateKind.VAR:
                values.append(bool(valuation.get(gate.variable, False)))
            elif gate.kind is GateKind.NOT:
                values.append(not valuation.get(gate.variable, False))
            elif gate.kind is GateKind.TRUE:
                values.append(True)
            elif gate.kind is GateKind.FALSE:
                values.append(False)
            elif gate.kind is GateKind.AND:
                values.append(all(values[c] for c in gate.children))
            else:
                values.append(any(values[c] for c in gate.children))
        return values[self.root]

    def probability(
        self,
        probabilities: Mapping[Variable, Fraction],
        context: NumericContext = EXACT,
    ) -> Number:
        """The probability of the circuit under independent variables.

        AND gates multiply and OR gates add, which is only correct because
        of decomposability and determinism; callers constructing circuits by
        hand should validate them with :meth:`is_decomposable` and
        :meth:`is_deterministic`.  ``context`` selects the numeric backend
        (exact :class:`~fractions.Fraction` by default, floats via
        :data:`repro.numeric.FAST`).
        """
        convert = context.convert
        one = context.one
        zero = context.zero
        values: List[Number] = []
        for gate in self._gates:
            if gate.kind is GateKind.VAR:
                values.append(convert(probabilities[gate.variable]))
            elif gate.kind is GateKind.NOT:
                values.append(one - convert(probabilities[gate.variable]))
            elif gate.kind is GateKind.TRUE:
                values.append(one)
            elif gate.kind is GateKind.FALSE:
                values.append(zero)
            elif gate.kind is GateKind.AND:
                term = one
                for child in gate.children:
                    term *= values[child]
                values.append(term)
            else:
                total = zero
                for child in gate.children:
                    total += values[child]
                values.append(total)
        return values[self.root]

    # ------------------------------------------------------------------
    # property checkers (used by the test suite)
    # ------------------------------------------------------------------
    def is_decomposable(self) -> bool:
        """Whether every AND gate has children with pairwise disjoint supports."""
        supports = self._supports()
        for gate in self._gates:
            if gate.kind is not GateKind.AND:
                continue
            seen: Set[Variable] = set()
            for child in gate.children:
                if supports[child] & seen:
                    return False
                seen |= supports[child]
        return True

    def is_deterministic(self, max_support: int = 16) -> bool:
        """Whether every OR gate has mutually exclusive children.

        The check is semantic and exhaustive over the support of each OR
        gate, so it is limited to gates whose support has at most
        ``max_support`` variables; a larger support raises
        :class:`~repro.exceptions.LineageError` rather than silently
        checking nothing.

        Each OR gate's cone (the sub-DAG below it) is evaluated *iteratively*
        with one shared value table per valuation, so gates shared between
        children are computed once per valuation instead of once per path —
        the naive recursive walk is exponential on shared sub-DAGs.
        """
        supports = self._supports()

        def cone_of(gate_id: int) -> List[int]:
            """Gate identifiers reachable below ``gate_id``, ascending (topological)."""
            seen: Set[int] = set()
            stack = [gate_id]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(self._gates[current].children)
            return sorted(seen)

        for gate_id, gate in enumerate(self._gates):
            if gate.kind is not GateKind.OR or len(gate.children) < 2:
                continue
            support = sorted(supports[gate_id], key=repr)
            if len(support) > max_support:
                raise LineageError(
                    f"OR gate support of size {len(support)} exceeds max_support={max_support}"
                )
            cone = cone_of(gate_id)
            for bits in product((False, True), repeat=len(support)):
                valuation = dict(zip(support, bits))
                values: Dict[int, bool] = {}
                for current in cone:
                    g = self._gates[current]
                    if g.kind is GateKind.VAR:
                        values[current] = bool(valuation.get(g.variable, False))
                    elif g.kind is GateKind.NOT:
                        values[current] = not valuation.get(g.variable, False)
                    elif g.kind is GateKind.TRUE:
                        values[current] = True
                    elif g.kind is GateKind.FALSE:
                        values[current] = False
                    elif g.kind is GateKind.AND:
                        values[current] = all(values[c] for c in g.children)
                    else:
                        values[current] = any(values[c] for c in g.children)
                true_children = sum(1 for c in gate.children if values[c])
                if true_children > 1:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DDNNF(gates={self.num_gates()}, wires={self.num_wires()}, vars={len(self.variables())})"


class CircuitEvaluator:
    """Stateful d-DNNF probability evaluator with incremental updates.

    A full :meth:`evaluate` pass computes and *keeps* the value of every
    gate.  A subsequent :meth:`update` of one variable then recomputes only
    the literal gates of that variable and their ancestors — found through
    the circuit's reverse-wire :meth:`DDNNF.parent_index` — instead of
    re-walking the whole arena.  On a circuit with ``n`` gates and a
    variable whose ancestor cone has ``a`` gates, an update costs ``O(a)``
    arithmetic operations instead of ``O(n)``.

    The evaluator is the arithmetic half of the compiled polytree plans
    (:mod:`repro.plan`): the circuit is the probability-independent
    structure, the evaluator state is the per-probability part.
    """

    def __init__(self, circuit: DDNNF) -> None:
        self._circuit = circuit
        self._parents = circuit.parent_index()
        self._literals = circuit.literal_index()
        #: Ancestor cones are memoised per variable across updates.
        self._ancestors: Dict[Variable, Tuple[int, ...]] = {}
        self._values: Optional[List[Number]] = None
        self._probabilities: Dict[Variable, Number] = {}
        self._context: NumericContext = EXACT
        # Precompiled evaluation program: literal/constant slots plus the
        # internal gates in ascending (topological) identifier order —
        # avoids per-gate kind dispatch on every full pass.
        self._var_slots: List[Tuple[int, Variable]] = []
        self._not_slots: List[Tuple[int, Variable]] = []
        self._true_slots: List[int] = []
        self._op_slots: List[Tuple[bool, int, Tuple[int, ...]]] = []
        for gate_id, gate in enumerate(circuit._gates):
            if gate.kind is GateKind.VAR:
                self._var_slots.append((gate_id, gate.variable))
            elif gate.kind is GateKind.NOT:
                self._not_slots.append((gate_id, gate.variable))
            elif gate.kind is GateKind.TRUE:
                self._true_slots.append(gate_id)
            elif gate.kind in (GateKind.AND, GateKind.OR):
                self._op_slots.append(
                    (gate.kind is GateKind.AND, gate_id, gate.children)
                )

    @property
    def circuit(self) -> DDNNF:
        """The underlying circuit (structure; shared, not copied)."""
        return self._circuit

    def _run(
        self,
        probabilities: Mapping[Variable, Number],
        context: NumericContext,
    ) -> Tuple[List[Number], Dict[Variable, Number]]:
        """One bottom-up pass over the precompiled slots; returns all gate values."""
        convert = context.convert
        one = context.one
        zero = context.zero
        table: Dict[Variable, Number] = {
            variable: convert(probabilities[variable]) for variable in self._literals
        }
        values: List[Number] = [zero] * len(self._circuit._gates)
        for gate_id, variable in self._var_slots:
            values[gate_id] = table[variable]
        for gate_id, variable in self._not_slots:
            values[gate_id] = one - table[variable]
        for gate_id in self._true_slots:
            values[gate_id] = one
        for is_and, gate_id, children in self._op_slots:
            if is_and:
                term = one
                for child in children:
                    term *= values[child]
                values[gate_id] = term
            else:
                total = zero
                for child in children:
                    total += values[child]
                values[gate_id] = total
        return values, table

    def probability(
        self,
        probabilities: Mapping[Variable, Number],
        context: NumericContext = EXACT,
    ) -> Number:
        """One-off probability through the precompiled slots, retaining nothing.

        Same values as :meth:`DDNNF.probability` (identical arena order) but
        faster on repeated calls; use :meth:`evaluate` instead when
        incremental :meth:`update` calls will follow.
        """
        values, _table = self._run(probabilities, context)
        return values[self._circuit.root]

    def evaluate(
        self,
        probabilities: Mapping[Variable, Number],
        context: NumericContext = EXACT,
    ) -> Number:
        """Full bottom-up pass; stores every gate value for later updates."""
        values, table = self._run(probabilities, context)
        self._values = values
        self._probabilities = table
        self._context = context
        return values[self._circuit.root]

    def update(self, variable: Variable, probability: Number) -> Number:
        """Set one variable's probability and recompute only its ancestors.

        ``probability`` must already be in the evaluator's numeric backend
        (the backend of the last :meth:`evaluate` call).  Returns the new
        root value.  A variable absent from the circuit leaves the value
        unchanged (the circuit does not depend on it).
        """
        if self._values is None:
            raise LineageError("call evaluate() before update()")
        values = self._values
        circuit = self._circuit
        literal_gates = self._literals.get(variable, ())
        self._probabilities[variable] = probability
        if not literal_gates:
            return values[circuit.root]
        one = self._context.one
        zero = self._context.zero
        for gate_id in literal_gates:
            gate = circuit._gates[gate_id]
            if gate.kind is GateKind.VAR:
                values[gate_id] = probability
            else:
                values[gate_id] = one - probability
        for gate_id in self._ancestors_of(variable):
            gate = circuit._gates[gate_id]
            if gate.kind is GateKind.AND:
                term = one
                for child in gate.children:
                    term *= values[child]
                values[gate_id] = term
            else:
                total = zero
                for child in gate.children:
                    total += values[child]
                values[gate_id] = total
        return values[circuit.root]

    def _ancestors_of(self, variable: Variable) -> Tuple[int, ...]:
        """Proper ancestors of the variable's literal gates, ascending (memoised)."""
        cached = self._ancestors.get(variable)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        stack: List[int] = []
        for gate_id in self._literals.get(variable, ()):
            stack.extend(self._parents[gate_id])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._parents[current])
        result = tuple(sorted(seen))
        self._ancestors[variable] = result
        return result

    def current_value(self) -> Number:
        """The root value from the last evaluate/update pass."""
        if self._values is None:
            raise LineageError("call evaluate() before current_value()")
        return self._values[self._circuit.root]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitEvaluator({self._circuit!r})"
