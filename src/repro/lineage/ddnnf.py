"""d-DNNF circuits (Definition 5.3) with linear-time probability computation.

A deterministic decomposable negation normal form circuit is a Boolean
circuit in which

* negation is only applied to input gates,
* the children of every AND gate depend on pairwise disjoint sets of input
  variables (*decomposability*), and
* the children of every OR gate are mutually exclusive (*determinism*).

Under these restrictions the probability of the circuit under independent
variables is computed bottom-up in linear time: AND gates multiply, OR gates
add.  This is the compilation target of the tree-automaton lineage of
Proposition 5.4: the provenance circuit of a *deterministic* bottom-up tree
automaton on an uncertain tree is a d-DNNF, so the probability of the query
follows in polynomial combined complexity.

The class below is a small arena-based DAG of gates.  Structural property
*checkers* are included (syntactic decomposability; exhaustive determinism on
small supports) so the test suite can verify that the circuits produced by
:mod:`repro.automata.provenance` really are d-DNNFs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import LineageError
from repro.numeric import EXACT, Number, NumericContext

Variable = Hashable


class GateKind(enum.Enum):
    """The kinds of gates a d-DNNF circuit may contain."""

    VAR = "var"
    NOT = "not"
    AND = "and"
    OR = "or"
    TRUE = "true"
    FALSE = "false"


@dataclass(frozen=True)
class Gate:
    """One gate of the circuit: its kind, its variable (for literals) and its children."""

    kind: GateKind
    variable: Optional[Variable] = None
    children: Tuple[int, ...] = ()


class DDNNF:
    """An arena-based d-DNNF circuit.

    Gates are created through the ``add_*`` methods, which return integer
    gate identifiers; the circuit's output gate is set with
    :meth:`set_root`.  Literal gates are hash-consed so repeated requests
    for the same variable reuse the same gate.
    """

    def __init__(self) -> None:
        self._gates: List[Gate] = []
        self._literal_cache: Dict[Tuple[bool, Variable], int] = {}
        self._constant_cache: Dict[GateKind, int] = {}
        self._root: Optional[int] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, gate: Gate) -> int:
        self._gates.append(gate)
        return len(self._gates) - 1

    def add_var(self, variable: Variable) -> int:
        """The positive literal gate for ``variable``."""
        key = (True, variable)
        if key not in self._literal_cache:
            self._literal_cache[key] = self._add(Gate(GateKind.VAR, variable=variable))
        return self._literal_cache[key]

    def add_not(self, variable: Variable) -> int:
        """The negative literal gate for ``variable`` (negation applies to inputs only)."""
        key = (False, variable)
        if key not in self._literal_cache:
            self._literal_cache[key] = self._add(Gate(GateKind.NOT, variable=variable))
        return self._literal_cache[key]

    def add_true(self) -> int:
        """The constant-true gate."""
        if GateKind.TRUE not in self._constant_cache:
            self._constant_cache[GateKind.TRUE] = self._add(Gate(GateKind.TRUE))
        return self._constant_cache[GateKind.TRUE]

    def add_false(self) -> int:
        """The constant-false gate."""
        if GateKind.FALSE not in self._constant_cache:
            self._constant_cache[GateKind.FALSE] = self._add(Gate(GateKind.FALSE))
        return self._constant_cache[GateKind.FALSE]

    def add_and(self, children: Sequence[int]) -> int:
        """An AND gate over the given children (empty AND is the constant true)."""
        children = tuple(children)
        if not children:
            return self.add_true()
        if len(children) == 1:
            return children[0]
        self._check_children(children)
        return self._add(Gate(GateKind.AND, children=children))

    def add_or(self, children: Sequence[int]) -> int:
        """An OR gate over the given children (empty OR is the constant false)."""
        children = tuple(children)
        if not children:
            return self.add_false()
        if len(children) == 1:
            return children[0]
        self._check_children(children)
        return self._add(Gate(GateKind.OR, children=children))

    def _check_children(self, children: Sequence[int]) -> None:
        for child in children:
            if not (0 <= child < len(self._gates)):
                raise LineageError(f"unknown gate identifier {child!r}")

    def set_root(self, gate: int) -> None:
        """Declare the circuit's output gate."""
        self._check_children([gate])
        self._root = gate

    @property
    def root(self) -> int:
        """The output gate (raises if not set)."""
        if self._root is None:
            raise LineageError("circuit root has not been set")
        return self._root

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def gate(self, gate_id: int) -> Gate:
        """The gate with the given identifier."""
        return self._gates[gate_id]

    def num_gates(self) -> int:
        """Number of gates in the arena."""
        return len(self._gates)

    def num_wires(self) -> int:
        """Total number of child wires (circuit size measure)."""
        return sum(len(g.children) for g in self._gates)

    def variables(self) -> Set[Variable]:
        """The input variables mentioned by the circuit."""
        return {g.variable for g in self._gates if g.kind in (GateKind.VAR, GateKind.NOT)}

    def _supports(self) -> List[FrozenSet[Variable]]:
        """Variable support of every gate, computed bottom-up."""
        supports: List[FrozenSet[Variable]] = []
        for gate in self._gates:
            if gate.kind in (GateKind.VAR, GateKind.NOT):
                supports.append(frozenset([gate.variable]))
            elif gate.kind in (GateKind.TRUE, GateKind.FALSE):
                supports.append(frozenset())
            else:
                merged: Set[Variable] = set()
                for child in gate.children:
                    merged |= supports[child]
                supports.append(frozenset(merged))
        return supports

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def evaluate(self, valuation: Mapping[Variable, bool]) -> bool:
        """Evaluate the circuit under a valuation (missing variables default to false)."""
        values: List[bool] = []
        for gate in self._gates:
            if gate.kind is GateKind.VAR:
                values.append(bool(valuation.get(gate.variable, False)))
            elif gate.kind is GateKind.NOT:
                values.append(not valuation.get(gate.variable, False))
            elif gate.kind is GateKind.TRUE:
                values.append(True)
            elif gate.kind is GateKind.FALSE:
                values.append(False)
            elif gate.kind is GateKind.AND:
                values.append(all(values[c] for c in gate.children))
            else:
                values.append(any(values[c] for c in gate.children))
        return values[self.root]

    def probability(
        self,
        probabilities: Mapping[Variable, Fraction],
        context: NumericContext = EXACT,
    ) -> Number:
        """The probability of the circuit under independent variables.

        AND gates multiply and OR gates add, which is only correct because
        of decomposability and determinism; callers constructing circuits by
        hand should validate them with :meth:`is_decomposable` and
        :meth:`is_deterministic`.  ``context`` selects the numeric backend
        (exact :class:`~fractions.Fraction` by default, floats via
        :data:`repro.numeric.FAST`).
        """
        convert = context.convert
        one = context.one
        zero = context.zero
        values: List[Number] = []
        for gate in self._gates:
            if gate.kind is GateKind.VAR:
                values.append(convert(probabilities[gate.variable]))
            elif gate.kind is GateKind.NOT:
                values.append(one - convert(probabilities[gate.variable]))
            elif gate.kind is GateKind.TRUE:
                values.append(one)
            elif gate.kind is GateKind.FALSE:
                values.append(zero)
            elif gate.kind is GateKind.AND:
                term = one
                for child in gate.children:
                    term *= values[child]
                values.append(term)
            else:
                total = zero
                for child in gate.children:
                    total += values[child]
                values.append(total)
        return values[self.root]

    # ------------------------------------------------------------------
    # property checkers (used by the test suite)
    # ------------------------------------------------------------------
    def is_decomposable(self) -> bool:
        """Whether every AND gate has children with pairwise disjoint supports."""
        supports = self._supports()
        for gate in self._gates:
            if gate.kind is not GateKind.AND:
                continue
            seen: Set[Variable] = set()
            for child in gate.children:
                if supports[child] & seen:
                    return False
                seen |= supports[child]
        return True

    def is_deterministic(self, max_support: int = 16) -> bool:
        """Whether every OR gate has mutually exclusive children.

        The check is semantic and exhaustive over the support of each OR
        gate, so it is limited to gates whose support has at most
        ``max_support`` variables; a larger support raises
        :class:`~repro.exceptions.LineageError` rather than silently
        checking nothing.
        """
        supports = self._supports()

        def gate_value(gate_id: int, valuation: Mapping[Variable, bool]) -> bool:
            gate = self._gates[gate_id]
            if gate.kind is GateKind.VAR:
                return bool(valuation.get(gate.variable, False))
            if gate.kind is GateKind.NOT:
                return not valuation.get(gate.variable, False)
            if gate.kind is GateKind.TRUE:
                return True
            if gate.kind is GateKind.FALSE:
                return False
            if gate.kind is GateKind.AND:
                return all(gate_value(c, valuation) for c in gate.children)
            return any(gate_value(c, valuation) for c in gate.children)

        for gate_id, gate in enumerate(self._gates):
            if gate.kind is not GateKind.OR or len(gate.children) < 2:
                continue
            support = sorted(supports[gate_id], key=repr)
            if len(support) > max_support:
                raise LineageError(
                    f"OR gate support of size {len(support)} exceeds max_support={max_support}"
                )
            for bits in product((False, True), repeat=len(support)):
                valuation = dict(zip(support, bits))
                true_children = sum(1 for c in gate.children if gate_value(c, valuation))
                if true_children > 1:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DDNNF(gates={self.num_gates()}, wires={self.num_wires()}, vars={len(self.variables())})"
