"""Boolean lineages: positive DNF formulas, β-acyclicity and d-DNNF circuits.

The tractability results of Section 4 compute a *lineage* of the query on the
instance — a Boolean function over the instance's edges that is true exactly
on the possible worlds satisfying the query (Definition 4.6) — and then
exploit structural restrictions of that lineage to compute its probability in
polynomial time:

* :mod:`repro.lineage.dnf` — positive DNF formulas, evaluation, and exact
  probability computation (naive enumeration and memoised Shannon
  expansion guided by an elimination order);
* :mod:`repro.lineage.hypergraph` — hypergraphs, β-leaves, β-elimination
  orders and the β-acyclicity test of Definition 4.7/4.8;
* :mod:`repro.lineage.builders` — generic construction of the match lineage
  of a query on a probabilistic instance;
* :mod:`repro.lineage.ddnnf` — deterministic decomposable negation normal
  form circuits (Definition 5.3) with linear-time probability computation,
  the compilation target of the tree-automaton approach of Section 5.
"""

from repro.lineage.dnf import PositiveDNF
from repro.lineage.hypergraph import Hypergraph, beta_elimination_order, is_beta_acyclic
from repro.lineage.builders import match_lineage
from repro.lineage.ddnnf import CircuitEvaluator, DDNNF, GateKind

__all__ = [
    "PositiveDNF",
    "Hypergraph",
    "beta_elimination_order",
    "is_beta_acyclic",
    "match_lineage",
    "CircuitEvaluator",
    "DDNNF",
    "GateKind",
]
