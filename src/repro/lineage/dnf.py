"""Positive DNF formulas over arbitrary hashable variables.

The lineages computed in Section 4 are *positive DNF formulas*
(Definition 4.3): disjunctions of clauses, each clause being a conjunction of
variables (here: edges of the probabilistic instance).  This module
implements such formulas together with three ways of computing their
probability under independent variables:

* :meth:`PositiveDNF.probability_by_enumeration` — sum over all valuations;
  exponential, used only as a test oracle;
* :meth:`PositiveDNF.probability_inclusion_exclusion` — inclusion–exclusion
  over clauses; exponential in the number of clauses;
* :meth:`PositiveDNF.probability` — memoised Shannon expansion following an
  elimination order.  On the β-acyclic lineages produced by
  Propositions 4.10 and 4.11 the reverse β-elimination order keeps the
  number of distinct sub-formulas polynomial, which makes this the practical
  evaluation route (the certified-polynomial routes are the direct dynamic
  programs in :mod:`repro.core`).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations, product
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import LineageError
from repro.numeric import EXACT, Number, NumericContext
from repro.lineage.hypergraph import (
    Hypergraph,
    beta_elimination_order,
    hypergraph_of_clauses,
)

Variable = Hashable
Clause = FrozenSet[Variable]


class PositiveDNF:
    """A positive DNF formula ``∨_i ∧_j x_{i,j}`` over hashable variables.

    The formula with zero clauses is the constant *false*; a formula
    containing an empty clause is the constant *true* (an empty conjunction).
    Clauses are stored as a set of frozensets, so duplicate clauses collapse.
    """

    def __init__(self, clauses: Optional[Iterable[Iterable[Variable]]] = None) -> None:
        self._clauses: Set[Clause] = set()
        #: Memoised structural data (clause hypergraph, β-elimination order,
        #: default branching order) — the compile-time half of repeated
        #: probability evaluations; cleared whenever a new clause appears.
        self._structure_cache: Dict[str, object] = {}
        if clauses is not None:
            for clause in clauses:
                self.add_clause(clause)

    def _cached_structure(self, key: str, compute):
        try:
            return self._structure_cache[key]
        except KeyError:
            value = compute()
            self._structure_cache[key] = value
            return value

    # ------------------------------------------------------------------
    # construction and basic queries
    # ------------------------------------------------------------------
    def add_clause(self, clause: Iterable[Variable]) -> Clause:
        """Add a clause (a set of variables whose conjunction is one disjunct)."""
        frozen = frozenset(clause)
        if frozen not in self._clauses:
            self._structure_cache.clear()
            self._clauses.add(frozen)
        return frozen

    @property
    def clauses(self) -> FrozenSet[Clause]:
        """The set of clauses."""
        return frozenset(self._clauses)

    def variables(self) -> Set[Variable]:
        """All variables appearing in some clause."""
        if not self._clauses:
            return set()
        return set().union(*self._clauses)

    def num_clauses(self) -> int:
        """Number of distinct clauses."""
        return len(self._clauses)

    def is_false(self) -> bool:
        """Whether the formula is the constant false (no clauses)."""
        return not self._clauses

    def is_true(self) -> bool:
        """Whether the formula is the constant true (contains the empty clause)."""
        return any(not clause for clause in self._clauses)

    def evaluate(self, valuation: Mapping[Variable, bool]) -> bool:
        """Evaluate the formula under a valuation (missing variables default to false)."""
        return any(all(valuation.get(v, False) for v in clause) for clause in self._clauses)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def hypergraph(self) -> Hypergraph:
        """The clause hypergraph ``H(φ)`` of Definition 4.8 (memoised)."""
        return self._cached_structure(
            "hypergraph", lambda: hypergraph_of_clauses([c for c in self._clauses if c])
        )

    def is_beta_acyclic(self) -> bool:
        """Whether the formula is β-acyclic (Definition 4.8)."""
        return self.beta_elimination_order() is not None

    def beta_elimination_order(self) -> Optional[List[Variable]]:
        """A β-elimination order of the clause hypergraph, or ``None`` (memoised).

        Finding the order is the expensive *structural* step of
        :meth:`probability`; memoising it means repeated evaluations of the
        same formula under drifting probabilities only pay for arithmetic.
        """
        order = self._cached_structure(
            "beta_order", lambda: beta_elimination_order(self.hypergraph())
        )
        return None if order is None else list(order)

    def indexed_clauses(self) -> Tuple[Tuple[Variable, ...], Tuple[Tuple[int, ...], ...]]:
        """A deterministic indexed form of the formula (memoised).

        Returns ``(variables, clauses)``: the variables sorted by ``repr``
        and each non-empty clause as a tuple of variable *positions*, the
        clauses sorted lexicographically by their variables' reprs.  This is
        probability-independent structure — the Karp–Luby sampler builds its
        per-evaluation weight tables on top of it, so repeated estimates of
        the same formula only pay arithmetic, like the other memoised
        structural data here.
        """
        def compute() -> Tuple[Tuple[Variable, ...], Tuple[Tuple[int, ...], ...]]:
            variables = tuple(sorted(self.variables(), key=repr))
            index = {variable: position for position, variable in enumerate(variables)}
            ordered = sorted(
                (tuple(sorted(clause, key=repr)) for clause in self._clauses if clause),
                key=lambda clause: [repr(variable) for variable in clause],
            )
            return variables, tuple(
                tuple(index[variable] for variable in clause) for clause in ordered
            )

        return self._cached_structure("indexed_clauses", compute)

    def _default_branching_order(self) -> List[Variable]:
        """The branching order :meth:`probability` uses when none is given (memoised)."""
        def compute() -> List[Variable]:
            elimination = self.beta_elimination_order()
            if elimination is not None:
                return list(reversed(elimination))
            frequency: Dict[Variable, int] = {}
            for clause in self._clauses:
                for variable in clause:
                    frequency[variable] = frequency.get(variable, 0) + 1
            return sorted(frequency, key=lambda v: (-frequency[v], repr(v)))

        return list(self._cached_structure("default_order", compute))

    # ------------------------------------------------------------------
    # probability computation
    # ------------------------------------------------------------------
    def probability_by_enumeration(self, probabilities: Mapping[Variable, Fraction]) -> Fraction:
        """Exact probability by summing over all valuations (exponential oracle)."""
        variables = sorted(self.variables(), key=repr)
        if self.is_true():
            return Fraction(1)
        total = Fraction(0)
        for bits in product((False, True), repeat=len(variables)):
            valuation = dict(zip(variables, bits))
            if not self.evaluate(valuation):
                continue
            weight = Fraction(1)
            for variable, value in valuation.items():
                p = Fraction(probabilities[variable])
                weight *= p if value else (1 - p)
            total += weight
        return total

    def probability_inclusion_exclusion(
        self, probabilities: Mapping[Variable, Fraction]
    ) -> Fraction:
        """Exact probability by inclusion–exclusion over clauses (exponential in #clauses)."""
        if self.is_true():
            return Fraction(1)
        clause_list = sorted(self._clauses, key=lambda c: sorted(map(repr, c)))
        total = Fraction(0)
        for size in range(1, len(clause_list) + 1):
            sign = Fraction(1) if size % 2 == 1 else Fraction(-1)
            for subset in combinations(clause_list, size):
                union: Set[Variable] = set()
                for clause in subset:
                    union |= clause
                term = Fraction(1)
                for variable in union:
                    term *= Fraction(probabilities[variable])
                total += sign * term
        return total

    def probability(
        self,
        probabilities: Mapping[Variable, Fraction],
        order: Optional[Sequence[Variable]] = None,
        context: NumericContext = EXACT,
    ) -> Number:
        """Probability by memoised Shannon expansion along an elimination order.

        Parameters
        ----------
        probabilities:
            Independent truth probability of each variable.
        order:
            Variable branching order.  When omitted, the reverse of a
            β-elimination order is used if the formula is β-acyclic (this is
            the order under which the lineages of Props 4.10/4.11 produce
            polynomially many distinct sub-formulas), and a most-frequent-
            variable-first order otherwise.
        context:
            Numeric backend (exact :class:`~fractions.Fraction` by default).
        """
        if self.is_true():
            return context.one
        if self.is_false():
            return context.zero
        if order is None:
            order = self._default_branching_order()
        order = list(order)
        missing = self.variables() - set(order)
        if missing:
            raise LineageError(f"branching order is missing variables: {missing!r}")
        position = {variable: index for index, variable in enumerate(order)}
        cache: Dict[FrozenSet[Clause], Number] = {}
        convert = context.convert
        one = context.one
        zero = context.zero

        def solve(clauses: FrozenSet[Clause]) -> Number:
            if not clauses:
                return zero
            if any(not clause for clause in clauses):
                return one
            if clauses in cache:
                return cache[clauses]
            variable = min(
                (v for clause in clauses for v in clause), key=lambda v: position[v]
            )
            p = convert(probabilities[variable])
            positive = frozenset(clause - {variable} for clause in clauses)
            negative = frozenset(clause for clause in clauses if variable not in clause)
            result = p * solve(positive) + (1 - p) * solve(negative)
            cache[clauses] = result
            return result

        return solve(frozenset(self._clauses))

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PositiveDNF):
            return NotImplemented
        return self._clauses == other._clauses

    def __len__(self) -> int:
        return len(self._clauses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PositiveDNF(clauses={len(self._clauses)}, variables={len(self.variables())})"
