"""Pluggable numeric backends for the probability computations.

Every probability algorithm in the library — the d-DNNF evaluator, the
Shannon expansion over positive DNFs, the direct dynamic programs of
Propositions 4.10 / 4.11 / 5.4, and the brute-force oracles — only needs a
semiring-with-complement: constants 0 and 1, addition, multiplication and
``1 - x``.  This module abstracts the number type behind those operations so
callers can choose their precision contract:

* ``EXACT`` (the default) computes with :class:`fractions.Fraction`, exactly
  as the seed implementation did — results are bit-identical rational
  numbers, and the test suite compares them with ``==``;
* ``FAST`` computes with native floats — orders of magnitude faster on
  large instances because Fraction arithmetic re-normalises gcd's on every
  operation and its numerators grow without bound, while floats are fixed
  cost.  Answers agree with exact mode to within standard double-precision
  rounding (the cross-method tests assert ``1e-9`` agreement on the paper's
  workloads).

Contexts also centralise the per-instance probability table: asking a
context for ``instance_probabilities(instance)`` returns a mapping from edge
to backend number *without copying* in exact mode and through a memoised
float table in fast mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Mapping, Union

from repro.exceptions import ReproError

#: The number type manipulated by the backends (Fraction or float).
Number = Union[Fraction, float]


@dataclass(frozen=True)
class NumericContext:
    """One numeric backend: its constants and its conversion function.

    Attributes
    ----------
    name:
        ``"exact"`` or ``"float"`` — the value accepted by the
        ``precision=`` keyword across the public API.
    zero / one:
        The additive and multiplicative identities in the backend type.
    convert:
        Coercion from a stored :class:`~fractions.Fraction` probability to
        the backend type.  Exact mode wraps in ``Fraction`` (a no-op for
        Fractions, matching the seed behaviour); fast mode truncates to
        ``float``.
    """

    name: str
    zero: Number
    one: Number
    convert: Callable[[Any], Number]

    def instance_probabilities(self, instance) -> Mapping[Any, Number]:
        """The edge-probability table of ``instance`` in this backend.

        Exact mode returns the instance's internal mapping (no copy); fast
        mode returns the instance's memoised float table.  Both are
        read-only views.
        """
        if self.name == "exact":
            return instance.probabilities_view()
        return instance.float_probabilities()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NumericContext({self.name!r})"


#: Exact rational arithmetic (the default; bit-identical to the seed).
EXACT = NumericContext(name="exact", zero=Fraction(0), one=Fraction(1), convert=Fraction)

#: Double-precision float arithmetic (the fast path).
FAST = NumericContext(name="float", zero=0.0, one=1.0, convert=float)

_CONTEXTS = {"exact": EXACT, "float": FAST}

#: Sentinel distinguishing "never probed" from "probed and absent".
_NUMPY_UNPROBED = object()
_numpy_cache: Any = _NUMPY_UNPROBED


def numpy_module():
    """The optional vectorization accelerator: numpy, or ``None`` (memoised).

    numpy is never a dependency of this library — every computation has a
    dependency-free stdlib path — but the batched tape evaluator of
    :mod:`repro.tape` vectorizes its float backend across probability
    valuations when numpy is importable.  This seam is the single gate:
    callers ask here instead of importing numpy themselves, so stubbing
    this function (or running without numpy installed) exercises the
    stdlib fallback everywhere at once.
    """
    global _numpy_cache
    if _numpy_cache is _NUMPY_UNPROBED:
        try:
            import numpy
        except ImportError:  # pragma: no cover - depends on the environment
            _numpy_cache = None
        else:
            _numpy_cache = numpy
    return _numpy_cache


def resolve_context(precision: Union[str, NumericContext, None]) -> NumericContext:
    """Resolve a ``precision=`` argument to a :class:`NumericContext`.

    Accepts a context object, one of the strings ``"exact"`` / ``"float"``,
    or ``None`` (meaning the default, exact).
    """
    if precision is None:
        return EXACT
    if isinstance(precision, NumericContext):
        return precision
    try:
        return _CONTEXTS[precision]
    except KeyError:
        raise ReproError(
            f"unknown precision {precision!r}; expected 'exact' or 'float'"
        ) from None
