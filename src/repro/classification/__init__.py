"""The paper's complexity classification (Tables 1, 2 and 3) as executable data."""

from repro.classification.tables import (
    Complexity,
    Setting,
    CellResult,
    classify_cell,
    table1,
    table2,
    table3,
    base_results,
    format_table,
)

__all__ = [
    "Complexity",
    "Setting",
    "CellResult",
    "classify_cell",
    "table1",
    "table2",
    "table3",
    "base_results",
    "format_table",
]
