"""Tables 1–3 of the paper, derived from the border-case propositions.

The paper's classification tables are not stored cell-by-cell: they are
*derived* exactly the way the paper derives them, namely from a small set of
border-case results closed under the inclusion lattice of Figure 2 and under
the labeled/unlabeled relationship:

* a PTIME result for ``(G, H)`` gives PTIME for every subclass pair
  ``(G' ⊆ G, H' ⊆ H)``;
* a #P-hardness result for ``(G, H)`` gives hardness for every superclass
  pair ``(G' ⊇ G, H' ⊇ H)``;
* tractability in the *labeled* setting (``|σ| > 1``) implies tractability in
  the unlabeled setting for the same classes, and hardness in the
  *unlabeled* setting implies hardness in the labeled setting.

:func:`classify_cell` performs this derivation for any pair of classes;
:func:`table1`, :func:`table2` and :func:`table3` materialise the paper's
three tables.  The test suite checks that every cell of the three tables is
determined, consistent (never both PTIME and hard), and equal to the table
printed in the paper; the benchmark harness additionally provides empirical
evidence per cell (agreement with brute force and polynomial scaling for the
tractable cells, reduction identities and exponential brute force for the
hard ones).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.graphs.classes import GraphClass, class_includes


class Complexity(enum.Enum):
    """Combined complexity of a PHom cell."""

    PTIME = "PTIME"
    SHARP_P_HARD = "#P-hard"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Setting(enum.Enum):
    """Whether a result is stated for the labeled or the unlabeled setting."""

    LABELED = "labeled"
    UNLABELED = "unlabeled"


@dataclass(frozen=True)
class BaseResult:
    """A border-case result from the paper."""

    setting: Setting
    query_class: GraphClass
    instance_class: GraphClass
    complexity: Complexity
    proposition: str


@dataclass(frozen=True)
class CellResult:
    """The derived complexity of one cell, with the proposition it comes from."""

    complexity: Complexity
    proposition: str


#: The paper's border-case results (tractability and hardness frontiers).
_BASE_RESULTS: Tuple[BaseResult, ...] = (
    # --- tractability frontier -------------------------------------------------
    BaseResult(
        Setting.UNLABELED, GraphClass.ALL, GraphClass.UNION_DOWNWARD_TREE,
        Complexity.PTIME, "Proposition 3.6",
    ),
    BaseResult(
        Setting.LABELED, GraphClass.ONE_WAY_PATH, GraphClass.UNION_DOWNWARD_TREE,
        Complexity.PTIME, "Proposition 4.10 (+ Lemma 3.7)",
    ),
    BaseResult(
        Setting.LABELED, GraphClass.CONNECTED, GraphClass.UNION_TWO_WAY_PATH,
        Complexity.PTIME, "Proposition 4.11 (+ Lemma 3.7)",
    ),
    BaseResult(
        Setting.UNLABELED, GraphClass.UNION_DOWNWARD_TREE, GraphClass.UNION_POLYTREE,
        Complexity.PTIME, "Proposition 5.5 (+ Section 3.3)",
    ),
    # --- hardness frontier ------------------------------------------------------
    BaseResult(
        Setting.LABELED, GraphClass.UNION_ONE_WAY_PATH, GraphClass.ONE_WAY_PATH,
        Complexity.SHARP_P_HARD, "Proposition 3.3",
    ),
    BaseResult(
        Setting.UNLABELED, GraphClass.UNION_TWO_WAY_PATH, GraphClass.TWO_WAY_PATH,
        Complexity.SHARP_P_HARD, "Proposition 3.4",
    ),
    BaseResult(
        Setting.LABELED, GraphClass.ONE_WAY_PATH, GraphClass.POLYTREE,
        Complexity.SHARP_P_HARD, "Proposition 4.1",
    ),
    BaseResult(
        Setting.LABELED, GraphClass.DOWNWARD_TREE, GraphClass.DOWNWARD_TREE,
        Complexity.SHARP_P_HARD, "Proposition 4.4 [3]",
    ),
    BaseResult(
        Setting.LABELED, GraphClass.TWO_WAY_PATH, GraphClass.DOWNWARD_TREE,
        Complexity.SHARP_P_HARD, "Proposition 4.5 [3]",
    ),
    BaseResult(
        Setting.UNLABELED, GraphClass.ONE_WAY_PATH, GraphClass.CONNECTED,
        Complexity.SHARP_P_HARD, "Proposition 5.1 [32]",
    ),
    BaseResult(
        Setting.UNLABELED, GraphClass.TWO_WAY_PATH, GraphClass.POLYTREE,
        Complexity.SHARP_P_HARD, "Proposition 5.6",
    ),
)


def base_results() -> Tuple[BaseResult, ...]:
    """The border-case results the tables are derived from."""
    return _BASE_RESULTS


def _applicable(result: BaseResult, setting: Setting) -> bool:
    """Whether a base result transfers to the requested setting.

    Tractability transfers from the labeled to the unlabeled setting (the
    unlabeled problem is the special case ``|σ| = 1``); hardness transfers
    from the unlabeled to the labeled setting.
    """
    if result.setting is setting:
        return True
    if result.complexity is Complexity.PTIME:
        return result.setting is Setting.LABELED and setting is Setting.UNLABELED
    return result.setting is Setting.UNLABELED and setting is Setting.LABELED


def classify_cell(
    query_class: GraphClass, instance_class: GraphClass, setting: Setting
) -> CellResult:
    """The combined complexity of ``PHom(query_class, instance_class)`` in the given setting.

    Raises :class:`~repro.exceptions.ReproError` if the cell is not
    determined by the paper's border cases, or if the derivation is
    contradictory — neither happens for the classes of Figure 2, which the
    test suite verifies exhaustively.
    """
    tractable: Optional[BaseResult] = None
    hard: Optional[BaseResult] = None
    for result in _BASE_RESULTS:
        if not _applicable(result, setting):
            continue
        if result.complexity is Complexity.PTIME:
            if class_includes(query_class, result.query_class) and class_includes(
                instance_class, result.instance_class
            ):
                tractable = tractable or result
        else:
            if class_includes(result.query_class, query_class) and class_includes(
                result.instance_class, instance_class
            ):
                hard = hard or result
    if tractable is not None and hard is not None:
        raise ReproError(
            f"inconsistent classification for ({query_class}, {instance_class}, {setting}): "
            f"{tractable.proposition} vs {hard.proposition}"
        )
    if tractable is not None:
        return CellResult(Complexity.PTIME, tractable.proposition)
    if hard is not None:
        return CellResult(Complexity.SHARP_P_HARD, hard.proposition)
    raise ReproError(
        f"cell ({query_class}, {instance_class}, {setting}) is not determined by the border cases"
    )


# ----------------------------------------------------------------------
# the three tables of the paper
# ----------------------------------------------------------------------
_TABLE1_QUERY_ROWS: Tuple[GraphClass, ...] = (
    GraphClass.UNION_ONE_WAY_PATH,
    GraphClass.UNION_TWO_WAY_PATH,
    GraphClass.UNION_DOWNWARD_TREE,
    GraphClass.UNION_POLYTREE,
    GraphClass.ALL,
)
_CONNECTED_QUERY_ROWS: Tuple[GraphClass, ...] = (
    GraphClass.ONE_WAY_PATH,
    GraphClass.TWO_WAY_PATH,
    GraphClass.DOWNWARD_TREE,
    GraphClass.POLYTREE,
    GraphClass.CONNECTED,
)
_INSTANCE_COLUMNS: Tuple[GraphClass, ...] = (
    GraphClass.ONE_WAY_PATH,
    GraphClass.TWO_WAY_PATH,
    GraphClass.DOWNWARD_TREE,
    GraphClass.POLYTREE,
    GraphClass.CONNECTED,
)

Table = Dict[Tuple[GraphClass, GraphClass], CellResult]


def _build_table(rows: Sequence[GraphClass], setting: Setting) -> Table:
    return {
        (query_class, instance_class): classify_cell(query_class, instance_class, setting)
        for query_class in rows
        for instance_class in _INSTANCE_COLUMNS
    }


def table1() -> Table:
    """Table 1: tractability of PHom (unlabeled) for disconnected queries."""
    return _build_table(_TABLE1_QUERY_ROWS, Setting.UNLABELED)


def table2() -> Table:
    """Table 2: tractability of PHom (labeled) for connected queries."""
    return _build_table(_CONNECTED_QUERY_ROWS, Setting.LABELED)


def table3() -> Table:
    """Table 3: tractability of PHom (unlabeled) for connected queries."""
    return _build_table(_CONNECTED_QUERY_ROWS, Setting.UNLABELED)


def table_rows(table_number: int) -> Tuple[GraphClass, ...]:
    """The query-class rows of a given table (1, 2 or 3)."""
    if table_number == 1:
        return _TABLE1_QUERY_ROWS
    if table_number in (2, 3):
        return _CONNECTED_QUERY_ROWS
    raise ReproError(f"the paper has tables 1-3, not table {table_number}")


def table_columns() -> Tuple[GraphClass, ...]:
    """The instance-class columns shared by the three tables."""
    return _INSTANCE_COLUMNS


def format_table(table: Table, rows: Sequence[GraphClass]) -> str:
    """A plain-text rendering of a table, mirroring the paper's layout."""
    columns = _INSTANCE_COLUMNS
    header = ["query \\ instance"] + [str(c) for c in columns]
    widths = [max(len(header[0]), max(len(str(r)) for r in rows))] + [
        max(len(str(c)), len(Complexity.SHARP_P_HARD.value)) for c in columns
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for row in rows:
        cells = [str(row).ljust(widths[0])]
        for column, width in zip(columns, widths[1:]):
            cells.append(str(table[(row, column)].complexity).ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)
