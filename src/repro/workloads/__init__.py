"""Workload generators for the benchmark harness (one workload family per table cell)."""

from repro.workloads.generators import (
    attach_random_probabilities,
    make_query,
    make_instance,
    workload_for_cell,
    Workload,
)

__all__ = [
    "attach_random_probabilities",
    "make_query",
    "make_instance",
    "workload_for_cell",
    "Workload",
]
