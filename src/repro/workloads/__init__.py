"""Workload generators for the benchmark harness (one workload family per table cell)."""

from repro.workloads.generators import (
    add_redundant_atoms,
    attach_random_probabilities,
    chaos_traffic_trace,
    intractable_instance,
    intractable_workload,
    make_query,
    make_instance,
    query_traffic_trace,
    redundant_query_workload,
    workload_for_cell,
    zipf_ranks,
    TrafficTrace,
    Workload,
)

__all__ = [
    "add_redundant_atoms",
    "attach_random_probabilities",
    "chaos_traffic_trace",
    "intractable_instance",
    "intractable_workload",
    "make_query",
    "make_instance",
    "query_traffic_trace",
    "redundant_query_workload",
    "workload_for_cell",
    "zipf_ranks",
    "TrafficTrace",
    "Workload",
]
