"""Parameterised workload generators used by the benchmark harness.

Every cell of Tables 1–3 is a pair (query class, instance class) in a given
setting (labeled / unlabeled).  The benchmark harness regenerates a table by
drawing, for each cell, random queries and instances *from those classes*
with a controllable size knob, running the dispatcher, and reporting the
algorithm used and its scaling.  This module centralises the drawing logic so
tests and benchmarks share identical workloads.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from fractions import Fraction
from itertools import zip_longest
from typing import Optional, Sequence, Union

from repro.approx import make_rng
from repro.exceptions import ReproError
from repro.graphs.builders import one_way_path
from repro.graphs.classes import GraphClass, graph_in_class
from repro.graphs.digraph import DiGraph, UNLABELED
from repro.graphs.generators import (
    DEFAULT_ALPHABET,
    random_connected_graph,
    random_disjoint_union,
    random_downward_tree,
    random_graph,
    random_one_way_path,
    random_polytree,
    random_two_way_path,
    random_unlabeled_query_dag,
)
from repro.probability.prob_graph import ProbabilisticGraph

RandomLike = Union[random.Random, int, None]


# Shared with the sampling subsystem so seeding semantics cannot diverge.
_rng = make_rng


@dataclass(frozen=True)
class Workload:
    """One benchmark input: a query, a probabilistic instance, and their provenance."""

    query: DiGraph
    instance: ProbabilisticGraph
    query_class: GraphClass
    instance_class: GraphClass
    labeled: bool


def attach_random_probabilities(
    graph: DiGraph,
    rng: RandomLike = None,
    certain_fraction: float = 0.3,
    denominator: int = 8,
) -> ProbabilisticGraph:
    """Annotate a graph with random rational edge probabilities.

    A ``certain_fraction`` of the edges get probability 1 (the paper's
    hardness proofs rely on certain edges, and realistic instances mix
    certain and uncertain facts); the rest get a random probability
    ``k / denominator`` with ``1 ≤ k < denominator``.
    """
    r = _rng(rng)
    probabilities = {}
    for edge in graph.edges():
        if r.random() < certain_fraction:
            probabilities[edge] = Fraction(1)
        else:
            probabilities[edge] = Fraction(r.randint(1, denominator - 1), denominator)
    return ProbabilisticGraph(graph, probabilities)


def _alphabet(labeled: bool) -> Sequence[str]:
    return DEFAULT_ALPHABET if labeled else (UNLABELED,)


def make_query(
    query_class: GraphClass, labeled: bool, size: int, rng: RandomLike = None
) -> DiGraph:
    """A random query graph of the requested class.

    ``size`` is the number of edges for path classes and the number of
    vertices for tree and general classes; disjoint-union classes produce two
    or three components whose sizes sum to roughly ``size``.
    """
    r = _rng(rng)
    alphabet = _alphabet(labeled)
    size = max(size, 1)
    if query_class is GraphClass.ONE_WAY_PATH:
        return random_one_way_path(size, alphabet, r, prefix="q")
    if query_class is GraphClass.TWO_WAY_PATH:
        return random_two_way_path(size, alphabet, r, prefix="q")
    if query_class is GraphClass.DOWNWARD_TREE:
        return random_downward_tree(size + 1, alphabet, r, prefix="q")
    if query_class is GraphClass.POLYTREE:
        return random_polytree(size + 1, alphabet, r, prefix="q")
    if query_class is GraphClass.CONNECTED:
        return random_connected_graph(size + 1, 0.15, alphabet, r, prefix="q")
    if query_class is GraphClass.ALL:
        if labeled:
            return random_graph(size + 1, 0.2, alphabet, r, prefix="q")
        return random_unlabeled_query_dag(size + 1, 0.3, r, prefix="q")
    union_map = {
        GraphClass.UNION_ONE_WAY_PATH: "1WP",
        GraphClass.UNION_TWO_WAY_PATH: "2WP",
        GraphClass.UNION_DOWNWARD_TREE: "DWT",
        GraphClass.UNION_POLYTREE: "PT",
    }
    if query_class in union_map:
        pieces = max(2, min(3, size))
        base = max(1, size // pieces)
        sizes = [base + (1 if i < size % pieces else 0) for i in range(pieces)]
        return random_disjoint_union(sizes, union_map[query_class], alphabet, r)
    raise ReproError(f"cannot generate queries for class {query_class}")


def make_instance(
    instance_class: GraphClass, labeled: bool, size: int, rng: RandomLike = None
) -> DiGraph:
    """A random instance graph of the requested class (same size conventions as queries)."""
    return make_query(instance_class, labeled, size, rng)


def intractable_instance(
    num_uncertain_edges: int,
    rng: RandomLike = None,
    denominator: int = 16,
    max_numerator: Optional[int] = None,
) -> ProbabilisticGraph:
    """A random instance on which even a 1WP query is #P-hard to answer.

    The instance is a three-layer labeled DAG ``a_i -R-> b_j -S-> c_k`` with
    every edge uncertain.  By construction some middle vertex has at least
    two incoming ``R`` edges, so the graph is neither a union of two-way
    paths nor of downward trees — for a labeled path query the dispatcher
    has no tractable route (the ``(1WP, ALL)`` cell of Table 2 is #P-hard)
    and must fall back to enumeration or sampling.  The match lineage of the
    ``R·S`` path query is the PP2DNF-shaped DNF
    ``∨_{a→b→c} (R_{ab} ∧ S_{bc})``, whose clauses share variables through
    the middle layer, so the probability does not factorise.

    ``num_uncertain_edges`` (≥ 6) is hit exactly, which makes the brute
    force cost exactly ``2^num_uncertain_edges`` worlds — the knob the
    sampling benchmark turns.
    """
    if num_uncertain_edges < 6:
        raise ReproError(
            f"need at least 6 uncertain edges for a layered intractable "
            f"instance, got {num_uncertain_edges}"
        )
    r = _rng(rng)
    num_r = num_uncertain_edges // 2
    num_s = num_uncertain_edges - num_r
    # Fewer middle vertices than R edges: pigeonhole forces a double parent.
    mid = max(2, min(num_uncertain_edges // 5, num_r - 1, num_s - 1))
    left = max(2, (num_r + mid - 1) // mid + 1)
    right = max(2, (num_s + mid - 1) // mid + 1)

    def pick_pairs(count: int, sources: int, targets: int, cover_sources: bool) -> list:
        # Cover every vertex on the middle-layer side once (targets for the
        # R layer, sources for the S layer), then fill randomly up to count.
        if cover_sources:
            chosen = {(i, r.randrange(targets)) for i in range(sources)}
        else:
            chosen = {(r.randrange(sources), j) for j in range(targets)}
        candidates = [(i, j) for i in range(sources) for j in range(targets)]
        r.shuffle(candidates)
        for pair in candidates:
            if len(chosen) >= count:
                break
            chosen.add(pair)
        return sorted(chosen)

    graph = DiGraph()
    for i, j in pick_pairs(num_r, left, mid, cover_sources=False):
        graph.add_edge(f"a{i}", f"b{j}", "R")
    for j, k in pick_pairs(num_s, mid, right, cover_sources=True):
        graph.add_edge(f"b{j}", f"c{k}", "S")
    top = max_numerator if max_numerator is not None else denominator - 1
    if not (1 <= top <= denominator - 1):
        raise ReproError(f"max_numerator must lie in [1, {denominator - 1}], got {top}")
    probabilities = {
        edge: Fraction(r.randint(1, top), denominator) for edge in graph.edges()
    }
    instance = ProbabilisticGraph(graph, probabilities)
    if len(instance.uncertain_edges()) != num_uncertain_edges:
        raise ReproError(
            "layered instance generator produced the wrong number of edges"
        )  # pragma: no cover - construction invariant
    return instance


def intractable_workload(
    num_uncertain_edges: int,
    rng: RandomLike = None,
    denominator: int = 16,
    max_numerator: Optional[int] = None,
) -> Workload:
    """The ``R·S`` path query on a layered instance: a guaranteed #P-hard cell.

    This is what the sampling benchmark and the randomized suites draw from
    when they need workloads where the dispatcher has no tractable route but
    a ground truth is still computable (by brute force, at ``2^m`` cost).
    ``max_numerator`` caps the edge probabilities at
    ``max_numerator/denominator``, producing rare-event instances on which
    relative-error guarantees separate the Karp–Luby sampler from naive
    world sampling.
    """
    r = _rng(rng)
    instance = intractable_instance(
        num_uncertain_edges, r, denominator=denominator, max_numerator=max_numerator
    )
    return Workload(
        query=one_way_path(["R", "S"], prefix="q"),
        instance=instance,
        query_class=GraphClass.ONE_WAY_PATH,
        instance_class=GraphClass.ALL,
        labeled=True,
    )


def add_redundant_atoms(
    query: DiGraph, redundancy: int, rng: RandomLike = None
) -> DiGraph:
    """A query equivalent to ``query`` with ``redundancy`` extra foldable atoms.

    Each added atom duplicates an existing edge through a fresh variable —
    for an edge ``u -[R]-> v``, either ``fresh -[R]-> v`` or
    ``u -[R]-> fresh`` — so the fresh variable always folds back onto the
    duplicated endpoint and the homomorphic core of the result equals the
    core of ``query``.  This is how real-world redundancy arises (a query
    writer restating a join they already have), and it is exactly what the
    Chandra–Merlin minimizer removes.
    """
    if query.num_edges() == 0:
        raise ReproError("cannot add redundant atoms to an edgeless query")
    r = _rng(rng)
    redundant = query.copy()
    fresh = 0
    for _ in range(max(0, redundancy)):
        base = query.edges()[r.randrange(query.num_edges())]
        fresh += 1
        name = f"r{fresh}"
        while redundant.has_vertex(name):
            fresh += 1
            name = f"r{fresh}"
        if r.random() < 0.5:
            redundant.add_edge(name, base.target, base.label)
        else:
            redundant.add_edge(base.source, name, base.label)
    return redundant


def redundant_query_workload(
    core_class: GraphClass = GraphClass.ONE_WAY_PATH,
    core_size: int = 2,
    redundancy: int = 3,
    instance_class: GraphClass = GraphClass.DOWNWARD_TREE,
    instance_size: int = 8,
    labeled: bool = True,
    rng: RandomLike = None,
    certain_fraction: float = 0.3,
) -> Workload:
    """A workload whose query carries foldable redundant atoms over a tractable core.

    Draws a core query of ``core_class`` (the class knob) with ``core_size``
    edges, inflates it with ``redundancy`` foldable atoms
    (:func:`add_redundant_atoms`, the redundancy-factor knob), and pairs it
    with a random instance of ``instance_class``.  By construction the
    query *as written* is no longer in ``core_class`` (the extra branches
    leave the path/tree classes), so a non-minimizing dispatcher lands in a
    #P-hard cell and must enumerate or sample — while the minimizing
    dispatcher folds the query back to its ``core_class`` core and answers
    through the polynomial route.  This is the workload behind
    ``repro bench query`` and the minimization differential tests.

    The returned :class:`Workload` reports the class of the query as
    written (via :func:`repro.graphs.classes.graph_class_of`), not
    ``core_class``.
    """
    from repro.graphs.classes import graph_class_of

    r = _rng(rng)
    core = make_query(core_class, labeled, max(core_size, 1), r)
    query = add_redundant_atoms(core, redundancy, r)
    instance_graph = make_instance(instance_class, labeled, instance_size, r)
    instance = attach_random_probabilities(
        instance_graph, r, certain_fraction=certain_fraction
    )
    return Workload(
        query=query,
        instance=instance,
        query_class=graph_class_of(query),
        instance_class=instance_class,
        labeled=labeled,
    )


@dataclass(frozen=True)
class TrafficTrace:
    """A serving-style request stream with Zipf-skewed query popularity.

    ``pool`` holds the distinct query graphs; ``requests`` is the trace
    itself, a sequence of indices into the pool (so duplicate requests are
    *the same* query object, exactly as a serving layer receives them).
    ``skew`` records the Zipf exponent the trace was drawn with.
    """

    pool: Sequence[DiGraph]
    requests: Sequence[int]
    skew: float

    def queries(self) -> list:
        """The trace as a list of query graphs (duplicates share objects)."""
        return [self.pool[index] for index in self.requests]

    def distinct_fraction(self) -> float:
        """Fraction of the trace that is a first occurrence of its query."""
        if not self.requests:
            return 0.0
        return len(set(self.requests)) / len(self.requests)


def zipf_ranks(num_requests: int, pool_size: int, skew: float, rng: RandomLike = None) -> list:
    """Draw ``num_requests`` pool ranks from a Zipf(``skew``) popularity law.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1) ** skew``; ``skew=0`` degenerates to the uniform law.  The
    draw is performed with one cumulative table and ``rng.random()`` per
    request, so a pinned seed reproduces the trace exactly.
    """
    if num_requests < 0:
        raise ReproError(f"num_requests must be non-negative, got {num_requests}")
    if pool_size <= 0:
        raise ReproError(f"pool_size must be positive, got {pool_size}")
    if skew < 0:
        raise ReproError(f"the Zipf skew must be non-negative, got {skew}")
    r = _rng(rng)
    weights = [1.0 / (rank + 1) ** skew for rank in range(pool_size)]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    return [
        min(bisect_left(cumulative, r.random() * total), pool_size - 1)
        for _ in range(num_requests)
    ]


def round_robin_interleave(streams: Sequence[Sequence]) -> list:
    """Merge per-source streams into one arrival order, round-robin.

    Item ``k`` of every stream precedes item ``k+1`` of any stream, and
    within a round items keep their streams' order — the arrival model of a
    serving front end fed by several concurrent clients.  Streams may have
    unequal lengths; exhausted streams simply drop out of later rounds.
    """
    arrival: list = []
    for round_items in zip_longest(*streams):
        arrival.extend(item for item in round_items if item is not None)
    return arrival


def query_traffic_trace(
    num_requests: int,
    pool_size: int,
    skew: float = 1.1,
    query_class: GraphClass = GraphClass.ONE_WAY_PATH,
    labeled: bool = True,
    query_size: int = 3,
    rng: RandomLike = None,
) -> TrafficTrace:
    """A Zipf-skewed query traffic trace, the serving benchmark's workload.

    Draws a pool of ``pool_size`` random queries of ``query_class`` (each a
    fresh draw, so the pool mixes shapes and labels) and a request stream of
    ``num_requests`` pool indices whose popularity follows a Zipf law with
    exponent ``skew`` — the classic model of real query traffic, where a few
    hot queries dominate and a long tail of cold ones follows.  High skew
    means high duplication, which is what the request-coalescing layer of
    :mod:`repro.service` exploits; ``skew=0`` gives uniform traffic as the
    adversarial baseline.  Deterministic under a pinned ``rng``.
    """
    r = _rng(rng)
    pool = [make_query(query_class, labeled, query_size, r) for _ in range(pool_size)]
    requests = zipf_ranks(num_requests, pool_size, skew, r)
    return TrafficTrace(pool=tuple(pool), requests=tuple(requests), skew=skew)


def workload_for_cell(
    query_class: GraphClass,
    instance_class: GraphClass,
    labeled: bool,
    query_size: int,
    instance_size: int,
    rng: RandomLike = None,
    certain_fraction: float = 0.3,
) -> Workload:
    """A random workload for one cell of a classification table.

    The generated query and instance are guaranteed (by construction, and
    re-checked here) to belong to the requested classes, so benchmark timings
    attach to the right cell.
    """
    r = _rng(rng)
    query = make_query(query_class, labeled, query_size, r)
    instance_graph = make_instance(instance_class, labeled, instance_size, r)
    if not graph_in_class(query, query_class):
        raise ReproError(f"generated query does not belong to {query_class}")
    if not graph_in_class(instance_graph, instance_class):
        raise ReproError(f"generated instance does not belong to {instance_class}")
    instance = attach_random_probabilities(instance_graph, r, certain_fraction=certain_fraction)
    return Workload(
        query=query,
        instance=instance,
        query_class=query_class,
        instance_class=instance_class,
        labeled=labeled,
    )


def chaos_traffic_trace(
    num_requests: int,
    pool_size: int,
    hard_every: int = 25,
    num_uncertain_edges: int = 8,
    skew: float = 1.1,
    query_class: GraphClass = GraphClass.ONE_WAY_PATH,
    labeled: bool = True,
    query_size: int = 3,
    rng: RandomLike = None,
) -> "tuple[TrafficTrace, Workload, tuple[int, ...]]":
    """A traffic trace salted with #P-hard requests, for fault-injection runs.

    Starts from :func:`query_traffic_trace` and overwrites every
    ``hard_every``-th position with a guaranteed-intractable request — the
    ``R·S`` query of :func:`intractable_workload`, appended to the pool as
    its last entry.  The hard requests are the natural deadline-degradation
    candidates of a chaos benchmark: they are the ones an exact solver
    cannot answer in bounded time, so a serving layer under a latency
    budget must route them to the approximation path.

    Returns ``(trace, hard_workload, hard_positions)``: the salted trace,
    the hard query's :class:`Workload` (callers register its layered
    instance separately from the trace's main instance), and the trace
    positions holding the hard query.  Deterministic under a pinned
    ``rng``.
    """
    if hard_every <= 0:
        raise ReproError(f"hard_every must be positive, got {hard_every}")
    r = _rng(rng)
    base = query_traffic_trace(
        num_requests,
        pool_size,
        skew=skew,
        query_class=query_class,
        labeled=labeled,
        query_size=query_size,
        rng=r,
    )
    hard = intractable_workload(num_uncertain_edges, r)
    hard_index = len(base.pool)
    requests = list(base.requests)
    hard_positions = tuple(range(hard_every - 1, num_requests, hard_every))
    for position in hard_positions:
        requests[position] = hard_index
    trace = TrafficTrace(
        pool=tuple(base.pool) + (hard.query,),
        requests=tuple(requests),
        skew=skew,
    )
    return trace, hard, hard_positions
