"""Parameterised workload generators used by the benchmark harness.

Every cell of Tables 1–3 is a pair (query class, instance class) in a given
setting (labeled / unlabeled).  The benchmark harness regenerates a table by
drawing, for each cell, random queries and instances *from those classes*
with a controllable size knob, running the dispatcher, and reporting the
algorithm used and its scaling.  This module centralises the drawing logic so
tests and benchmarks share identical workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence, Union

from repro.exceptions import ReproError
from repro.graphs.classes import GraphClass, graph_in_class
from repro.graphs.digraph import DiGraph, UNLABELED
from repro.graphs.generators import (
    DEFAULT_ALPHABET,
    random_connected_graph,
    random_disjoint_union,
    random_downward_tree,
    random_graph,
    random_one_way_path,
    random_polytree,
    random_two_way_path,
    random_unlabeled_query_dag,
)
from repro.probability.prob_graph import ProbabilisticGraph

RandomLike = Union[random.Random, int, None]


def _rng(source: RandomLike) -> random.Random:
    if isinstance(source, random.Random):
        return source
    return random.Random(source)


@dataclass(frozen=True)
class Workload:
    """One benchmark input: a query, a probabilistic instance, and their provenance."""

    query: DiGraph
    instance: ProbabilisticGraph
    query_class: GraphClass
    instance_class: GraphClass
    labeled: bool


def attach_random_probabilities(
    graph: DiGraph,
    rng: RandomLike = None,
    certain_fraction: float = 0.3,
    denominator: int = 8,
) -> ProbabilisticGraph:
    """Annotate a graph with random rational edge probabilities.

    A ``certain_fraction`` of the edges get probability 1 (the paper's
    hardness proofs rely on certain edges, and realistic instances mix
    certain and uncertain facts); the rest get a random probability
    ``k / denominator`` with ``1 ≤ k < denominator``.
    """
    r = _rng(rng)
    probabilities = {}
    for edge in graph.edges():
        if r.random() < certain_fraction:
            probabilities[edge] = Fraction(1)
        else:
            probabilities[edge] = Fraction(r.randint(1, denominator - 1), denominator)
    return ProbabilisticGraph(graph, probabilities)


def _alphabet(labeled: bool) -> Sequence[str]:
    return DEFAULT_ALPHABET if labeled else (UNLABELED,)


def make_query(
    query_class: GraphClass, labeled: bool, size: int, rng: RandomLike = None
) -> DiGraph:
    """A random query graph of the requested class.

    ``size`` is the number of edges for path classes and the number of
    vertices for tree and general classes; disjoint-union classes produce two
    or three components whose sizes sum to roughly ``size``.
    """
    r = _rng(rng)
    alphabet = _alphabet(labeled)
    size = max(size, 1)
    if query_class is GraphClass.ONE_WAY_PATH:
        return random_one_way_path(size, alphabet, r, prefix="q")
    if query_class is GraphClass.TWO_WAY_PATH:
        return random_two_way_path(size, alphabet, r, prefix="q")
    if query_class is GraphClass.DOWNWARD_TREE:
        return random_downward_tree(size + 1, alphabet, r, prefix="q")
    if query_class is GraphClass.POLYTREE:
        return random_polytree(size + 1, alphabet, r, prefix="q")
    if query_class is GraphClass.CONNECTED:
        return random_connected_graph(size + 1, 0.15, alphabet, r, prefix="q")
    if query_class is GraphClass.ALL:
        if labeled:
            return random_graph(size + 1, 0.2, alphabet, r, prefix="q")
        return random_unlabeled_query_dag(size + 1, 0.3, r, prefix="q")
    union_map = {
        GraphClass.UNION_ONE_WAY_PATH: "1WP",
        GraphClass.UNION_TWO_WAY_PATH: "2WP",
        GraphClass.UNION_DOWNWARD_TREE: "DWT",
        GraphClass.UNION_POLYTREE: "PT",
    }
    if query_class in union_map:
        pieces = max(2, min(3, size))
        base = max(1, size // pieces)
        sizes = [base + (1 if i < size % pieces else 0) for i in range(pieces)]
        return random_disjoint_union(sizes, union_map[query_class], alphabet, r)
    raise ReproError(f"cannot generate queries for class {query_class}")


def make_instance(
    instance_class: GraphClass, labeled: bool, size: int, rng: RandomLike = None
) -> DiGraph:
    """A random instance graph of the requested class (same size conventions as queries)."""
    return make_query(instance_class, labeled, size, rng)


def workload_for_cell(
    query_class: GraphClass,
    instance_class: GraphClass,
    labeled: bool,
    query_size: int,
    instance_size: int,
    rng: RandomLike = None,
    certain_fraction: float = 0.3,
) -> Workload:
    """A random workload for one cell of a classification table.

    The generated query and instance are guaranteed (by construction, and
    re-checked here) to belong to the requested classes, so benchmark timings
    attach to the right cell.
    """
    r = _rng(rng)
    query = make_query(query_class, labeled, query_size, r)
    instance_graph = make_instance(instance_class, labeled, instance_size, r)
    if not graph_in_class(query, query_class):
        raise ReproError(f"generated query does not belong to {query_class}")
    if not graph_in_class(instance_graph, instance_class):
        raise ReproError(f"generated instance does not belong to {instance_class}")
    instance = attach_random_probabilities(instance_graph, r, certain_fraction=certain_fraction)
    return Workload(
        query=query,
        instance=instance,
        query_class=query_class,
        instance_class=instance_class,
        labeled=labeled,
    )
