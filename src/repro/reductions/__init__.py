"""Hardness reductions of the paper, with brute-force counters to verify them.

The #P-hardness results are established by polynomial-time reductions from
two canonical counting problems:

* **#Bipartite-Edge-Cover** (Theorem 3.2 / D.1) — used by Proposition 3.3
  (labeled ⊔1WP queries on 1WP instances) and Proposition 3.4 (unlabeled
  ⊔2WP queries on 2WP instances, where two-wayness simulates labels);
* **#PP2DNF** (Definition 4.3) — used by Proposition 4.1 (labeled 1WP
  queries on polytree instances) and Proposition 5.6 (unlabeled 2WP queries
  on polytree instances).

Each reduction builds the query graph and probabilistic instance of the
corresponding proof; the identity ``count = Pr(G ⇝ H) · 2^k`` is verified in
the test suite against brute-force counters, which demonstrates that solving
those PHom cells is at least as hard as the #P-complete counting problems.
"""

from repro.reductions.bipartite import BipartiteGraph, count_edge_covers, random_bipartite_graph
from repro.reductions.edge_cover import (
    prop33_reduction,
    prop34_reduction,
    edge_covers_via_phom,
)
from repro.reductions.pp2dnf import (
    PP2DNF,
    count_satisfying_valuations,
    random_pp2dnf,
    prop41_reduction,
    prop56_reduction,
    satisfying_valuations_via_phom,
)

__all__ = [
    "BipartiteGraph",
    "count_edge_covers",
    "random_bipartite_graph",
    "prop33_reduction",
    "prop34_reduction",
    "edge_covers_via_phom",
    "PP2DNF",
    "count_satisfying_valuations",
    "random_pp2dnf",
    "prop41_reduction",
    "prop56_reduction",
    "satisfying_valuations_via_phom",
]
