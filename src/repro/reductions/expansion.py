"""Edge-expansion helper shared by the unlabeled hardness reductions.

Propositions 3.4 and 5.6 turn labeled reductions into unlabeled ones by
replacing each labeled edge with a short pattern of unlabeled edges whose
*orientations* encode the original label (two-wayness simulates labels).
:func:`expand_graph` performs this replacement generically: every edge whose
label appears in ``patterns`` is replaced by a path of fresh intermediate
vertices whose edges follow the pattern's orientation signs, and (for
probabilistic instances) exactly one edge of the pattern inherits the
original edge's probability while the others are certain.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.graphs.digraph import DiGraph, Edge, UNLABELED
from repro.probability.prob_graph import ProbabilisticGraph


def expand_graph(
    graph: DiGraph,
    patterns: Mapping[str, Sequence[int]],
    probability_positions: Optional[Mapping[str, int]] = None,
    probabilities: Optional[Mapping[Edge, Fraction]] = None,
) -> Tuple[DiGraph, Dict[Tuple[Edge, int], Edge], Dict[Edge, Fraction]]:
    """Replace every labeled edge by an unlabeled orientation pattern.

    Parameters
    ----------
    graph:
        The labeled graph to expand.
    patterns:
        For each label, the sequence of orientation signs (+1 forward, −1
        backward) of the replacement path.  Every label of the graph must be
        covered.
    probability_positions:
        For each label, the 0-based index of the pattern edge that inherits
        the original edge's probability; remaining pattern edges get
        probability 1.  Only needed when ``probabilities`` is given.
    probabilities:
        The probability of each original edge (omit when expanding a query
        graph).

    Returns
    -------
    expanded:
        The unlabeled expanded graph.
    edge_map:
        Maps ``(original_edge, position)`` to the corresponding expanded edge.
    expanded_probabilities:
        Probabilities for the expanded edges (empty when ``probabilities`` is
        ``None``).
    """
    expanded = DiGraph()
    for vertex in graph.vertices:
        expanded.add_vertex(("v", vertex))
    edge_map: Dict[Tuple[Edge, int], Edge] = {}
    expanded_probabilities: Dict[Edge, Fraction] = {}
    for edge in graph.edges():
        if edge.label not in patterns:
            raise ReproError(f"no expansion pattern for label {edge.label!r}")
        signs = list(patterns[edge.label])
        if not signs or any(sign not in (1, -1) for sign in signs):
            raise ReproError(f"invalid expansion pattern for label {edge.label!r}")
        waypoints = [("v", edge.source)]
        for position in range(1, len(signs)):
            waypoints.append(("w", edge.source, edge.target, edge.label, position))
        waypoints.append(("v", edge.target))
        for position, sign in enumerate(signs):
            lower, upper = waypoints[position], waypoints[position + 1]
            if sign == 1:
                new_edge = expanded.add_edge(lower, upper, UNLABELED)
            else:
                new_edge = expanded.add_edge(upper, lower, UNLABELED)
            edge_map[(edge, position)] = new_edge
            if probabilities is not None:
                if probability_positions is None or edge.label not in probability_positions:
                    raise ReproError(
                        f"no probability position declared for label {edge.label!r}"
                    )
                carries = position == probability_positions[edge.label]
                expanded_probabilities[new_edge] = (
                    Fraction(probabilities[edge]) if carries else Fraction(1)
                )
    return expanded, edge_map, expanded_probabilities


def expand_instance(
    instance: ProbabilisticGraph,
    patterns: Mapping[str, Sequence[int]],
    probability_positions: Mapping[str, int],
) -> ProbabilisticGraph:
    """Expand a labeled probabilistic instance into an unlabeled one."""
    expanded, _edge_map, expanded_probabilities = expand_graph(
        instance.graph,
        patterns,
        probability_positions=probability_positions,
        probabilities=instance.probabilities(),
    )
    return ProbabilisticGraph(expanded, expanded_probabilities)


def expand_query(graph: DiGraph, patterns: Mapping[str, Sequence[int]]) -> DiGraph:
    """Expand a labeled query graph into an unlabeled one."""
    expanded, _edge_map, _probs = expand_graph(graph, patterns)
    return expanded
