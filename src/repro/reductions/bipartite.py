"""Bipartite undirected graphs and #Bipartite-Edge-Cover (Definition 3.1).

An *edge cover* of an undirected graph is a set of edges touching every
vertex; counting the edge covers of a bipartite graph is #P-complete
(Theorem 3.2, strengthened in Appendix D).  The brute-force counter below is
the ground truth against which the reductions of Propositions 3.3 and 3.4 are
verified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import product
from typing import List, Sequence, Tuple, Union

from repro.exceptions import ReproError

RandomLike = Union[random.Random, int, None]


def _rng(source: RandomLike) -> random.Random:
    if isinstance(source, random.Random):
        return source
    return random.Random(source)


@dataclass(frozen=True)
class BipartiteGraph:
    """A bipartite undirected graph ``Γ = (X ⊔ Y, E)``.

    Vertices are identified by 1-based indices into the two parts; edges are
    pairs ``(x_index, y_index)``.  The edge order matters for the reductions
    (edge ``j`` becomes the ``j``-th block of the instance path), so edges
    are stored as a tuple.
    """

    num_left: int
    num_right: int
    edges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.num_left < 1 or self.num_right < 1:
            raise ReproError("both parts of a bipartite graph must be non-empty")
        seen = set()
        for left, right in self.edges:
            if not (1 <= left <= self.num_left and 1 <= right <= self.num_right):
                raise ReproError(f"edge ({left}, {right}) is out of range")
            if (left, right) in seen:
                raise ReproError(f"duplicate edge ({left}, {right})")
            seen.add((left, right))

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return len(self.edges)

    def degree_left(self, index: int) -> int:
        """Degree of the ``index``-th left vertex."""
        return sum(1 for left, _right in self.edges if left == index)

    def degree_right(self, index: int) -> int:
        """Degree of the ``index``-th right vertex."""
        return sum(1 for _left, right in self.edges if right == index)

    def has_isolated_vertex(self) -> bool:
        """Whether some vertex has no incident edge (then there is no edge cover)."""
        lefts = {left for left, _right in self.edges}
        rights = {right for _left, right in self.edges}
        return len(lefts) < self.num_left or len(rights) < self.num_right


def count_edge_covers(graph: BipartiteGraph) -> int:
    """The number of edge covers of ``graph``, by brute-force enumeration.

    Exponential in the number of edges — exactly what #P-hardness predicts —
    and used only on small inputs to validate the reductions.
    """
    count = 0
    for keep in product((False, True), repeat=graph.num_edges):
        covered_left = set()
        covered_right = set()
        for (left, right), kept in zip(graph.edges, keep):
            if kept:
                covered_left.add(left)
                covered_right.add(right)
        if len(covered_left) == graph.num_left and len(covered_right) == graph.num_right:
            count += 1
    return count


def random_bipartite_graph(
    num_left: int,
    num_right: int,
    edge_probability: float = 0.5,
    rng: RandomLike = None,
    ensure_no_isolated: bool = True,
) -> BipartiteGraph:
    """A random bipartite graph, by default without isolated vertices.

    Isolated vertices make the edge-cover count trivially zero; keeping them
    out produces more informative test and benchmark inputs.
    """
    r = _rng(rng)
    edges: List[Tuple[int, int]] = []
    for left in range(1, num_left + 1):
        for right in range(1, num_right + 1):
            if r.random() < edge_probability:
                edges.append((left, right))
    if ensure_no_isolated:
        covered_left = {left for left, _ in edges}
        covered_right = {right for _, right in edges}
        for left in range(1, num_left + 1):
            if left not in covered_left:
                edges.append((left, r.randint(1, num_right)))
        covered_right = {right for _, right in edges}
        for right in range(1, num_right + 1):
            if right not in covered_right:
                edges.append((r.randint(1, num_left), right))
    return BipartiteGraph(num_left, num_right, tuple(sorted(set(edges))))
