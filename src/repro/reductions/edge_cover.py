"""The #Bipartite-Edge-Cover reductions of Propositions 3.3 and 3.4.

*Proposition 3.3* (labeled setting).  Given a bipartite graph ``Γ`` with
parts of sizes ``n_l`` and ``n_r`` and edges ``e_1 .. e_m``, build

* the 1WP probabilistic instance
  ``-C-> He_1 -C-> He_2 -C-> ... -C-> He_m -C->`` where
  ``He_j = (-L->)^{l_j} -V-> (-R->)^{r_j}``, the ``V`` edges having
  probability ½ (they encode whether ``e_j`` is picked) and all other edges
  probability 1;
* the ⊔1WP query with one component ``-C-> (-L->)^i -V->`` per left vertex
  ``x_i`` and one component ``-V-> (-R->)^i -C->`` per right vertex ``y_i``
  (each component asserts that some incident edge is picked).

Then ``#edge-covers(Γ) = Pr(G ⇝ H) · 2^m``.

*Proposition 3.4* (unlabeled setting).  Apply the same construction, then
replace every ``L``/``R`` edge by the orientation pattern ``→→←``, every
``C`` edge by ``←←←`` and every ``V`` edge by ``→→→→→←`` (its *first* edge
keeps probability ½); two-wayness now plays the role of the labels, and the
same counting identity holds on the resulting ⊔2WP query and 2WP instance.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.graphs.builders import disjoint_union, one_way_path
from repro.graphs.digraph import DiGraph
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.reductions.bipartite import BipartiteGraph
from repro.reductions.expansion import expand_instance, expand_query

#: Labels used by the Proposition 3.3 construction.
LABEL_C, LABEL_L, LABEL_V, LABEL_R = "C", "L", "V", "R"

#: Orientation patterns of Proposition 3.4 (two-wayness simulating labels).
PROP34_PATTERNS: Dict[str, Tuple[int, ...]] = {
    LABEL_L: (1, 1, -1),
    LABEL_R: (1, 1, -1),
    LABEL_C: (-1, -1, -1),
    LABEL_V: (1, 1, 1, 1, 1, -1),
}
#: Which pattern edge carries the original probability (the first one, per the proof).
PROP34_PROBABILITY_POSITIONS: Dict[str, int] = {
    LABEL_L: 0,
    LABEL_R: 0,
    LABEL_C: 0,
    LABEL_V: 0,
}


def prop33_reduction(graph: BipartiteGraph) -> Tuple[DiGraph, ProbabilisticGraph]:
    """The Proposition 3.3 reduction: a labeled ⊔1WP query and 1WP instance.

    Returns ``(query, instance)`` such that the number of edge covers of the
    input bipartite graph equals ``Pr(query ⇝ instance) · 2^m``.
    """
    if graph.num_edges == 0:
        raise ReproError("the reduction needs at least one edge in the bipartite graph")
    instance_labels: List[str] = [LABEL_C]
    for left, right in graph.edges:
        instance_labels.extend([LABEL_L] * left)
        instance_labels.append(LABEL_V)
        instance_labels.extend([LABEL_R] * right)
        instance_labels.append(LABEL_C)
    instance_graph = one_way_path(instance_labels, prefix="h")
    probabilities = {
        edge: Fraction(1, 2) if edge.label == LABEL_V else Fraction(1)
        for edge in instance_graph.edges()
    }
    instance = ProbabilisticGraph(instance_graph, probabilities)

    components: List[DiGraph] = []
    for i in range(1, graph.num_left + 1):
        components.append(one_way_path([LABEL_C] + [LABEL_L] * i + [LABEL_V], prefix=f"x{i}_"))
    for i in range(1, graph.num_right + 1):
        components.append(one_way_path([LABEL_V] + [LABEL_R] * i + [LABEL_C], prefix=f"y{i}_"))
    query = disjoint_union(components, prefix="q")
    return query, instance


def prop34_reduction(graph: BipartiteGraph) -> Tuple[DiGraph, ProbabilisticGraph]:
    """The Proposition 3.4 reduction: an unlabeled ⊔2WP query and 2WP instance.

    Obtained from the Proposition 3.3 output by replacing each labeled edge
    with its orientation pattern; the same counting identity holds.
    """
    labeled_query, labeled_instance = prop33_reduction(graph)
    query = expand_query(labeled_query, PROP34_PATTERNS)
    instance = expand_instance(labeled_instance, PROP34_PATTERNS, PROP34_PROBABILITY_POSITIONS)
    return query, instance


def edge_covers_via_phom(
    graph: BipartiteGraph,
    phom_solver: Optional[Callable[[DiGraph, ProbabilisticGraph], Fraction]] = None,
    unlabeled: bool = False,
) -> int:
    """Count the edge covers of ``graph`` through the PHom reduction.

    Parameters
    ----------
    graph:
        The bipartite graph whose edge covers are counted.
    phom_solver:
        Callable computing ``Pr(query ⇝ instance)``; defaults to the
        brute-force oracle (the reductions target #P-hard cells, so no
        polynomial solver applies).
    unlabeled:
        Use the Proposition 3.4 (unlabeled) reduction instead of the
        Proposition 3.3 (labeled) one.
    """
    solver = phom_solver or brute_force_phom
    query, instance = prop34_reduction(graph) if unlabeled else prop33_reduction(graph)
    probability = solver(query, instance)
    count = probability * (2 ** graph.num_edges)
    if count.denominator != 1:
        raise ReproError(
            f"reduction produced a non-integer count {count}; the PHom solver is inconsistent"
        )
    return int(count)
