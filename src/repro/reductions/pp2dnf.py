"""PP2DNF formulas and the reductions of Propositions 4.1 and 5.6.

A *positive partitioned 2-DNF* (Definition 4.3) is a formula
``∨_{j=1..m} (X_{x_j} ∧ Y_{y_j})`` over two disjoint variable sets
``X = {X_1..X_{n_1}}`` and ``Y = {Y_1..Y_{n_2}}``; #PP2DNF (counting its
satisfying valuations) is #P-hard.

*Proposition 4.1* (labeled setting) reduces #PP2DNF to PHom on a 1WP query
and a polytree instance over the labels ``{S, T}``: the instance has one
branch per variable hanging off a central vertex ``R`` (the variable's first
``S`` edge has probability ½ and encodes its truth value), the clause indices
are encoded by the depth at which a ``T``-labeled gadget is attached, and the
query ``-T-> (-S->)^{m+3} -T->`` has a match exactly when two chosen
variables carry gadgets at depths that sum correctly — i.e. when they occur
in the same clause.  Then ``#SAT(φ) = Pr(G ⇝ H) · 2^{n_1 + n_2}``.

*Proposition 5.6* (unlabeled setting) applies the orientation patterns
``S ↦ →→←`` and ``T ↦ →→→`` to both the query and the instance (the middle
edge of the valuation ``S`` edges keeps probability ½); the instance remains
a polytree, the query becomes a 2WP, and the same identity holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.graphs.builders import one_way_path
from repro.graphs.digraph import DiGraph
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph
from repro.reductions.expansion import expand_instance, expand_query

#: Labels used by the Proposition 4.1 construction.
LABEL_S, LABEL_T = "S", "T"

#: Orientation patterns of Proposition 5.6 (two-wayness in the query simulating labels).
PROP56_PATTERNS: Dict[str, Tuple[int, ...]] = {
    LABEL_S: (1, 1, -1),
    LABEL_T: (1, 1, 1),
}
#: The middle edge of an expanded S edge carries the original probability.
PROP56_PROBABILITY_POSITIONS: Dict[str, int] = {LABEL_S: 1, LABEL_T: 0}

RandomLike = Union[random.Random, int, None]


def _rng(source: RandomLike) -> random.Random:
    if isinstance(source, random.Random):
        return source
    return random.Random(source)


@dataclass(frozen=True)
class PP2DNF:
    """A positive partitioned 2-DNF formula.

    Attributes
    ----------
    num_x, num_y:
        Sizes of the two variable partitions.
    clauses:
        The clauses, as 1-based index pairs ``(x_j, y_j)``.
    """

    num_x: int
    num_y: int
    clauses: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.num_x < 1 or self.num_y < 1:
            raise ReproError("both variable partitions must be non-empty")
        if not self.clauses:
            raise ReproError("a PP2DNF formula needs at least one clause")
        for x_index, y_index in self.clauses:
            if not (1 <= x_index <= self.num_x and 1 <= y_index <= self.num_y):
                raise ReproError(f"clause ({x_index}, {y_index}) is out of range")

    @property
    def num_clauses(self) -> int:
        """Number of clauses ``m``."""
        return len(self.clauses)

    @property
    def num_variables(self) -> int:
        """Total number of variables ``n_1 + n_2``."""
        return self.num_x + self.num_y

    def evaluate(self, x_values: Tuple[bool, ...], y_values: Tuple[bool, ...]) -> bool:
        """Evaluate the formula under a valuation of the two partitions."""
        return any(x_values[x - 1] and y_values[y - 1] for x, y in self.clauses)


def count_satisfying_valuations(formula: PP2DNF) -> int:
    """#PP2DNF by brute-force enumeration over the ``2^{n_1 + n_2}`` valuations."""
    count = 0
    for x_values in product((False, True), repeat=formula.num_x):
        for y_values in product((False, True), repeat=formula.num_y):
            if formula.evaluate(x_values, y_values):
                count += 1
    return count


def random_pp2dnf(
    num_x: int, num_y: int, num_clauses: int, rng: RandomLike = None
) -> PP2DNF:
    """A random PP2DNF formula with distinct random clauses."""
    r = _rng(rng)
    all_pairs = [(x, y) for x in range(1, num_x + 1) for y in range(1, num_y + 1)]
    if num_clauses > len(all_pairs):
        raise ReproError("cannot draw more distinct clauses than variable pairs")
    clauses = tuple(sorted(r.sample(all_pairs, num_clauses)))
    return PP2DNF(num_x, num_y, clauses)


# ----------------------------------------------------------------------
# Proposition 4.1: labeled 1WP query on a polytree instance
# ----------------------------------------------------------------------
def prop41_reduction(formula: PP2DNF) -> Tuple[DiGraph, ProbabilisticGraph]:
    """The Proposition 4.1 reduction: a labeled 1WP query and PT instance.

    Returns ``(query, instance)`` with
    ``#SAT(formula) = Pr(query ⇝ instance) · 2^{n_1 + n_2}``.
    """
    m = formula.num_clauses
    graph = DiGraph()
    probabilities: Dict[Tuple, Fraction] = {}
    root = "R"
    graph.add_vertex(root)

    def x_var(i: int) -> str:
        return f"X{i}"

    def y_var(i: int) -> str:
        return f"Y{i}"

    def x_chain(i: int, j: int) -> str:
        return f"X{i},{j}"

    def y_chain(i: int, j: int) -> str:
        return f"Y{i},{j}"

    # Valuation edges (probability 1/2).
    for i in range(1, formula.num_x + 1):
        graph.add_edge(x_var(i), root, LABEL_S)
        probabilities[(x_var(i), root)] = Fraction(1, 2)
    for i in range(1, formula.num_y + 1):
        graph.add_edge(root, y_var(i), LABEL_S)
        probabilities[(root, y_var(i))] = Fraction(1, 2)
    # Chains encoding clause indices by depth (probability 1).
    for i in range(1, formula.num_x + 1):
        graph.add_edge(x_chain(i, m), x_var(i), LABEL_S)
        for j in range(1, m):
            graph.add_edge(x_chain(i, j), x_chain(i, j + 1), LABEL_S)
    for i in range(1, formula.num_y + 1):
        graph.add_edge(y_var(i), y_chain(i, 1), LABEL_S)
        for j in range(1, m):
            graph.add_edge(y_chain(i, j), y_chain(i, j + 1), LABEL_S)
    # Clause gadgets: T edges marking which chain positions belong to clauses.
    for j, (x_index, y_index) in enumerate(formula.clauses, start=1):
        graph.add_edge(f"A{x_index},{j}", x_chain(x_index, j), LABEL_T)
        graph.add_edge(y_chain(y_index, j), f"B{y_index},{j}", LABEL_T)

    instance = ProbabilisticGraph(graph, probabilities, default=1)
    query = one_way_path([LABEL_T] + [LABEL_S] * (m + 3) + [LABEL_T], prefix="q")
    return query, instance


# ----------------------------------------------------------------------
# Proposition 5.6: unlabeled 2WP query on a polytree instance
# ----------------------------------------------------------------------
def prop56_reduction(formula: PP2DNF) -> Tuple[DiGraph, ProbabilisticGraph]:
    """The Proposition 5.6 reduction: an unlabeled 2WP query and PT instance.

    Obtained from the Proposition 4.1 output by replacing ``S`` edges with
    the pattern ``→→←`` and ``T`` edges with ``→→→``; the middle edge of the
    valuation ``S`` edges keeps probability ½.
    """
    labeled_query, labeled_instance = prop41_reduction(formula)
    query = expand_query(labeled_query, PROP56_PATTERNS)
    instance = expand_instance(labeled_instance, PROP56_PATTERNS, PROP56_PROBABILITY_POSITIONS)
    return query, instance


def satisfying_valuations_via_phom(
    formula: PP2DNF,
    phom_solver: Optional[Callable[[DiGraph, ProbabilisticGraph], Fraction]] = None,
    unlabeled: bool = False,
) -> int:
    """Count the satisfying valuations of ``formula`` through the PHom reduction.

    Parameters
    ----------
    formula:
        The PP2DNF formula.
    phom_solver:
        Callable computing ``Pr(query ⇝ instance)``; defaults to the
        brute-force oracle.
    unlabeled:
        Use the Proposition 5.6 (unlabeled) reduction instead of the
        Proposition 4.1 (labeled) one.
    """
    solver = phom_solver or brute_force_phom
    query, instance = prop56_reduction(formula) if unlabeled else prop41_reduction(formula)
    probability = solver(query, instance)
    count = probability * (2 ** formula.num_variables)
    if count.denominator != 1:
        raise ReproError(
            f"reduction produced a non-integer count {count}; the PHom solver is inconsistent"
        )
    return int(count)
