"""Compiled query plans: probability-independent structure, reusable arithmetic.

Every tractable case of the paper shares one shape: an expensive *structural*
phase — interval matching on two-way paths (Proposition 4.11), the KMP
skeleton on downward trees (Proposition 4.10), the rooted fold order or the
tree-automaton d-DNNF on polytrees (Propositions 5.4/5.5), the graded-DAG
collapse (Proposition 3.6) — followed by cheap arithmetic over the edge
probabilities.  A :class:`CompiledPlan` captures the structural phase once:

* :meth:`CompiledPlan.evaluate` recomputes the probability with *only*
  arithmetic, against the instance's live probabilities or a caller-supplied
  override table;
* :meth:`CompiledPlan.update` maintains a serving-side probability table and
  re-evaluates after a single-edge change — incrementally, through the
  reverse-wire indices of :class:`~repro.lineage.ddnnf.CircuitEvaluator`, on
  d-DNNF-backed plans;
* :class:`PlanCache` is a small LRU keyed on the *canonical query form* and
  the (frozen) instance identity, wired into
  :meth:`~repro.core.solver.PHomSolver.solve` /
  :meth:`~repro.core.solver.PHomSolver.solve_many` so repeated and duplicate
  queries compile once.

Exact-mode plan evaluations are bit-identical to the one-shot API: the
arithmetic halves perform the same operations in the same order as the
functions they were split out of.

Invalidation contract
---------------------

Plans capture *structure only*, so:

* mutating a probability (``instance.set_probability``) does **not** stale a
  plan — the next :meth:`~CompiledPlan.evaluate` reads the live table;
* instance graphs are frozen, so their structure cannot change under a plan;
* query graphs may be mutable — the cache keys on the canonical *content* of
  the query (recomputed after any mutation), so an edited query simply maps
  to a different cache entry;
* a new instance object (even structurally equal) is a different cache key
  and compiles fresh plans.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.approx import ApproxEstimate, ApproxParams, karp_luby_probability
from repro.exceptions import ClassConstraintError, IntractableFallbackWarning, PlanError
from repro.graphs.classes import (
    GraphClass,
    graph_class_of,
    is_two_way_path,
    two_way_path_order,
)
from repro.graphs.digraph import DiGraph, Edge, Vertex
from repro.lineage.builders import match_lineage
from repro.lineage.ddnnf import CircuitEvaluator, DDNNF
from repro.lineage.dnf import PositiveDNF
from repro.numeric import EXACT, FAST, Number, NumericContext, resolve_context
from repro.obs.trace import current_tracer
from repro.probability.brute_force import brute_force_phom
from repro.probability.prob_graph import ProbabilisticGraph, as_probability
from repro.query.minimize import query_core
from repro.core.labeled_2wp import (
    TwoWayPathSkeleton,
    compile_connected_on_2wp,
    evaluate_two_way_path_skeleton,
)
from repro.core.labeled_dwt import (
    DWTPathSkeleton,
    compile_labeled_path_on_dwt,
    evaluate_dwt_path_skeleton,
)
from repro.core.unlabeled_pt import (
    PolytreeDPSkeleton,
    compile_path_circuit_on_polytree,
    compile_path_dp_on_polytree,
    evaluate_polytree_dp_skeleton,
)

PrecisionLike = Union[str, NumericContext, None]

#: The warning text for #P-hard cells, shared with the solver dispatch so the
#: message cannot drift between the two emission points.
BRUTE_FORCE_FALLBACK_MESSAGE = (
    "falling back to exponential brute-force enumeration: the query/instance "
    "combination is #P-hard in combined complexity"
)


# ----------------------------------------------------------------------
# canonical query forms
# ----------------------------------------------------------------------
def canonical_query_key(query: DiGraph, minimize: bool = True) -> Hashable:
    """A hashable canonical form of the query, memoised on the query graph.

    The key is computed on the query's homomorphic core
    (:func:`repro.query.query_core`), so *syntactically distinct but
    equivalent* queries — e.g. a query with redundant foldable atoms and its
    minimized form — share one key, which strictly increases plan-cache and
    service-coalescing hits.  Pass ``minimize=False`` to key on the query
    exactly as written (the pre-minimization behaviour, used by solvers
    constructed with ``minimize_queries=False``).

    Two-way-path cores (which include one-way paths, the most common serving
    shape) canonicalise to the lexicographically smaller of their two
    traversal direction/label sequences, so *isomorphic* path queries share
    one key regardless of vertex names.  Other shapes canonicalise to their
    exact content (vertex set + labeled edge set), which dedupes
    equal-by-value duplicates.  The key is recomputed automatically after a
    mutation of an unfrozen query graph (the graph cache is cleared).
    """
    if not minimize:
        return query.cached(
            "canonical_query_key_raw", lambda: _compute_canonical_key(query)
        )
    return query.cached(
        "canonical_query_key", lambda: _compute_canonical_key(query_core(query))
    )


def _compute_canonical_key(query: DiGraph) -> Hashable:
    if is_two_way_path(query):
        order = two_way_path_order(query)
        forward: List[Tuple[str, str]] = []
        for left, right in zip(order, order[1:]):
            if query.has_edge(left, right):
                forward.append((">", query.label_of(left, right)))
            else:
                forward.append(("<", query.label_of(right, left)))
        backward = [(">" if d == "<" else "<", label) for d, label in reversed(forward)]
        return ("2wp", min(tuple(forward), tuple(backward)))
    # Key on the actual (hashable) vertex and edge values: graph semantics
    # are equality-based, and going through repr() would collapse distinct
    # vertices whose reprs collide into the same key.
    return ("graph", query.vertices, query.edge_set())


# ----------------------------------------------------------------------
# per-component evaluators (the arithmetic half, one instance component each)
# ----------------------------------------------------------------------
class ComponentEvaluator:
    """One component's arithmetic: evaluate against a probability table."""

    #: Whether :meth:`update_edge` re-evaluates incrementally.
    incremental = False

    def evaluate(self, probabilities: Mapping[Edge, Number], context: NumericContext) -> Number:
        raise NotImplementedError

    def start_serving(
        self, probabilities: Mapping[Edge, Number], context: NumericContext
    ) -> Number:
        """Full evaluation that may retain state for incremental updates."""
        return self.evaluate(probabilities, context)

    def update_edge(
        self,
        edge: Edge,
        value: Number,
        probabilities: Mapping[Edge, Number],
        context: NumericContext,
    ) -> Number:
        """Re-evaluate after ``probabilities[edge]`` changed to ``value``."""
        return self.evaluate(probabilities, context)


class IntervalEvaluator(ComponentEvaluator):
    """Proposition 4.11: run-length DP over a compiled interval skeleton."""

    def __init__(self, skeleton: TwoWayPathSkeleton) -> None:
        self.skeleton = skeleton

    def evaluate(self, probabilities, context):
        return evaluate_two_way_path_skeleton(self.skeleton, probabilities, context)


class DWTPathEvaluator(ComponentEvaluator):
    """Proposition 4.10: KMP DP over a compiled downward-tree skeleton."""

    def __init__(self, skeleton: DWTPathSkeleton) -> None:
        self.skeleton = skeleton

    def evaluate(self, probabilities, context):
        return evaluate_dwt_path_skeleton(self.skeleton, probabilities, context)


class PolytreeDPEvaluator(ComponentEvaluator):
    """Proposition 5.4 (direct route): distribution fold over a rooted skeleton."""

    def __init__(self, skeleton: PolytreeDPSkeleton) -> None:
        self.skeleton = skeleton

    def evaluate(self, probabilities, context):
        return evaluate_polytree_dp_skeleton(self.skeleton, probabilities, context)


class CircuitComponentEvaluator(ComponentEvaluator):
    """Proposition 5.4 (automaton route): a compiled d-DNNF lineage circuit.

    Supports true incremental updates: after :meth:`start_serving`, a
    single-edge change recomputes only the ancestors of the touched variable
    through the circuit's reverse-wire index.
    """

    incremental = True

    def __init__(self, circuit: DDNNF) -> None:
        self.circuit = circuit
        # Two evaluators so a stateless evaluate() between updates cannot
        # clobber the gate values the serving-side incremental path relies on.
        self._stateless: Optional[CircuitEvaluator] = None
        self._serving: Optional[CircuitEvaluator] = None

    def __getstate__(self):
        """Pickle the circuit only; evaluators are per-process scratch state."""
        state = self.__dict__.copy()
        state["_stateless"] = None
        state["_serving"] = None
        return state

    def evaluate(self, probabilities, context):
        if self._stateless is None:
            self._stateless = CircuitEvaluator(self.circuit)
        # probability() runs the precompiled slots without retaining the
        # O(gates) value table the incremental path would need.
        return self._stateless.probability(probabilities, context)

    def start_serving(self, probabilities, context):
        self._serving = CircuitEvaluator(self.circuit)
        return self._serving.evaluate(probabilities, context)

    def update_edge(self, edge, value, probabilities, context):
        if self._serving is None:  # pragma: no cover - guarded by ComponentPlan
            return self.start_serving(probabilities, context)
        return self._serving.update(edge, value)


# ----------------------------------------------------------------------
# compiled plans
# ----------------------------------------------------------------------
class CompiledPlan:
    """The reusable result of ``PHomSolver.compile(query, instance)``.

    Carries the dispatch metadata (method name, backing proposition, class
    verdicts) captured at compile time plus the structural skeletons, and
    exposes the two probability-only entry points :meth:`evaluate` and
    :meth:`update`.
    """

    def __init__(
        self,
        query: DiGraph,
        instance: ProbabilisticGraph,
        method: str,
        proposition: Optional[str],
        labeled: bool,
        notes: str = "",
        default_context: NumericContext = EXACT,
    ) -> None:
        self.query = query
        self.instance = instance
        self.method = method
        self.proposition = proposition
        self.query_class: GraphClass = graph_class_of(query)
        self.instance_class: GraphClass = graph_class_of(instance.graph)
        self.labeled = labeled
        self.notes = notes
        self._default_context = default_context
        #: Lazily compiled flat tape (see :meth:`tape`); pickled with the
        #: plan so it ships to serving workers and the persistent store.
        self._tape = None

    # -- evaluation ----------------------------------------------------
    def evaluate(
        self,
        probabilities: Optional[Mapping] = None,
        precision: PrecisionLike = None,
    ) -> Number:
        """Recompute the probability; arithmetic only, no structural work.

        ``probabilities`` overrides the instance's live table (missing edges
        keep their instance value); keys may be :class:`Edge` objects or
        ``(source, target)`` pairs.  ``precision`` selects the numeric
        backend, defaulting to the compiling solver's.
        """
        with current_tracer().span("plan.evaluate") as span:
            if span:
                span.attrs["method"] = self.method
            context = self._context(precision)
            table = self._probability_table(probabilities, context)
            return self._evaluate_with(table, context)

    # -- tape lowering -------------------------------------------------
    def tape(self):
        """The plan's flat-tape lowering (compiled lazily, memoised).

        Returns a :class:`~repro.tape.PlanTape`: the arithmetic half
        flattened to parallel opcode/operand arrays evaluated in one
        non-recursive loop, with a batched
        :meth:`~repro.tape.PlanTape.evaluate_many` entry point.  The tape
        performs the same operations as :meth:`evaluate`, so exact-mode
        results are bit-identical.  Raises
        :class:`~repro.exceptions.PlanError` on brute-force fallback plans
        (no arithmetic half to lower).  Prefer
        :meth:`~repro.core.solver.PHomSolver.tape_for` when the plan lives
        in a solver's cache — the solver also accounts the compile in the
        cache statistics and refreshes the persistent store entry.
        """
        if getattr(self, "_tape", None) is None:
            # Imported lazily: repro.tape imports the plan classes, so a
            # module-scope import here would be circular.
            from repro.tape import compile_plan_tape

            with current_tracer().span("tape.compile") as span:
                self._tape = compile_plan_tape(self)
                if span:
                    span.attrs["method"] = self.method
        return self._tape

    def has_tape(self) -> bool:
        """Whether a tape has been compiled for this plan already."""
        return getattr(self, "_tape", None) is not None

    def evaluate_many(
        self,
        batches: Sequence[Optional[Mapping]],
        precision: PrecisionLike = None,
        backend: str = "auto",
    ) -> List[Number]:
        """Answer a whole batch of probability valuations in one pass.

        Each entry of ``batches`` is an override mapping exactly as in
        :meth:`evaluate` (``None`` or ``{}`` for the instance's live
        table); the result list is index-aligned.  Evaluation runs on the
        plan's flat tape (compiled on first use, see :meth:`tape`), which
        vectorizes every operation across the batch — with numpy on the
        float backend when available, dependency-free stdlib lists
        otherwise — instead of re-interpreting the plan per valuation.
        Exact-mode results are bit-identical to looped :meth:`evaluate`
        calls; ``backend`` is forwarded to the tape.
        """
        context = self._context(precision)
        tape = self.tape()
        with current_tracer().span("tape.evaluate") as span:
            if span:
                span.attrs["batch"] = len(batches)
                span.attrs["method"] = self.method
            # Deltas against the live table, not full per-valuation copies:
            # the per-entry setup cost scales with the overridden edges,
            # which is what makes large batches an order of magnitude
            # cheaper than looped evaluate() calls.
            deltas = [
                {
                    self._resolve_edge(key): context.convert(as_probability(value))
                    for key, value in overrides.items()
                }
                if overrides
                else None
                for overrides in batches
            ]
            return tape.evaluate_overrides(
                context.instance_probabilities(self.instance),
                deltas,
                precision=context,
                backend=backend,
            )

    def tape_evaluator(
        self,
        probabilities: Optional[Mapping] = None,
        precision: PrecisionLike = None,
    ):
        """A bound :class:`~repro.tape.TapeEvaluator` over the plan's tape.

        Seeds a fresh register file from the instance's live table (plus
        ``probabilities`` overrides, as in :meth:`evaluate`) and returns
        the evaluator, ready for incremental
        :meth:`~repro.tape.TapeEvaluator.update` calls — single-edge slot
        rewrites that replay only the dependent tape operations, on every
        tractable plan kind.
        """
        from repro.tape import TapeEvaluator

        context = self._context(precision)
        evaluator = TapeEvaluator(self.tape())
        evaluator.bind(self._probability_table(probabilities, context), context)
        return evaluator

    def update(
        self,
        edge,
        probability,
        precision: PrecisionLike = None,
    ) -> Number:
        """Set one edge's probability in the plan's serving table and re-evaluate.

        The serving table is seeded from the instance on the first call and
        lives *on the plan* — the instance is never mutated, and because
        :meth:`PHomSolver.compile` serves cached plan objects, callers that
        compiled the same canonical query against the same instance share
        one serving table (use :meth:`ComponentPlan.reset_serving`, or a
        solver with ``plan_cache_size=0``, for an independent session).
        Switching ``precision`` mid-serving raises :class:`PlanError`
        instead of silently discarding the accumulated updates.  d-DNNF-
        backed plans recompute only the ancestors of the touched variable;
        other plan kinds redo their (arithmetic-only) evaluation.  Returns
        the new probability.
        """
        raise PlanError(f"{type(self).__name__} does not support update()")

    def reset_serving(self) -> None:
        """Drop any serving-side state; the next update() reseeds from the instance.

        A no-op on plan kinds without serving state (constants, fallbacks).
        """

    def rebind(self, instance: ProbabilisticGraph) -> None:
        """Attach the plan to a *structurally identical* live instance.

        Plans separate structure from arithmetic, so a plan compiled in a
        previous process (and e.g. loaded back from the persistent plan
        store of :mod:`repro.persist`) is reusable against any instance
        with the same vertices and the same labelled edges — the
        probabilities are re-read from the new instance at evaluation
        time.  Raises :class:`PlanError` when the structures differ, and
        drops any serving-side state (the unpickled instance's updates are
        not this instance's updates).
        """
        if (
            instance.graph.vertices != self.instance.graph.vertices
            or instance.graph.edge_set() != self.instance.graph.edge_set()
        ):
            raise PlanError(
                "cannot rebind a plan to a structurally different instance"
            )
        self.instance = instance
        self.reset_serving()

    # -- helpers -------------------------------------------------------
    def _context(self, precision: PrecisionLike) -> NumericContext:
        if precision is None:
            return self._default_context
        return resolve_context(precision)

    def _resolve_edge(self, key) -> Edge:
        if isinstance(key, Edge):
            return self.instance.graph.get_edge(key.source, key.target)
        if isinstance(key, tuple) and len(key) == 2:
            return self.instance.graph.get_edge(key[0], key[1])
        raise PlanError(f"cannot interpret {key!r} as an edge of the instance")

    def _probability_table(
        self, probabilities: Optional[Mapping], context: NumericContext
    ) -> Mapping[Edge, Number]:
        if probabilities is None:
            return context.instance_probabilities(self.instance)
        table: Dict[Edge, Number] = dict(context.instance_probabilities(self.instance))
        for key, value in probabilities.items():
            table[self._resolve_edge(key)] = context.convert(as_probability(value))
        return table

    def _evaluate_with(
        self, table: Mapping[Edge, Number], context: NumericContext
    ) -> Number:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(method={self.method!r}, "
            f"query={self.query_class}, instance={self.instance_class})"
        )


class ConstantPlan(CompiledPlan):
    """A trivial verdict: the probability is a backend constant (0 or 1)."""

    def __init__(self, value_is_one: bool, **kwargs) -> None:
        super().__init__(**kwargs)
        self._value_is_one = value_is_one

    def _evaluate_with(self, table, context):
        return context.one if self._value_is_one else context.zero

    def evaluate(self, probabilities=None, precision=None):
        context = self._context(precision)
        if probabilities is not None:
            # The verdict ignores the table, but a bad override must fail
            # here exactly as it would on any other plan kind; validate just
            # the supplied entries instead of materialising the full table.
            for key, value in probabilities.items():
                self._resolve_edge(key)
                as_probability(value)
        return context.one if self._value_is_one else context.zero

    def update(self, edge, probability, precision=None):
        # The verdict does not depend on any edge; resolve the edge and
        # validate the probability anyway, so a bad update fails here with a
        # clear error rather than silently succeeding on constant plans only.
        self._resolve_edge(edge)
        as_probability(probability)
        return self.evaluate(precision=precision)


class ComponentPlan(CompiledPlan):
    """A tractable route: per-component evaluators combined through Lemma 3.7.

    ``always_combine`` mirrors the one-shot code paths: Proposition 3.6
    always runs the survival product over components, while the
    ``_per_component`` routes skip it on connected instances.
    """

    def __init__(
        self,
        evaluators: Sequence[ComponentEvaluator],
        always_combine: bool,
        component_edges: Sequence[Sequence[Edge]],
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self._evaluators = list(evaluators)
        self._always_combine = always_combine
        self._edge_to_component: Dict[Edge, int] = {}
        for index, edges in enumerate(component_edges):
            for edge in edges:
                self._edge_to_component[edge] = index
        # Serving state for update(): (context, table, per-component values).
        self._serving: Optional[
            Tuple[NumericContext, Dict[Edge, Number], List[Number]]
        ] = None
        # Tape-backed serving state (used instead of the evaluator path when
        # a tape has been compiled): single-slot rewrites on the flat tape.
        self._tape_serving = None

    def _evaluate_with(self, table, context):
        return self._combine(
            [evaluator.evaluate(table, context) for evaluator in self._evaluators],
            context,
        )

    def _combine(self, values: Sequence[Number], context: NumericContext) -> Number:
        if len(values) == 1 and not self._always_combine:
            return values[0]
        survival = context.one
        for value in values:
            survival *= 1 - value
        return 1 - survival

    def update(self, edge, probability, precision=None):
        context = self._context(precision)
        edge = self._resolve_edge(edge)
        value = context.convert(as_probability(probability))
        if getattr(self, "_tape", None) is not None and self._serving is None:
            # Tape slot rewrite instead of evaluator re-runs/circuit re-wires:
            # once a tape exists, updates replay only its dependent ops —
            # incremental on *every* tractable route, and bitwise-identical
            # to the evaluator path (same operations, same order).  A legacy
            # serving session opened before the tape was compiled keeps using
            # the evaluator path below: its drifted table must not be lost.
            return self._tape_update(edge, value, context)
        if self._serving is not None and self._serving[0] is not context:
            raise PlanError(
                f"the serving table was built with precision "
                f"{self._serving[0].name!r} but update() was called with "
                f"{context.name!r}; call reset_serving() to switch backends"
            )
        if self._serving is None:
            table = dict(context.instance_probabilities(self.instance))
            values = [
                evaluator.start_serving(table, context)
                for evaluator in self._evaluators
            ]
            self._serving = (context, table, values)
        _, table, values = self._serving
        table[edge] = value
        component = self._edge_to_component.get(edge)
        if component is not None:
            evaluator = self._evaluators[component]
            values[component] = evaluator.update_edge(edge, value, table, context)
        return self._combine(values, context)

    def _tape_update(self, edge: Edge, value: Number, context: NumericContext) -> Number:
        from repro.tape import TapeEvaluator

        serving = getattr(self, "_tape_serving", None)
        if serving is not None and serving.context is not context:
            raise PlanError(
                f"the serving table was built with precision "
                f"{serving.context.name!r} but update() was called with "
                f"{context.name!r}; call reset_serving() to switch backends"
            )
        if serving is None:
            serving = TapeEvaluator(self._tape)
            serving.bind(dict(context.instance_probabilities(self.instance)), context)
            self._tape_serving = serving
        return serving.update(edge, value)

    def reset_serving(self) -> None:
        """Drop the serving table; the next update() reseeds from the instance."""
        self._serving = None
        self._tape_serving = None

    def __getstate__(self):
        """Pickle the structure only; the serving table is process-local state.

        An unpickled plan starts a fresh serving session (its first
        ``update`` reseeds from the shipped instance copy), which is the
        contract the :mod:`repro.service` workers rely on.  The compiled
        flat tape ``_tape`` *does* travel — it is structure, and shipping
        it is what lets store-loaded plans and serving workers batch-
        evaluate without recompiling the lowering.
        """
        state = self.__dict__.copy()
        state["_serving"] = None
        state["_tape_serving"] = None
        return state


class FallbackPlan(CompiledPlan):
    """The #P-hard cells: exponential brute force, or Karp–Luby sampling.

    Unlike the tractable plans (which capture skeletons and never look at
    the query again), brute force re-reads the query graph at evaluation
    time — so the plan snapshots a frozen copy at compile time, keeping a
    cached plan correct even if the caller later mutates the original
    (mutable) query graph.

    Since PR 3 the intractable cells are no longer a dead end: the plan's
    structural half is the positive-DNF *match lineage* (Definition 4.6),
    compiled lazily and memoised, and :meth:`estimate` runs the Karp–Luby
    ``(ε, δ)`` importance sampler of :mod:`repro.approx` over it — so a
    compiled plan covers intractable queries at serving time too, paying the
    homomorphism enumeration once and only sampling per evaluation.
    """

    def __init__(self, allow_brute_force: bool = True, **kwargs) -> None:
        kwargs["query"] = kwargs["query"].copy().freeze()
        super().__init__(**kwargs)
        #: Carried over from the compiling solver: approx-mode solvers with
        #: brute force disabled still compile this plan (they sample it),
        #: but its exact evaluate() must keep refusing to enumerate.
        self._allow_brute_force = allow_brute_force
        self._lineage: Optional[PositiveDNF] = None

    def lineage(self) -> PositiveDNF:
        """The match lineage of the pair (memoised; the sampling structure)."""
        if self._lineage is None:
            self._lineage = match_lineage(self.query, self.instance)
        return self._lineage

    def estimate(
        self,
        probabilities: Optional[Mapping] = None,
        params: Optional[ApproxParams] = None,
        num_samples: Optional[int] = None,
    ) -> ApproxEstimate:
        """A Karp–Luby ``(ε, δ)`` estimate of the probability.

        ``probabilities`` overrides the instance's live table exactly as in
        :meth:`CompiledPlan.evaluate` (sampling always runs on the float
        backend); ``params`` carries the accuracy contract and the RNG seed;
        ``num_samples`` forces a fixed-budget run without the guarantee.
        """
        params = params if params is not None else ApproxParams()
        table = self._probability_table(probabilities, FAST)
        return karp_luby_probability(
            self.lineage(), table, params, num_samples=num_samples
        )

    def evaluate(self, probabilities=None, precision=None, approx=None, _warn=True):
        if approx is not None:
            return self.estimate(probabilities, params=approx).value
        if not self._allow_brute_force:
            raise ClassConstraintError(
                "this plan was compiled by a solver with brute force disabled; "
                "use plan.estimate(...) (or evaluate(approx=ApproxParams(...))) "
                "to sample it instead of enumerating possible worlds"
            )
        if probabilities is not None:
            raise PlanError(
                "brute-force fallback plans cannot evaluate override tables "
                "exactly; pass approx=ApproxParams(...) to sample them, or "
                "update the instance probabilities instead"
            )
        context = self._context(precision)
        if _warn:
            warnings.warn(
                BRUTE_FORCE_FALLBACK_MESSAGE, IntractableFallbackWarning, stacklevel=2
            )
        return brute_force_phom(self.query, self.instance, context)

    def _evaluate_with(self, table, context):  # pragma: no cover - not reached
        raise PlanError("brute-force fallback plans have no arithmetic half")


# ----------------------------------------------------------------------
# the plan cache
# ----------------------------------------------------------------------
class PlanCache:
    """A small LRU of compiled plans.

    Keys combine the canonical query form with the instance's object
    identity.  Entries hold a strong reference to their instance (through
    the plan), so an ``id()`` can never be recycled while its entry is
    alive; eviction is least-recently-used.

    ``on_evict``, when given, is called as ``on_evict(key, plan)`` for every
    entry dropped by the LRU policy (not for :meth:`clear`); the serving
    workers of :mod:`repro.service` use it to account evicted structure in
    their per-worker statistics.  The hook runs synchronously inside
    :meth:`store` and must not mutate the cache.
    """

    def __init__(self, maxsize: int = 128, on_evict=None) -> None:
        if maxsize <= 0:
            raise ValueError("PlanCache maxsize must be positive")
        self.maxsize = maxsize
        self.on_evict = on_evict
        self._entries: "OrderedDict[Tuple[Hashable, int], CompiledPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.evictions = 0
        self.tape_compiles = 0

    def lookup(
        self, query_key: Hashable, instance: ProbabilisticGraph
    ) -> Optional[CompiledPlan]:
        """The cached plan for ``(query_key, instance)``, or ``None`` (counted)."""
        key = (query_key, id(instance))
        plan = self._entries.get(key)
        if plan is not None and plan.instance is instance:
            self._entries.move_to_end(key)
            self.hits += 1
            return plan
        self.misses += 1
        return None

    def store(
        self, query_key: Hashable, instance: ProbabilisticGraph, plan: CompiledPlan
    ) -> None:
        """Insert a freshly compiled plan, evicting LRU entries over capacity."""
        key = (query_key, id(instance))
        self._entries[key] = plan
        self._entries.move_to_end(key)
        self.compiles += 1
        while len(self._entries) > self.maxsize:
            evicted_key, evicted_plan = self._entries.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_plan)

    def note_tape(
        self, query_key: Hashable, instance: ProbabilisticGraph, plan: CompiledPlan
    ) -> None:
        """Account one tape lowering of an already-cached plan.

        Tapes are a second compilation tier: lowering a plan's arithmetic
        to a flat tape is *not* a plan compile (the structural phase ran
        exactly once, at :meth:`store` time), so it is counted in
        ``tape_compiles`` and must never inflate ``compiles`` — the
        invariant the stats-hygiene regression tests pin down.  The
        persistent subclass also refreshes the plan's store entry here so
        the lowered tape survives restarts alongside its plan.
        """
        self.tape_compiles += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    @property
    def stats(self) -> Dict[str, int]:
        """Cache counters: hits, misses, compiles, tape_compiles, evictions, size, maxsize."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "tape_compiles": self.tape_compiles,
            "evictions": self.evictions,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanCache(size={len(self._entries)}/{self.maxsize}, hits={self.hits}, misses={self.misses})"
