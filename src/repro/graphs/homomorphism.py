"""Exact graph homomorphism testing.

A homomorphism ``h`` from a query graph ``G`` to an instance graph ``H`` maps
every vertex of ``G`` to a vertex of ``H`` such that every labeled edge of
``G`` is sent to an edge of ``H`` with the same label (Section 2).  The
general problem is NP-complete, so this module implements a classic
backtracking search with arc-consistency pre-processing and forward
checking.  It is used:

* as the reference oracle inside the brute-force possible-world solver;
* to verify the specialised polynomial algorithms in the test suite;
* by :func:`homomorphic_equivalent`, the equivalence notion the paper uses
  to collapse queries (e.g. DWT queries to one-way paths, Prop 5.5).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graphs.digraph import DiGraph, Vertex


def _initial_domains(query: DiGraph, instance: DiGraph) -> Optional[Dict[Vertex, Set[Vertex]]]:
    """Degree/label-based initial domains, or ``None`` if some domain is empty."""
    instance_vertices = list(instance.vertices)
    domains: Dict[Vertex, Set[Vertex]] = {}
    for u in query.vertices:
        out_labels = query.out_label_set(u)
        in_labels = query.in_label_set(u)
        candidates = set()
        for x in instance_vertices:
            if not out_labels <= instance.out_label_set(x):
                continue
            if not in_labels <= instance.in_label_set(x):
                continue
            candidates.add(x)
        if not candidates:
            return None
        domains[u] = candidates
    return domains


def _revise(
    query: DiGraph,
    instance: DiGraph,
    domains: Dict[Vertex, Set[Vertex]],
    u: Vertex,
    v: Vertex,
    label: str,
) -> bool:
    """AC-3 revision for the constraint ``(h(u), h(v)) is a label-edge of H``.

    Removes unsupported values from the domain of ``u``; returns ``True`` if
    the domain changed.
    """
    removed = False
    for x in list(domains[u]):
        if not any(instance.has_edge(x, y, label) for y in domains[v]):
            domains[u].discard(x)
            removed = True
    return removed


def arc_consistent_domains(
    query: DiGraph, instance: DiGraph
) -> Optional[Dict[Vertex, Set[Vertex]]]:
    """Arc-consistent domains for the CSP "map ``query`` into ``instance``".

    Returns ``None`` as soon as some domain becomes empty (no homomorphism
    can exist).  This is the consistency check underlying the X-property
    algorithm (Theorem 4.13) and a strong pruning step for backtracking.
    """
    domains = _initial_domains(query, instance)
    if domains is None:
        return None
    # Work queue of directed constraint checks: (variable to prune, other variable, label, forward?)
    queue: List[Tuple[Vertex, Vertex, str, bool]] = []
    for e in query.edges():
        queue.append((e.source, e.target, e.label, True))
        queue.append((e.target, e.source, e.label, False))
    pending = list(queue)
    while pending:
        u, v, label, forward = pending.pop()
        if forward:
            changed = _revise(query, instance, domains, u, v, label)
        else:
            # prune values of u (the edge target) lacking an incoming supporter
            removed = False
            for y in list(domains[u]):
                if not any(instance.has_edge(x, y, label) for x in domains[v]):
                    domains[u].discard(y)
                    removed = True
            changed = removed
        if changed:
            if not domains[u]:
                return None
            for item in queue:
                if item[1] == u and item not in pending:
                    pending.append(item)
    return domains


def _search_order(query: DiGraph) -> List[Vertex]:
    """A variable order that keeps the assigned prefix connected when possible."""
    order: List[Vertex] = []
    placed: Set[Vertex] = set()
    for component in query.weakly_connected_components():
        start = min(component, key=repr)
        stack = [start]
        seen = {start}
        while stack:
            v = stack.pop()
            order.append(v)
            placed.add(v)
            for w in sorted(query.undirected_neighbours(v), key=repr):
                if w in seen or w not in component:
                    continue
                seen.add(w)
                stack.append(w)
    return order


def enumerate_homomorphisms(
    query: DiGraph, instance: DiGraph, limit: Optional[int] = None
) -> Iterator[Dict[Vertex, Vertex]]:
    """Yield homomorphisms from ``query`` to ``instance`` (up to ``limit``).

    The enumeration is exhaustive (every homomorphism is produced exactly
    once) and uses backtracking with forward checking over arc-consistent
    domains.  Exponential in the worst case, as it must be.
    """
    if query.num_vertices() == 0:
        return
    domains = arc_consistent_domains(query, instance)
    if domains is None:
        return
    order = _search_order(query)
    assignment: Dict[Vertex, Vertex] = {}
    produced = 0

    def consistent(u: Vertex, x: Vertex) -> bool:
        for e in query.out_edges(u):
            if e.target in assignment and not instance.has_edge(x, assignment[e.target], e.label):
                return False
        for e in query.in_edges(u):
            if e.source in assignment and not instance.has_edge(assignment[e.source], x, e.label):
                return False
        return True

    def backtrack(position: int) -> Iterator[Dict[Vertex, Vertex]]:
        nonlocal produced
        if position == len(order):
            produced += 1
            yield dict(assignment)
            return
        u = order[position]
        for x in sorted(domains[u], key=repr):
            if limit is not None and produced >= limit:
                return
            if consistent(u, x):
                assignment[u] = x
                yield from backtrack(position + 1)
                del assignment[u]

    yield from backtrack(0)


def find_homomorphism(query: DiGraph, instance: DiGraph) -> Optional[Dict[Vertex, Vertex]]:
    """A homomorphism from ``query`` to ``instance``, or ``None`` if none exists."""
    for h in enumerate_homomorphisms(query, instance, limit=1):
        return h
    return None


def has_homomorphism(query: DiGraph, instance: DiGraph) -> bool:
    """Whether ``query ⇝ instance`` (there exists a homomorphism)."""
    return find_homomorphism(query, instance) is not None


def homomorphic_equivalent(first: DiGraph, second: DiGraph) -> bool:
    """Whether the two query graphs are equivalent.

    Following Section 2, two queries ``G`` and ``G'`` are equivalent when,
    for every instance ``H``, ``G ⇝ H`` iff ``G' ⇝ H``; this holds exactly
    when ``G ⇝ G'`` and ``G' ⇝ G``.
    """
    return has_homomorphism(first, second) and has_homomorphism(second, first)


def match_image(homomorphism: Dict[Vertex, Vertex], query: DiGraph, instance: DiGraph) -> DiGraph:
    """The match (image subgraph of ``instance``) defined by a homomorphism.

    The match keeps every vertex of the instance (paper subgraph semantics)
    and exactly the edges ``(h(u), h(v))`` for edges ``(u, v)`` of the query.
    """
    edges = [
        instance.get_edge(homomorphism[e.source], homomorphism[e.target]) for e in query.edges()
    ]
    return instance.subgraph_with_edges(edges)
