"""Graph substrate: directed edge-labeled graphs and the paper's graph classes.

This subpackage implements everything the paper assumes about graphs:

* :mod:`repro.graphs.digraph` — directed graphs with a single label per edge
  (no multi-edges), the subgraph semantics of the paper (same vertex set,
  subset of the edges), and weak-connectivity helpers.
* :mod:`repro.graphs.builders` — convenient constructors for one-way paths,
  two-way paths, downward trees, polytrees and disjoint unions.
* :mod:`repro.graphs.classes` — recognisers for the classes 1WP, 2WP, DWT,
  PT, Connected, All and their disjoint-union closures, together with the
  inclusion lattice of Figure 2.
* :mod:`repro.graphs.generators` — random generators of members of each
  class, used by tests and benchmarks.
* :mod:`repro.graphs.homomorphism` — exact homomorphism testing and match
  enumeration.
* :mod:`repro.graphs.grading` — graded DAGs and level mappings
  (Definition 3.5), the key tool of Proposition 3.6.
"""

from repro.graphs.digraph import DiGraph, Edge, UNLABELED
from repro.graphs.builders import (
    one_way_path,
    two_way_path,
    downward_tree,
    polytree_from_parents,
    disjoint_union,
)
from repro.graphs.classes import (
    GraphClass,
    is_one_way_path,
    is_two_way_path,
    is_downward_tree,
    is_polytree,
    is_connected_graph,
    classify_graph,
    graph_class_of,
    class_includes,
)
from repro.graphs.homomorphism import (
    has_homomorphism,
    find_homomorphism,
    enumerate_homomorphisms,
    homomorphic_equivalent,
)
from repro.graphs.grading import (
    LevelMapping,
    is_graded,
    level_mapping,
    difference_of_levels,
)

__all__ = [
    "DiGraph",
    "Edge",
    "UNLABELED",
    "one_way_path",
    "two_way_path",
    "downward_tree",
    "polytree_from_parents",
    "disjoint_union",
    "GraphClass",
    "is_one_way_path",
    "is_two_way_path",
    "is_downward_tree",
    "is_polytree",
    "is_connected_graph",
    "classify_graph",
    "graph_class_of",
    "class_includes",
    "has_homomorphism",
    "find_homomorphism",
    "enumerate_homomorphisms",
    "homomorphic_equivalent",
    "LevelMapping",
    "is_graded",
    "level_mapping",
    "difference_of_levels",
]
