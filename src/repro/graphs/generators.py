"""Random generators for every graph class of the paper.

Tests, examples and the benchmark workload generators all need random members
of the classes 1WP, 2WP, DWT, PT, Connected, All and their disjoint unions.
Every generator takes an explicit :class:`random.Random` instance (or a seed)
so that experiments are reproducible, and returns graphs whose class
membership is guaranteed by construction (and re-checked in the test suite).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from repro.exceptions import GraphError
from repro.graphs.builders import (
    BACKWARD,
    FORWARD,
    disjoint_union,
    one_way_path,
    two_way_path,
)
from repro.graphs.digraph import DiGraph, UNLABELED

#: Default label alphabet for the labeled setting (``|σ| > 1``).
DEFAULT_ALPHABET: Sequence[str] = ("R", "S")

RandomLike = Union[random.Random, int, None]


def _rng(source: RandomLike) -> random.Random:
    """Normalise a seed / Random / None argument into a Random instance."""
    if isinstance(source, random.Random):
        return source
    return random.Random(source)


def random_label(rng: RandomLike = None, alphabet: Sequence[str] = DEFAULT_ALPHABET) -> str:
    """A uniformly random label from the alphabet."""
    return _rng(rng).choice(list(alphabet))


def random_one_way_path(
    length: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RandomLike = None,
    prefix: str = "v",
) -> DiGraph:
    """A random one-way path with ``length`` edges and labels from ``alphabet``."""
    r = _rng(rng)
    labels = [r.choice(list(alphabet)) for _ in range(length)]
    return one_way_path(labels, prefix=prefix)


def random_two_way_path(
    length: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RandomLike = None,
    prefix: str = "v",
) -> DiGraph:
    """A random two-way path with ``length`` edges, random labels and orientations."""
    r = _rng(rng)
    steps = [
        (r.choice(list(alphabet)), r.choice((FORWARD, BACKWARD))) for _ in range(length)
    ]
    return two_way_path(steps, prefix=prefix)


def random_downward_tree(
    num_vertices: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RandomLike = None,
    prefix: str = "t",
) -> DiGraph:
    """A random downward tree on ``num_vertices`` vertices.

    Vertex ``i`` (for ``i >= 1``) attaches below a uniformly random earlier
    vertex, which yields trees of varied shapes (from paths to stars).
    """
    if num_vertices < 1:
        raise GraphError("a downward tree needs at least one vertex")
    r = _rng(rng)
    graph = DiGraph()
    names = [f"{prefix}{i}" for i in range(num_vertices)]
    graph.add_vertex(names[0])
    for i in range(1, num_vertices):
        parent = names[r.randrange(i)]
        graph.add_edge(parent, names[i], r.choice(list(alphabet)))
    return graph


def random_polytree(
    num_vertices: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RandomLike = None,
    prefix: str = "p",
) -> DiGraph:
    """A random polytree on ``num_vertices`` vertices.

    The underlying tree is built like :func:`random_downward_tree`, but each
    edge is oriented towards or away from the parent uniformly at random.
    """
    if num_vertices < 1:
        raise GraphError("a polytree needs at least one vertex")
    r = _rng(rng)
    graph = DiGraph()
    names = [f"{prefix}{i}" for i in range(num_vertices)]
    graph.add_vertex(names[0])
    for i in range(1, num_vertices):
        parent = names[r.randrange(i)]
        label = r.choice(list(alphabet))
        if r.random() < 0.5:
            graph.add_edge(parent, names[i], label)
        else:
            graph.add_edge(names[i], parent, label)
    return graph


def random_disjoint_union(
    component_sizes: Sequence[int],
    component_class: str = "1WP",
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RandomLike = None,
) -> DiGraph:
    """A random disjoint union whose components belong to ``component_class``.

    ``component_class`` is one of ``"1WP"``, ``"2WP"``, ``"DWT"``, ``"PT"``;
    each entry of ``component_sizes`` is the number of edges (for paths) or
    vertices (for trees) of the corresponding component.
    """
    r = _rng(rng)
    builders = {
        "1WP": lambda n: random_one_way_path(n, alphabet, r),
        "2WP": lambda n: random_two_way_path(n, alphabet, r),
        "DWT": lambda n: random_downward_tree(max(n, 1), alphabet, r),
        "PT": lambda n: random_polytree(max(n, 1), alphabet, r),
    }
    if component_class not in builders:
        raise GraphError(f"unknown component class {component_class!r}")
    components = [builders[component_class](size) for size in component_sizes]
    return disjoint_union(components)


def random_connected_graph(
    num_vertices: int,
    extra_edge_probability: float = 0.2,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RandomLike = None,
    prefix: str = "g",
) -> DiGraph:
    """A random weakly connected graph (class Connected).

    A random spanning tree guarantees connectivity; every remaining ordered
    pair then receives an extra edge with probability
    ``extra_edge_probability``.
    """
    if num_vertices < 1:
        raise GraphError("a connected graph needs at least one vertex")
    r = _rng(rng)
    graph = random_polytree(num_vertices, alphabet, r, prefix=prefix)
    names = sorted(graph.vertices, key=repr)
    for u in names:
        for v in names:
            if u == v or graph.has_edge(u, v):
                continue
            if r.random() < extra_edge_probability:
                graph.add_edge(u, v, r.choice(list(alphabet)))
    return graph


def random_graded_dag(
    num_levels: int,
    vertices_per_level: int,
    edge_probability: float = 0.5,
    alphabet: Sequence[str] = (UNLABELED,),
    rng: RandomLike = None,
    prefix: str = "d",
) -> DiGraph:
    """A random graded DAG whose vertices sit on ``num_levels`` levels.

    Edges only connect a vertex of level ``i+1`` to a vertex of level ``i``,
    so every directed path between two vertices has the same length and the
    DAG is graded by construction (Definition 3.5).  Used by the
    Proposition 3.6 experiments as "arbitrary query" workloads.
    """
    if num_levels < 1 or vertices_per_level < 1:
        raise GraphError("need at least one level and one vertex per level")
    r = _rng(rng)
    graph = DiGraph()
    names = [
        [f"{prefix}{level}_{i}" for i in range(vertices_per_level)]
        for level in range(num_levels)
    ]
    for row in names:
        for v in row:
            graph.add_vertex(v)
    for level in range(num_levels - 1, 0, -1):
        for upper in names[level]:
            attached = False
            for lower in names[level - 1]:
                if r.random() < edge_probability:
                    graph.add_edge(upper, lower, r.choice(list(alphabet)))
                    attached = True
            if not attached:
                graph.add_edge(upper, r.choice(names[level - 1]), r.choice(list(alphabet)))
    return graph


def random_graph(
    num_vertices: int,
    edge_probability: float = 0.25,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: RandomLike = None,
    prefix: str = "a",
) -> DiGraph:
    """A random graph from the class All (no structural constraint)."""
    if num_vertices < 1:
        raise GraphError("a graph needs at least one vertex")
    r = _rng(rng)
    graph = DiGraph()
    names = [f"{prefix}{i}" for i in range(num_vertices)]
    for v in names:
        graph.add_vertex(v)
    for u in names:
        for v in names:
            if u != v and r.random() < edge_probability:
                graph.add_edge(u, v, r.choice(list(alphabet)))
    return graph


def random_unlabeled_query_dag(
    num_vertices: int,
    edge_probability: float = 0.3,
    rng: RandomLike = None,
    prefix: str = "q",
) -> DiGraph:
    """A random unlabeled DAG query (edges oriented from lower to higher index).

    These may or may not be graded, which is exactly what the
    Proposition 3.6 solver needs to handle (non-graded queries have
    probability zero on ⊔DWT instances).
    """
    if num_vertices < 1:
        raise GraphError("a query needs at least one vertex")
    r = _rng(rng)
    graph = DiGraph()
    names = [f"{prefix}{i}" for i in range(num_vertices)]
    for v in names:
        graph.add_vertex(v)
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            if r.random() < edge_probability:
                graph.add_edge(names[i], names[j], UNLABELED)
    return graph
