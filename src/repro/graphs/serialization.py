"""(De)serialization of graphs and probabilistic graphs.

A small, dependency-free interchange format so that queries and instances can
be stored in files, passed to the command-line interface
(:mod:`repro.cli`), or exchanged with other tools:

* a graph is a dictionary ``{"vertices": [...], "edges": [[source, target,
  label], ...]}``;
* a probabilistic graph additionally carries ``"probabilities"``, a list of
  ``[source, target, probability]`` triples where the probability is a
  string (so that exact rationals such as ``"1/3"`` survive the round trip).

Vertices are serialised as strings; graphs whose vertices are not strings are
converted with ``str`` and a mapping back to the original objects is *not*
kept (the format is meant for data interchange, not for pickling arbitrary
Python objects).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, List, Mapping, Union

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph, UNLABELED
from repro.probability.prob_graph import ProbabilisticGraph

JsonDict = Dict[str, Any]


# ----------------------------------------------------------------------
# plain graphs
# ----------------------------------------------------------------------
def graph_to_dict(graph: DiGraph) -> JsonDict:
    """Serialise a graph to a plain dictionary."""
    return {
        "vertices": sorted(str(v) for v in graph.vertices),
        "edges": [
            [str(edge.source), str(edge.target), edge.label] for edge in graph.edges()
        ],
    }


def graph_from_dict(data: Mapping[str, Any]) -> DiGraph:
    """Rebuild a graph from the dictionary produced by :func:`graph_to_dict`."""
    if "edges" not in data:
        raise GraphError("graph dictionary must contain an 'edges' list")
    graph = DiGraph()
    for vertex in data.get("vertices", []):
        graph.add_vertex(str(vertex))
    for entry in data["edges"]:
        if len(entry) == 2:
            source, target = entry
            label = UNLABELED
        elif len(entry) == 3:
            source, target, label = entry
        else:
            raise GraphError(f"edge entry {entry!r} must have 2 or 3 fields")
        graph.add_edge(str(source), str(target), str(label))
    return graph


def graph_to_json(graph: DiGraph, indent: int = 2) -> str:
    """Serialise a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def graph_from_json(text: str) -> DiGraph:
    """Rebuild a graph from a JSON string."""
    return graph_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# probabilistic graphs
# ----------------------------------------------------------------------
def probabilistic_graph_to_dict(instance: ProbabilisticGraph) -> JsonDict:
    """Serialise a probabilistic graph (probabilities as exact fraction strings)."""
    payload = graph_to_dict(instance.graph)
    payload["probabilities"] = [
        [str(edge.source), str(edge.target), str(probability)]
        for edge, probability in sorted(
            instance.probabilities().items(), key=lambda item: (repr(item[0].source), repr(item[0].target))
        )
    ]
    return payload


def probabilistic_graph_from_dict(data: Mapping[str, Any]) -> ProbabilisticGraph:
    """Rebuild a probabilistic graph from :func:`probabilistic_graph_to_dict` output.

    Edges missing from the ``"probabilities"`` list default to probability 1.
    """
    graph = graph_from_dict(data)
    probabilities: Dict = {}
    for entry in data.get("probabilities", []):
        if len(entry) != 3:
            raise GraphError(f"probability entry {entry!r} must be [source, target, probability]")
        source, target, probability = entry
        probabilities[(str(source), str(target))] = Fraction(str(probability))
    return ProbabilisticGraph(graph, probabilities)


def probabilistic_graph_to_json(instance: ProbabilisticGraph, indent: int = 2) -> str:
    """Serialise a probabilistic graph to a JSON string."""
    return json.dumps(probabilistic_graph_to_dict(instance), indent=indent, sort_keys=True)


def probabilistic_graph_from_json(text: str) -> ProbabilisticGraph:
    """Rebuild a probabilistic graph from a JSON string."""
    return probabilistic_graph_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def save_graph(graph: Union[DiGraph, ProbabilisticGraph], path: str) -> None:
    """Write a (probabilistic) graph to a JSON file."""
    if isinstance(graph, ProbabilisticGraph):
        text = probabilistic_graph_to_json(graph)
    else:
        text = graph_to_json(graph)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def load_query(path: str) -> DiGraph:
    """Read a query graph from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_json(handle.read())


def load_instance(path: str) -> ProbabilisticGraph:
    """Read a probabilistic instance from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return probabilistic_graph_from_json(handle.read())
