"""Graded DAGs and level mappings (Definition 3.5).

A *level mapping* of a DAG ``G`` assigns an integer level to every vertex
such that every edge ``u -> v`` satisfies ``µ(v) = µ(u) - 1``; a DAG is
*graded* when such a mapping exists.  Proposition 3.6 uses level mappings to
show that, on (unions of) unlabeled downward-tree instances, any query graph
either has probability zero or is equivalent to a one-way path whose length
is the query's *difference of levels*.

The computation follows the paper: pick a vertex per weakly connected
component, assign it level 0, propagate levels by a breadth-first traversal
(+1 against an incoming edge, −1 along an outgoing edge), and fail as soon
as two different levels would be assigned to the same vertex — which happens
exactly when the graph has a directed cycle or a "jumping edge" (two directed
paths of different lengths between the same pair of vertices).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph, Vertex


@dataclass(frozen=True)
class LevelMapping:
    """A level mapping of a graded DAG.

    Attributes
    ----------
    levels:
        The mapping from vertices to integer levels.
    difference:
        The *difference of levels*: the gap between the largest and smallest
        level, minimised over the component shifts (each weakly connected
        component is shifted so that its smallest level is zero, as in the
        proof of Proposition 3.6).
    """

    levels: Dict[Vertex, int]
    difference: int

    def level(self, v: Vertex) -> int:
        """The level of a vertex."""
        return self.levels[v]


def level_mapping(graph: DiGraph) -> Optional[LevelMapping]:
    """Compute the minimal level mapping of ``graph``, or ``None`` if not graded.

    The returned mapping shifts every weakly connected component so that its
    minimum level is zero; the global ``difference`` is therefore the
    maximum level over all vertices, i.e. the length of the one-way path the
    query collapses to on downward-tree instances (Proposition 3.6).
    """
    if graph.num_vertices() == 0:
        raise GraphError("the empty graph has no level mapping")
    levels: Dict[Vertex, int] = {}
    overall_difference = 0
    for component in graph.weakly_connected_components():
        start = min(component, key=repr)
        tentative: Dict[Vertex, int] = {start: 0}
        queue: deque = deque([start])
        while queue:
            v = queue.popleft()
            for w in graph.successors(v):
                expected = tentative[v] - 1
                if w in tentative:
                    if tentative[w] != expected:
                        return None
                else:
                    tentative[w] = expected
                    queue.append(w)
            for u in graph.predecessors(v):
                expected = tentative[v] + 1
                if u in tentative:
                    if tentative[u] != expected:
                        return None
                else:
                    tentative[u] = expected
                    queue.append(u)
        # Re-verify every edge inside the component (BFS may have assigned a
        # vertex before exploring all of its edges).
        for v in component:
            for w in graph.successors(v):
                if tentative[w] != tentative[v] - 1:
                    return None
        lowest = min(tentative.values())
        for v, lvl in tentative.items():
            levels[v] = lvl - lowest
        overall_difference = max(overall_difference, max(tentative.values()) - lowest)
    return LevelMapping(levels=levels, difference=overall_difference)


def is_graded(graph: DiGraph) -> bool:
    """Whether the graph is a graded DAG (admits a level mapping)."""
    return level_mapping(graph) is not None


def difference_of_levels(graph: DiGraph) -> int:
    """The difference of levels of a graded query graph.

    Raises :class:`~repro.exceptions.GraphError` when the graph is not
    graded (in that case Proposition 3.6 shows the query probability on
    ⊔DWT instances is zero, so callers should test :func:`is_graded` first).
    """
    mapping = level_mapping(graph)
    if mapping is None:
        raise GraphError("graph is not graded; it has no level mapping")
    return mapping.difference
