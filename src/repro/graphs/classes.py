"""Recognisers for the paper's graph classes and the Figure 2 inclusion lattice.

Section 2 of the paper defines the classes

* **1WP** — one-way paths ``a1 -R1-> a2 -R2-> ... -> am`` (distinct vertices);
* **2WP** — two-way paths (edges may point either way along the path);
* **DWT** — downward trees (rooted trees, all edges parent→child);
* **PT** — polytrees (underlying undirected graph is a tree);
* **Connected** — weakly connected graphs;
* **All** — all graphs;

and, for each class ``C`` among the first four, the class ``⊔C`` of disjoint
unions of members of ``C``.  This module provides a Boolean recogniser for
each class, a :class:`GraphClass` enumeration, the inclusion lattice of
Figure 2 (:func:`class_includes`), and helpers that recover the linear order
of a path-shaped graph, which the path-based solvers rely on.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import ClassConstraintError, GraphError
from repro.graphs.digraph import DiGraph, Vertex


class GraphClass(enum.Enum):
    """The graph classes studied in the paper (Figure 2)."""

    ONE_WAY_PATH = "1WP"
    TWO_WAY_PATH = "2WP"
    DOWNWARD_TREE = "DWT"
    POLYTREE = "PT"
    CONNECTED = "Connected"
    ALL = "All"
    UNION_ONE_WAY_PATH = "⊔1WP"
    UNION_TWO_WAY_PATH = "⊔2WP"
    UNION_DOWNWARD_TREE = "⊔DWT"
    UNION_POLYTREE = "⊔PT"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Direct inclusions of Figure 2, extended with the disjoint-union classes.
_DIRECT_INCLUSIONS: Dict[GraphClass, Set[GraphClass]] = {
    GraphClass.ONE_WAY_PATH: {
        GraphClass.TWO_WAY_PATH,
        GraphClass.DOWNWARD_TREE,
        GraphClass.UNION_ONE_WAY_PATH,
    },
    GraphClass.TWO_WAY_PATH: {GraphClass.POLYTREE, GraphClass.UNION_TWO_WAY_PATH},
    GraphClass.DOWNWARD_TREE: {GraphClass.POLYTREE, GraphClass.UNION_DOWNWARD_TREE},
    GraphClass.POLYTREE: {GraphClass.CONNECTED, GraphClass.UNION_POLYTREE},
    GraphClass.CONNECTED: {GraphClass.ALL},
    GraphClass.UNION_ONE_WAY_PATH: {
        GraphClass.UNION_TWO_WAY_PATH,
        GraphClass.UNION_DOWNWARD_TREE,
    },
    GraphClass.UNION_TWO_WAY_PATH: {GraphClass.UNION_POLYTREE},
    GraphClass.UNION_DOWNWARD_TREE: {GraphClass.UNION_POLYTREE},
    GraphClass.UNION_POLYTREE: {GraphClass.ALL},
    GraphClass.ALL: set(),
}


def _reachable(origin: GraphClass) -> FrozenSet[GraphClass]:
    seen: Set[GraphClass] = {origin}
    stack = [origin]
    while stack:
        current = stack.pop()
        for nxt in _DIRECT_INCLUSIONS[current]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(seen)


_INCLUSION_CLOSURE: Dict[GraphClass, FrozenSet[GraphClass]] = {
    cls: _reachable(cls) for cls in GraphClass
}


def class_includes(smaller: GraphClass, larger: GraphClass) -> bool:
    """Whether every member of ``smaller`` is a member of ``larger`` (Figure 2).

    The relation is reflexive and transitive: ``class_includes(c, c)`` is
    always ``True`` and inclusions compose along the lattice.
    """
    return larger in _INCLUSION_CLOSURE[smaller]


# ----------------------------------------------------------------------
# path recognisers and orders
# ----------------------------------------------------------------------
def _undirected_path_order(graph: DiGraph) -> Optional[List[Vertex]]:
    """The vertex order of the underlying undirected path, or ``None``.

    Returns a list of vertices ``a1 .. am`` such that consecutive vertices
    are joined by exactly one edge (in either direction) and no other edges
    exist, or ``None`` if the underlying undirected graph is not a simple
    path.  A single vertex yields a one-element order.  The order is
    memoised on the graph, so every path recogniser after the first is a
    dictionary lookup.
    """
    return graph.cached("undirected_path_order", lambda: _compute_path_order(graph))


def _compute_path_order(graph: DiGraph) -> Optional[List[Vertex]]:
    n = graph.num_vertices()
    if n == 0:
        return None
    if graph.num_edges() != n - 1:
        return None
    if not graph.is_weakly_connected():
        return None
    if graph.underlying_has_undirected_cycle():
        return None
    degrees = {v: graph.degree(v) for v in graph.vertices}
    if any(d > 2 for d in degrees.values()):
        return None
    if n == 1:
        return [next(iter(graph.vertices))]
    endpoints = sorted((v for v, d in degrees.items() if d == 1), key=repr)
    if len(endpoints) != 2:
        return None
    order = [endpoints[0]]
    previous: Optional[Vertex] = None
    current = endpoints[0]
    while len(order) < n:
        neighbours = [w for w in graph.undirected_neighbours(current) if w != previous]
        if len(neighbours) != 1:
            return None
        previous, current = current, neighbours[0]
        order.append(current)
    return order


def is_two_way_path(graph: DiGraph) -> bool:
    """Whether the graph is a two-way path (class 2WP)."""
    return _undirected_path_order(graph) is not None


def two_way_path_order(graph: DiGraph) -> List[Vertex]:
    """The vertex sequence of a 2WP along the path (one of its two traversals)."""
    order = _undirected_path_order(graph)
    if order is None:
        raise ClassConstraintError("graph is not a two-way path")
    return list(order)


def is_one_way_path(graph: DiGraph) -> bool:
    """Whether the graph is a one-way path (class 1WP)."""
    order = _undirected_path_order(graph)
    if order is None:
        return False
    if len(order) == 1:
        return True
    forward = all(graph.has_edge(order[i], order[i + 1]) for i in range(len(order) - 1))
    backward = all(graph.has_edge(order[i + 1], order[i]) for i in range(len(order) - 1))
    return forward or backward


def one_way_path_order(graph: DiGraph) -> List[Vertex]:
    """The vertex sequence of a 1WP from its source to its sink."""
    order = _undirected_path_order(graph)
    if order is None:
        raise ClassConstraintError("graph is not a one-way path")
    if len(order) == 1:
        return list(order)
    if all(graph.has_edge(order[i], order[i + 1]) for i in range(len(order) - 1)):
        return list(order)
    if all(graph.has_edge(order[i + 1], order[i]) for i in range(len(order) - 1)):
        return list(reversed(order))
    raise ClassConstraintError("graph is not a one-way path")


# ----------------------------------------------------------------------
# tree recognisers
# ----------------------------------------------------------------------
def is_polytree(graph: DiGraph) -> bool:
    """Whether the graph is a polytree (underlying undirected graph is a tree)."""
    if graph.num_vertices() == 0:
        return False
    return (
        graph.is_weakly_connected()
        and not graph.underlying_has_undirected_cycle()
        and graph.num_edges() == graph.num_vertices() - 1
    )


def is_downward_tree(graph: DiGraph) -> bool:
    """Whether the graph is a downward tree (rooted tree, all edges parent→child)."""
    if not is_polytree(graph):
        return False
    roots = [v for v in graph.vertices if graph.in_degree(v) == 0]
    if len(roots) != 1:
        return False
    return all(graph.in_degree(v) <= 1 for v in graph.vertices)


def downward_tree_root(graph: DiGraph) -> Vertex:
    """The root of a downward tree."""
    if not is_downward_tree(graph):
        raise ClassConstraintError("graph is not a downward tree")
    roots = [v for v in graph.vertices if graph.in_degree(v) == 0]
    return roots[0]


def is_connected_graph(graph: DiGraph) -> bool:
    """Whether the graph belongs to the class Connected (weak connectivity)."""
    return graph.is_weakly_connected()


# ----------------------------------------------------------------------
# membership and classification
# ----------------------------------------------------------------------
def _components(graph: DiGraph) -> List[DiGraph]:
    return graph.connected_component_graphs()


def graph_in_class(graph: DiGraph, cls: GraphClass) -> bool:
    """Whether ``graph`` belongs to the class ``cls`` (memoised per graph)."""
    if graph.num_vertices() == 0:
        return False
    if cls is GraphClass.ALL:
        return True
    return graph.cached(("in_class", cls), lambda: _compute_in_class(graph, cls))


def _compute_in_class(graph: DiGraph, cls: GraphClass) -> bool:
    if cls is GraphClass.CONNECTED:
        return is_connected_graph(graph)
    if cls is GraphClass.ONE_WAY_PATH:
        return is_one_way_path(graph)
    if cls is GraphClass.TWO_WAY_PATH:
        return is_two_way_path(graph)
    if cls is GraphClass.DOWNWARD_TREE:
        return is_downward_tree(graph)
    if cls is GraphClass.POLYTREE:
        return is_polytree(graph)
    per_component = {
        GraphClass.UNION_ONE_WAY_PATH: is_one_way_path,
        GraphClass.UNION_TWO_WAY_PATH: is_two_way_path,
        GraphClass.UNION_DOWNWARD_TREE: is_downward_tree,
        GraphClass.UNION_POLYTREE: is_polytree,
    }
    recogniser = per_component[cls]
    return all(recogniser(component) for component in _components(graph))


def classify_graph(graph: DiGraph) -> Set[GraphClass]:
    """The set of all classes (from Figure 2) that contain ``graph``."""
    return {cls for cls in GraphClass if graph_in_class(graph, cls)}


#: Classes ordered from most to least specific, used by :func:`graph_class_of`.
_SPECIFICITY_ORDER: Tuple[GraphClass, ...] = (
    GraphClass.ONE_WAY_PATH,
    GraphClass.TWO_WAY_PATH,
    GraphClass.DOWNWARD_TREE,
    GraphClass.POLYTREE,
    GraphClass.UNION_ONE_WAY_PATH,
    GraphClass.UNION_TWO_WAY_PATH,
    GraphClass.UNION_DOWNWARD_TREE,
    GraphClass.UNION_POLYTREE,
    GraphClass.CONNECTED,
    GraphClass.ALL,
)


def graph_class_of(graph: DiGraph) -> GraphClass:
    """The most specific class of Figure 2 that contains ``graph``.

    Ties between 2WP and DWT (both refine to neither) are broken in favour
    of 2WP; this only matters for reporting, never for correctness, because
    the dispatcher re-checks membership of whichever class it needs.  The
    lattice position is memoised on the graph.
    """
    if graph.num_vertices() == 0:
        raise GraphError("the empty graph belongs to no class")

    def compute() -> GraphClass:
        for cls in _SPECIFICITY_ORDER:
            if graph_in_class(graph, cls):
                return cls
        return GraphClass.ALL

    return graph.cached("class_of", compute)
