"""Constructors for the paper's graph classes.

These helpers build members of the classes 1WP, 2WP, DWT, PT and their
disjoint unions (Section 2, "Graph classes") from compact descriptions:

* :func:`one_way_path` — from a sequence of edge labels;
* :func:`two_way_path` — from a sequence of ``(label, direction)`` pairs;
* :func:`downward_tree` — from a parent map with labels;
* :func:`polytree_from_parents` — from a parent map with labels *and*
  orientations;
* :func:`disjoint_union` — from a list of graphs, with automatic vertex
  renaming to keep the components disjoint.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph, UNLABELED

#: Direction marker for a forward edge of a two-way path / polytree.
FORWARD = "forward"
#: Direction marker for a backward edge of a two-way path / polytree.
BACKWARD = "backward"

Step = Union[str, Tuple[str, str]]


def _vertex_name(prefix: str, index: int) -> str:
    return f"{prefix}{index}"


def one_way_path(labels: Sequence[str], prefix: str = "v") -> DiGraph:
    """Build the one-way path ``v0 --labels[0]--> v1 --labels[1]--> ...``.

    Parameters
    ----------
    labels:
        Edge labels in order; the path has ``len(labels)`` edges and
        ``len(labels) + 1`` vertices.  An empty sequence yields the
        single-vertex graph (a path of length zero).
    prefix:
        Prefix used for the generated vertex names.
    """
    graph = DiGraph()
    graph.add_vertex(_vertex_name(prefix, 0))
    for i, label in enumerate(labels):
        graph.add_edge(_vertex_name(prefix, i), _vertex_name(prefix, i + 1), label)
    return graph


def unlabeled_path(length: int, prefix: str = "v") -> DiGraph:
    """The unlabeled one-way path with ``length`` edges (the query ``->^m``)."""
    if length < 0:
        raise GraphError("path length must be non-negative")
    return one_way_path([UNLABELED] * length, prefix=prefix)


def two_way_path(steps: Sequence[Step], prefix: str = "v") -> DiGraph:
    """Build a two-way path from a sequence of steps.

    Each step is either a bare label (meaning a forward edge
    ``v_i --label--> v_{i+1}``) or a ``(label, direction)`` pair with
    direction :data:`FORWARD` or :data:`BACKWARD` (a backward edge is
    ``v_i <--label-- v_{i+1}``).
    """
    graph = DiGraph()
    graph.add_vertex(_vertex_name(prefix, 0))
    for i, step in enumerate(steps):
        if isinstance(step, str):
            label, direction = step, FORWARD
        else:
            label, direction = step
        u, v = _vertex_name(prefix, i), _vertex_name(prefix, i + 1)
        if direction == FORWARD:
            graph.add_edge(u, v, label)
        elif direction == BACKWARD:
            graph.add_edge(v, u, label)
        else:
            raise GraphError(f"unknown direction {direction!r}")
    return graph


def two_way_path_from_signs(signs: Sequence[int], label: str = UNLABELED, prefix: str = "v") -> DiGraph:
    """Build an unlabeled-ish two-way path from ``+1`` / ``-1`` orientation signs.

    ``+1`` produces a forward edge and ``-1`` a backward edge; every edge
    carries ``label``.  This is the compact notation used by the unlabeled
    reductions (e.g. the query ``→→→ (→→←)^k →→→`` of Proposition 5.6).
    """
    steps: List[Step] = []
    for s in signs:
        if s not in (1, -1):
            raise GraphError(f"orientation signs must be +1 or -1, got {s!r}")
        steps.append((label, FORWARD if s == 1 else BACKWARD))
    return two_way_path(steps, prefix=prefix)


def downward_tree(
    parent: Mapping[Hashable, Hashable],
    labels: Optional[Mapping[Hashable, str]] = None,
    root: Optional[Hashable] = None,
) -> DiGraph:
    """Build a downward tree (DWT) from a child→parent map.

    Parameters
    ----------
    parent:
        Maps each non-root vertex to its parent.  Edges are oriented from
        parent to child, as required by the DWT class.
    labels:
        Optional map from child vertex to the label of its parent edge
        (default: unlabeled).
    root:
        Optional explicit root (useful for the single-vertex tree, where
        ``parent`` is empty).
    """
    graph = DiGraph()
    if root is not None:
        graph.add_vertex(root)
    for child, par in parent.items():
        label = UNLABELED if labels is None else labels.get(child, UNLABELED)
        graph.add_edge(par, child, label)
    if graph.num_vertices() == 0:
        raise GraphError("a downward tree must have at least one vertex")
    return graph


def polytree_from_parents(
    parent: Mapping[Hashable, Tuple[Hashable, str, str]],
    root: Optional[Hashable] = None,
) -> DiGraph:
    """Build a polytree from a child → ``(parent, label, direction)`` map.

    ``direction`` is :data:`FORWARD` for an edge oriented parent→child (a
    "downward" edge) and :data:`BACKWARD` for child→parent (an "upward"
    edge).  The underlying undirected graph is the tree described by the
    parent map.
    """
    graph = DiGraph()
    if root is not None:
        graph.add_vertex(root)
    for child, (par, label, direction) in parent.items():
        if direction == FORWARD:
            graph.add_edge(par, child, label)
        elif direction == BACKWARD:
            graph.add_edge(child, par, label)
        else:
            raise GraphError(f"unknown direction {direction!r}")
    if graph.num_vertices() == 0:
        raise GraphError("a polytree must have at least one vertex")
    return graph


def star_tree(num_children: int, label: str = UNLABELED, prefix: str = "s") -> DiGraph:
    """A downward tree of depth one with ``num_children`` children (a star)."""
    if num_children < 0:
        raise GraphError("number of children must be non-negative")
    graph = DiGraph()
    root = _vertex_name(prefix, 0)
    graph.add_vertex(root)
    for i in range(num_children):
        graph.add_edge(root, _vertex_name(prefix, i + 1), label)
    return graph


def disjoint_union(graphs: Iterable[DiGraph], prefix: str = "c") -> DiGraph:
    """The disjoint union of the given graphs.

    Vertices of component ``i`` are renamed to ``(f"{prefix}{i}", v)`` so
    that accidentally shared vertex names never merge components.
    """
    union = DiGraph()
    for i, graph in enumerate(graphs):
        tag = f"{prefix}{i}"
        for v in graph.vertices:
            union.add_vertex((tag, v))
        for e in graph.edges():
            union.add_edge((tag, e.source), (tag, e.target), e.label)
    if union.num_vertices() == 0:
        raise GraphError("a disjoint union must contain at least one non-empty graph")
    return union


def path_query_labels(graph: DiGraph) -> List[str]:
    """The label sequence of a one-way path graph, in path order.

    Raises :class:`~repro.exceptions.GraphError` if the graph is not a
    one-way path.  This is the inverse of :func:`one_way_path` and is used
    by the solvers that need the query as a label string (Prop 4.10).
    """
    from repro.graphs.classes import is_one_way_path, one_way_path_order

    if not is_one_way_path(graph):
        raise GraphError("graph is not a one-way path")
    order = one_way_path_order(graph)
    return [graph.label_of(order[i], order[i + 1]) for i in range(len(order) - 1)]
