"""Directed edge-labeled graphs with the paper's conventions.

The paper (Section 2, "Graphs and homomorphisms") works with directed graphs
``H = (V, E, λ)`` where ``E ⊆ V²`` and ``λ : E → σ`` assigns a *single* label
to each edge (multi-edges are disallowed).  Two conventions matter:

* a *subgraph* keeps the full vertex set and removes edges only;
* in the *unlabeled* setting (``|σ| = 1``) all edges carry the same label,
  which we represent with the module constant :data:`UNLABELED`.

The :class:`DiGraph` class below implements exactly this object, plus the
structural helpers (weak connectivity, underlying undirected tree tests,
degree queries) that the rest of the library builds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import GraphError

#: Label used for every edge of an "unlabeled" graph (the ``|σ| = 1`` setting).
UNLABELED = "_"

Vertex = Hashable


@dataclass(frozen=True)
class Edge:
    """A directed labeled edge ``source --label--> target``.

    Edges are hashable and totally ordered, so they can directly serve as
    Boolean variables of lineage formulas and as dictionary keys of
    probability assignments.  The order is by the ``repr`` of the endpoints
    (then the label), which is deterministic and — unlike the field-wise
    dataclass order — well-defined even when different edges use vertices of
    mutually incomparable types (e.g. ints and strings).
    """

    source: Vertex
    target: Vertex
    label: str = UNLABELED

    @property
    def endpoints(self) -> Tuple[Vertex, Vertex]:
        """The ``(source, target)`` pair identifying the edge."""
        return (self.source, self.target)

    def sort_key(self) -> Tuple[str, str, str]:
        """A type-safe total-order key (repr of endpoints, then label)."""
        return (repr(self.source), repr(self.target), self.label)

    def reversed(self) -> "Edge":
        """The same edge with its orientation flipped (label preserved)."""
        return Edge(self.target, self.source, self.label)

    def __lt__(self, other: "Edge") -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Edge") -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Edge") -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Edge") -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self.sort_key() >= other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source!r} -[{self.label}]-> {self.target!r}"


class DiGraph:
    """A directed graph with at most one labeled edge per ordered vertex pair.

    Parameters
    ----------
    vertices:
        Optional iterable of vertices to add immediately.
    edges:
        Optional iterable of :class:`Edge` objects or ``(source, target)`` /
        ``(source, target, label)`` tuples.

    Notes
    -----
    The class is deliberately small and dependency-free: it supports exactly
    the operations the paper's algorithms need (edge/vertex iteration,
    neighbourhood queries, weak connectivity, subgraph construction) and
    nothing else.  Vertices may be any hashable value.
    """

    def __init__(
        self,
        vertices: Optional[Iterable[Vertex]] = None,
        edges: Optional[Iterable] = None,
    ) -> None:
        self._vertices: Set[Vertex] = set()
        self._edges: Dict[Tuple[Vertex, Vertex], Edge] = {}
        self._succ: Dict[Vertex, Set[Vertex]] = {}
        self._pred: Dict[Vertex, Set[Vertex]] = {}
        #: Memoised derived data (sorted edge lists, components, class
        #: recognition results, ...), cleared on every mutation.
        self._cache: Dict[Hashable, Any] = {}
        self._frozen: bool = False
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for e in edges:
                if isinstance(e, Edge):
                    self.add_edge(e.source, e.target, e.label)
                elif len(e) == 2:
                    self.add_edge(e[0], e[1])
                else:
                    self.add_edge(e[0], e[1], e[2])

    # ------------------------------------------------------------------
    # freezing and memoisation
    # ------------------------------------------------------------------
    def freeze(self) -> "DiGraph":
        """Mark the graph immutable and return it.

        A frozen graph rejects further mutation with
        :class:`~repro.exceptions.GraphError`, which makes its memoised
        derived data (edge order, components, class recognition) safe to
        share indefinitely.  To modify a frozen graph, take a :meth:`copy`
        (copies are always mutable).
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether the graph has been frozen against mutation."""
        return self._frozen

    def _invalidate(self) -> None:
        """Reject mutation when frozen; otherwise drop memoised data."""
        if self._frozen:
            raise GraphError("graph is frozen; copy() it to obtain a mutable graph")
        if self._cache:
            self._cache.clear()

    def cached(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Memoise ``compute()`` under ``key`` until the next mutation.

        This is the hook the class recognisers and solvers use to attach
        derived structural data (path orders, recognition verdicts) to the
        graph without recomputing them on every query.
        """
        try:
            return self._cache[key]
        except KeyError:
            value = compute()
            self._cache[key] = value
            return value

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle without the memoised cache (recomputed on demand).

        Cache entries can hold arbitrarily large derived structures (compiled
        skeletons, component graphs); dropping them keeps pickles small and
        lets a receiving process warm its own caches, which is what the
        instance-affinity sharding of :mod:`repro.service` relies on.
        """
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (idempotent)."""
        if v not in self._vertices:
            self._invalidate()
            self._vertices.add(v)
            self._succ[v] = set()
            self._pred[v] = set()

    def add_edge(self, source: Vertex, target: Vertex, label: str = UNLABELED) -> Edge:
        """Add the edge ``source --label--> target``.

        Both endpoints are added to the vertex set if missing.  Adding an
        edge between an already-connected ordered pair raises
        :class:`~repro.exceptions.GraphError`, because the paper's graphs do
        not allow multi-edges (each edge has a unique label).
        """
        if (source, target) in self._edges:
            raise GraphError(
                f"edge ({source!r}, {target!r}) already exists; multi-edges are not allowed"
            )
        self._invalidate()
        self.add_vertex(source)
        self.add_vertex(target)
        edge = Edge(source, target, label)
        self._edges[(source, target)] = edge
        self._succ[source].add(target)
        self._pred[target].add(source)
        return edge

    def remove_edge(self, source: Vertex, target: Vertex) -> None:
        """Remove the edge ``source -> target`` (vertices are kept)."""
        if (source, target) not in self._edges:
            raise GraphError(f"edge ({source!r}, {target!r}) does not exist")
        self._invalidate()
        del self._edges[(source, target)]
        self._succ[source].discard(target)
        self._pred[target].discard(source)

    def copy(self) -> "DiGraph":
        """An independent copy of the graph."""
        return DiGraph(vertices=self._vertices, edges=self._edges.values())

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The vertex set (frozen view)."""
        return frozenset(self._vertices)

    def edges(self) -> List[Edge]:
        """All edges, in a deterministic (sorted by insertion-independent key) order.

        The sorted order is memoised until the next mutation; the returned
        list is a fresh copy, so callers may reorder it freely.
        """
        return list(
            self.cached(
                "edges",
                lambda: tuple(
                    sorted(
                        self._edges.values(),
                        key=lambda e: (repr(e.source), repr(e.target)),
                    )
                ),
            )
        )

    def edge_set(self) -> FrozenSet[Edge]:
        """All edges as a frozen set."""
        return frozenset(self._edges.values())

    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def has_vertex(self, v: Vertex) -> bool:
        """Whether ``v`` is a vertex of the graph."""
        return v in self._vertices

    def has_edge(self, source: Vertex, target: Vertex, label: Optional[str] = None) -> bool:
        """Whether the edge ``source -> target`` exists (optionally with the given label)."""
        edge = self._edges.get((source, target))
        if edge is None:
            return False
        return label is None or edge.label == label

    def get_edge(self, source: Vertex, target: Vertex) -> Edge:
        """The :class:`Edge` object for ``source -> target``."""
        try:
            return self._edges[(source, target)]
        except KeyError as exc:
            raise GraphError(f"edge ({source!r}, {target!r}) does not exist") from exc

    def label_of(self, source: Vertex, target: Vertex) -> str:
        """The label of the edge ``source -> target``."""
        return self.get_edge(source, target).label

    def labels(self) -> FrozenSet[str]:
        """The set of labels that actually appear on edges (memoised)."""
        return self.cached(
            "labels", lambda: frozenset(e.label for e in self._edges.values())
        )

    def is_unlabeled(self) -> bool:
        """Whether at most one distinct label appears (the ``|σ| = 1`` setting)."""
        return len(self.labels()) <= 1

    # ------------------------------------------------------------------
    # neighbourhoods and degrees
    # ------------------------------------------------------------------
    _EMPTY_SET: FrozenSet[Vertex] = frozenset()

    def successors(self, v: Vertex) -> Set[Vertex]:
        """Vertices ``w`` such that ``v -> w`` is an edge.

        Returns a live read-only view of the internal adjacency set (no
        defensive copy — this is on the hot path of every traversal).
        Callers must not mutate it; to keep an independent snapshot, wrap it
        in ``set(...)``.
        """
        return self._succ.get(v, self._EMPTY_SET)

    def predecessors(self, v: Vertex) -> Set[Vertex]:
        """Vertices ``u`` such that ``u -> v`` is an edge (read-only view)."""
        return self._pred.get(v, self._EMPTY_SET)

    def out_edges(self, v: Vertex) -> List[Edge]:
        """Edges leaving ``v``, in a deterministic order (memoised).

        The order is cached as a tuple and returned as a fresh list, so
        caller mutation cannot poison the cache.
        """
        return list(
            self.cached(
                ("out_edges", v),
                lambda: tuple(
                    self._edges[(v, w)] for w in sorted(self._succ.get(v, ()), key=repr)
                ),
            )
        )

    def in_edges(self, v: Vertex) -> List[Edge]:
        """Edges entering ``v``, in a deterministic order (memoised, fresh list)."""
        return list(
            self.cached(
                ("in_edges", v),
                lambda: tuple(
                    self._edges[(u, v)] for u in sorted(self._pred.get(v, ()), key=repr)
                ),
            )
        )

    def out_label_set(self, v: Vertex) -> FrozenSet[str]:
        """Labels on edges leaving ``v`` (memoised; arc-consistency hot path)."""
        return self.cached(
            ("out_labels", v),
            lambda: frozenset(self._edges[(v, w)].label for w in self._succ.get(v, ())),
        )

    def in_label_set(self, v: Vertex) -> FrozenSet[str]:
        """Labels on edges entering ``v`` (memoised; arc-consistency hot path)."""
        return self.cached(
            ("in_labels", v),
            lambda: frozenset(self._edges[(u, v)].label for u in self._pred.get(v, ())),
        )

    def out_degree(self, v: Vertex) -> int:
        """Number of edges leaving ``v``."""
        return len(self._succ.get(v, set()))

    def in_degree(self, v: Vertex) -> int:
        """Number of edges entering ``v``."""
        return len(self._pred.get(v, set()))

    def degree(self, v: Vertex) -> int:
        """Total (undirected) degree of ``v``."""
        return self.in_degree(v) + self.out_degree(v)

    def undirected_neighbours(self, v: Vertex) -> Set[Vertex]:
        """Neighbours of ``v`` in the underlying undirected graph."""
        return self.successors(v) | self.predecessors(v)

    # ------------------------------------------------------------------
    # subgraphs (paper semantics: same vertices, subset of edges)
    # ------------------------------------------------------------------
    def subgraph_with_edges(self, kept_edges: Iterable[Edge]) -> "DiGraph":
        """The subgraph keeping every vertex but only the given edges.

        This follows the paper's (slightly non-standard) definition of a
        subgraph: the vertex set is preserved, so possible worlds of a
        probabilistic graph always share the instance's vertex set.
        """
        kept = set(kept_edges)
        unknown = kept - set(self._edges.values())
        if unknown:
            raise GraphError(f"edges {unknown!r} are not edges of this graph")
        sub = DiGraph(vertices=self._vertices)
        for e in kept:
            sub.add_edge(e.source, e.target, e.label)
        return sub

    def induced_component(self, vertices: Iterable[Vertex]) -> "DiGraph":
        """The graph induced by a vertex subset (keeping only those vertices)."""
        keep = set(vertices)
        unknown = keep - self._vertices
        if unknown:
            raise GraphError(f"vertices {unknown!r} are not vertices of this graph")
        sub = DiGraph(vertices=keep)
        for e in self._edges.values():
            if e.source in keep and e.target in keep:
                sub.add_edge(e.source, e.target, e.label)
        return sub

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def weakly_connected_components(self) -> List[FrozenSet[Vertex]]:
        """Connected components of the underlying undirected graph (memoised)."""
        return list(self.cached("wcc", self._compute_components))

    def _compute_components(self) -> Tuple[FrozenSet[Vertex], ...]:
        seen: Set[Vertex] = set()
        components: List[FrozenSet[Vertex]] = []
        for start in sorted(self._vertices, key=repr):
            if start in seen:
                continue
            component: Set[Vertex] = set()
            queue: deque = deque([start])
            seen.add(start)
            while queue:
                v = queue.popleft()
                component.add(v)
                for w in self._succ[v]:
                    if w not in seen:
                        seen.add(w)
                        queue.append(w)
                for w in self._pred[v]:
                    if w not in seen:
                        seen.add(w)
                        queue.append(w)
            components.append(frozenset(component))
        return tuple(components)

    def is_weakly_connected(self) -> bool:
        """Whether the underlying undirected graph is connected (and non-empty).

        Runs a single BFS from an arbitrary vertex and early-exits, instead
        of materialising every component; the verdict is memoised.
        """
        if not self._vertices:
            return False

        def compute() -> bool:
            if "wcc" in self._cache:
                return len(self._cache["wcc"]) == 1
            start = next(iter(self._vertices))
            seen: Set[Vertex] = {start}
            queue: deque = deque([start])
            while queue:
                v = queue.popleft()
                for w in self._succ[v]:
                    if w not in seen:
                        seen.add(w)
                        queue.append(w)
                for w in self._pred[v]:
                    if w not in seen:
                        seen.add(w)
                        queue.append(w)
            return len(seen) == len(self._vertices)

        return self.cached("is_wcc", compute)

    def connected_component_graphs(self) -> List["DiGraph"]:
        """The graphs induced by each weakly connected component (memoised).

        The returned component graphs are shared between calls and are
        frozen; :meth:`copy` one to mutate it.
        """
        return list(
            self.cached(
                "component_graphs",
                lambda: tuple(
                    self.induced_component(c).freeze()
                    for c in self.weakly_connected_components()
                ),
            )
        )

    # ------------------------------------------------------------------
    # structural tests used throughout the paper
    # ------------------------------------------------------------------
    def has_directed_cycle(self) -> bool:
        """Whether the graph contains a directed cycle (including self-loops; memoised)."""
        return self.cached("has_directed_cycle", self._compute_has_directed_cycle)

    def _compute_has_directed_cycle(self) -> bool:
        in_deg = {v: self.in_degree(v) for v in self._vertices}
        queue = deque(v for v, d in in_deg.items() if d == 0)
        seen = 0
        while queue:
            v = queue.popleft()
            seen += 1
            for w in self._succ.get(v, set()):
                in_deg[w] -= 1
                if in_deg[w] == 0:
                    queue.append(w)
        return seen != len(self._vertices)

    def underlying_has_undirected_cycle(self) -> bool:
        """Whether the underlying undirected (multi-)graph has a cycle.

        A pair of antiparallel edges ``u -> v`` and ``v -> u`` counts as an
        undirected cycle of length two, because the underlying undirected
        graph then has a multi-edge and is not a tree.
        """
        def compute() -> bool:
            # A forest has exactly |V| - (#components) undirected edges, where
            # antiparallel pairs count twice (they already make a cycle).
            undirected_pairs = set()
            for (u, v) in self._edges:
                if (v, u) in self._edges:
                    return True
                undirected_pairs.add(frozenset((u, v)))
            num_components = len(self.weakly_connected_components())
            return len(undirected_pairs) > len(self._vertices) - num_components

        return self.cached("undirected_cycle", compute)

    def longest_directed_path_length(self) -> int:
        """Length (number of edges) of the longest directed *simple* path.

        For acyclic graphs this is computed by dynamic programming over a
        topological order; for cyclic graphs the length is unbounded in the
        homomorphism sense, and :class:`~repro.exceptions.GraphError` is
        raised.
        """
        if self.has_directed_cycle():
            raise GraphError("longest directed path is undefined on cyclic graphs")
        order = self.topological_order()
        longest: Dict[Vertex, int] = {v: 0 for v in self._vertices}
        for v in order:
            for u in self._pred.get(v, set()):
                longest[v] = max(longest[v], longest[u] + 1)
        return max(longest.values(), default=0)

    def topological_order(self) -> List[Vertex]:
        """A topological order of the vertices (requires acyclicity; memoised)."""
        return list(self.cached("topological_order", self._compute_topological_order))

    def _compute_topological_order(self) -> Tuple[Vertex, ...]:
        in_deg = {v: self.in_degree(v) for v in self._vertices}
        queue = deque(sorted((v for v, d in in_deg.items() if d == 0), key=repr))
        order: List[Vertex] = []
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in sorted(self._succ.get(v, set()), key=repr):
                in_deg[w] -= 1
                if in_deg[w] == 0:
                    queue.append(w)
        if len(order) != len(self._vertices):
            raise GraphError("graph has a directed cycle; no topological order exists")
        return tuple(order)

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def relabel_vertices(self, mapping: Dict[Vertex, Vertex]) -> "DiGraph":
        """A copy of the graph with vertices renamed according to ``mapping``.

        Vertices missing from ``mapping`` keep their name.  The mapping must
        be injective on the vertex set.
        """
        def rename(v: Vertex) -> Vertex:
            return mapping.get(v, v)

        new_names = [rename(v) for v in self._vertices]
        if len(set(new_names)) != len(new_names):
            raise GraphError("vertex relabeling is not injective")
        out = DiGraph(vertices=new_names)
        for e in self._edges.values():
            out.add_edge(rename(e.source), rename(e.target), e.label)
        return out

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(sorted(self._vertices, key=repr))

    def __len__(self) -> int:
        return len(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiGraph(|V|={self.num_vertices()}, |E|={self.num_edges()}, "
            f"labels={sorted(self.labels())})"
        )
