"""The Karp–Luby importance sampler over positive DNF lineages.

For the #P-hard PHom cells the library builds the match lineage — a
:class:`~repro.lineage.dnf.PositiveDNF` ``φ = C_1 ∨ … ∨ C_m`` over the
instance edges (Definition 4.6) — and needs ``Pr(φ)`` under independent
edges.  Naive world sampling has only an *additive* guarantee, useless when
``Pr(φ)`` is small.  Karp–Luby's self-reducible importance sampler fixes
this with a *relative* ``(ε, δ)`` guarantee:

* each clause ``C_i`` has weight ``w_i = Π_{x ∈ C_i} p(x)`` and
  ``W = Σ_i w_i``; a sample draws a clause ``i`` with probability
  ``w_i / W``, then a world conditioned on ``C_i`` being satisfied (the
  clause variables forced true, everything else drawn independently);
* the Bernoulli outcome ``Y = 1`` iff ``i`` is the *first* satisfied clause
  in the drawn world.  Every satisfying world is counted for exactly one
  clause, so ``E[Y] = Pr(φ) / W``, and ``W · Ȳ`` is an unbiased estimator
  of ``Pr(φ)``.  Crucially ``E[Y] ≥ 1/m``, because
  ``Pr(φ) ≥ max_i w_i ≥ W/m`` — the importance distribution can never be
  exponentially off.

The ``(ε, δ)`` schedule has two phases:

1. **Pilot (stopping rule).** Following the stopping-rule theorem of Dagum,
   Karp, Luby & Ross (*An optimal algorithm for Monte Carlo estimation*),
   sampling until ``Υ₀ = ⌈1 + 18 ln(4/δ)⌉`` successes yields ``p̂`` within a
   factor ``3/2`` of ``p = E[Y]`` with probability ``1 − δ/2``, so
   ``p_lb = max(2p̂/3, 1/m)`` lower-bounds ``p`` (the ``1/m`` floor is the
   theorem above and holds unconditionally).
2. **Median of means.** ``k = ⌈8 ln(2/δ)⌉`` (rounded up to odd) independent
   groups of ``n = ⌈4 / (ε² p_lb)⌉`` samples each: by Chebyshev each group
   mean misses ``p`` by more than ``εp`` with probability at most ``1/4``,
   and by Hoeffding the *median* of the ``k`` group means misses with
   probability at most ``e^{−k/8} ≤ δ/2``.

Union-bounding the phases, the returned ``W · median`` satisfies

```
Pr( |estimate − Pr(φ)| > ε · Pr(φ) ) ≤ δ ,
```

with an expected total of ``O((m/ε²) log(1/δ))`` samples — polynomial,
against the ``2^m`` of exact enumeration.  The run is driven by one explicit
seeded RNG with a fixed per-sample consumption pattern, so a pinned seed
reproduces the estimate bit for bit.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from statistics import median
from typing import Hashable, List, Mapping, Optional, Tuple

from repro.exceptions import LineageError
from repro.lineage.dnf import PositiveDNF
from repro.approx.sampling import ApproxEstimate, ApproxParams
from repro.obs.trace import current_tracer

Variable = Hashable


def _exact(value: float, params: ApproxParams) -> ApproxEstimate:
    return ApproxEstimate(
        value=value,
        samples=0,
        epsilon=params.epsilon,
        delta=params.delta,
        seed=params.seed,
        estimator="karp-luby",
        exact=True,
    )


class _ClauseSampler:
    """One DNF's sampling state: the memoised structure plus per-table weights.

    The deterministic variable/clause ordering (sorted by ``repr``) comes
    from :meth:`PositiveDNF.indexed_clauses`, which is memoised on the
    formula — so repeated estimates of the same (plan-cached) lineage under
    drifting probabilities only recompute the weights, and the estimate
    depends on nothing but the formula, the table and the seed.
    """

    def __init__(self, dnf: PositiveDNF, probabilities: Mapping[Variable, float]) -> None:
        variables, indexed = dnf.indexed_clauses()
        missing = [v for v in variables if v not in probabilities]
        if missing:
            raise LineageError(f"probability table is missing variables: {missing!r}")
        self.probs: List[float] = [float(probabilities[v]) for v in variables]
        clauses: List[Tuple[int, ...]] = []
        weights: List[float] = []
        for clause in indexed:
            weight = 1.0
            for position in clause:
                weight *= self.probs[position]
            if weight > 0.0:
                clauses.append(clause)
                weights.append(weight)
        self.clauses = clauses
        self.cumulative: List[float] = []
        total = 0.0
        for weight in weights:
            total += weight
            self.cumulative.append(total)
        self.total_weight = total

    def draw(self, n: int, rng: random.Random) -> int:
        """Draw ``n`` Karp–Luby samples; count first-satisfied-clause successes."""
        uniform = rng.random
        clauses = self.clauses
        cumulative = self.cumulative
        total = self.total_weight
        probs = self.probs
        num_vars = len(probs)
        last = len(clauses) - 1
        successes = 0
        for _ in range(n):
            chosen = bisect_left(cumulative, uniform() * total)
            if chosen > last:  # guard the r == total floating boundary
                chosen = last
            # Fixed consumption pattern: one uniform per variable per sample,
            # whatever the chosen clause — this is what keeps seeded runs
            # reproducible across clause choices.
            valuation = [uniform() < p for p in probs] if num_vars else []
            for position in clauses[chosen]:
                valuation[position] = True
            for j in range(chosen):
                for position in clauses[j]:
                    if not valuation[position]:
                        break
                else:
                    break  # an earlier clause is satisfied: not minimal
            else:
                successes += 1
        return successes


def karp_luby_probability(
    dnf: PositiveDNF,
    probabilities: Mapping[Variable, float],
    params: ApproxParams = ApproxParams(),
    num_samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> ApproxEstimate:
    """Estimate ``Pr(dnf)`` under independent variables, Karp–Luby style.

    Parameters
    ----------
    dnf:
        The positive DNF formula (for PHom: the match lineage).
    probabilities:
        Truth probability of each variable (floats; exact Fractions are
        accepted and truncated).
    params:
        The ``(ε, δ)`` contract and the RNG seed.  With the default
        ``num_samples=None`` the two-phase schedule documented in the module
        docstring guarantees relative error ``ε`` with probability
        ``1 − δ``.
    num_samples:
        When given, skip the schedule and return the plain mean of exactly
        this many samples (no guarantee; used for accuracy-vs-samples
        curves).
    rng:
        Override the generator (defaults to ``params.rng()``).

    Degenerate formulas — constant true/false, every clause containing a
    zero-probability variable, a single clause — are resolved exactly with
    zero samples and flagged ``exact=True`` on the returned estimate.
    """
    if dnf.is_true():
        return _exact(1.0, params)
    if dnf.is_false():
        return _exact(0.0, params)
    sampler = _ClauseSampler(dnf, probabilities)
    m = len(sampler.clauses)
    if m == 0:
        return _exact(0.0, params)
    if m == 1:
        return _exact(min(sampler.total_weight, 1.0), params)
    if rng is None:
        rng = params.rng()

    if num_samples is not None:
        if num_samples < 1:
            raise LineageError(f"need at least one sample, got {num_samples!r}")
        successes = sampler.draw(num_samples, rng)
        value = sampler.total_weight * successes / num_samples
        return ApproxEstimate(
            value=min(max(value, 0.0), 1.0),
            samples=num_samples,
            epsilon=params.epsilon,
            delta=params.delta,
            seed=params.seed,
            estimator="karp-luby",
        )

    epsilon, delta = params.epsilon, params.delta
    # Phase 1: stopping-rule pilot for a lower bound on p = Pr(success).
    target = math.ceil(1.0 + 18.0 * math.log(4.0 / delta))
    pilot_cap = 4 * target * m  # E[samples to target] ≤ target·m since p ≥ 1/m
    pilot_n = 0
    pilot_successes = 0
    with current_tracer().span("sampler.pilot") as span:
        while pilot_successes < target and pilot_n < pilot_cap:
            pilot_successes += sampler.draw(1, rng)
            pilot_n += 1
        if span:
            span.attrs["samples"] = pilot_n
            span.attrs["clauses"] = m
    p_hat = pilot_successes / pilot_n
    p_lb = max(2.0 * p_hat / 3.0, 1.0 / m)

    # Phase 2: median of k group means, each group sized by Chebyshev.
    k = math.ceil(8.0 * math.log(2.0 / delta))
    if k % 2 == 0:
        k += 1
    group_size = math.ceil(4.0 / (epsilon * epsilon * p_lb))
    with current_tracer().span("sampler.main") as span:
        means = [sampler.draw(group_size, rng) / group_size for _ in range(k)]
        if span:
            span.attrs["samples"] = k * group_size
            span.attrs["groups"] = k
    value = sampler.total_weight * median(means)
    return ApproxEstimate(
        value=min(max(value, 0.0), 1.0),
        samples=pilot_n + k * group_size,
        epsilon=epsilon,
        delta=delta,
        seed=params.seed,
        estimator="karp-luby",
    )
