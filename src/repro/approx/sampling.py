"""Monte Carlo estimation for the #P-hard PHom cells: the naive sampler.

The paper's dichotomy leaves every query/instance combination outside the
tractable classes #P-hard, where the library so far only offered exponential
possible-world enumeration.  This module is the first half of the sampling
subsystem: drawing possible worlds of a :class:`~repro.probability.prob_graph.
ProbabilisticGraph` from their exact distribution and estimating
``Pr(query ⇝ instance)`` as the fraction of sampled worlds admitting a
homomorphism.

The naive estimator carries an *additive* ``(ε, δ)`` guarantee through
Hoeffding's inequality: with ``N = ⌈ln(2/δ) / (2 ε²)⌉`` samples,

```
Pr(|estimate − Pr(query ⇝ instance)| > ε) ≤ δ .
```

Its weakness — shared with every direct Monte Carlo on the world space — is
that the guarantee is additive: when the true probability is tiny, a
relative guarantee needs the importance-sampling estimator of
:mod:`repro.approx.karp_luby` instead.  Both estimators are driven by an
explicit seeded :class:`random.Random` so every estimate is reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.exceptions import ReproError
from repro.graphs.digraph import DiGraph, Edge
from repro.graphs.homomorphism import has_homomorphism
from repro.probability.prob_graph import ProbabilisticGraph

RandomLike = Union[random.Random, int, None]


def make_rng(source: RandomLike) -> random.Random:
    """A :class:`random.Random` from a seed, an existing generator, or ``None``.

    ``None`` draws fresh entropy (non-reproducible); pass an integer seed for
    reproducible estimates.
    """
    if isinstance(source, random.Random):
        return source
    return random.Random(source)


@dataclass(frozen=True)
class ApproxParams:
    """The accuracy contract of a sampling run.

    Attributes
    ----------
    epsilon:
        The error bound: additive for the naive world sampler, relative for
        the Karp–Luby estimator.
    delta:
        The failure probability: the error bound holds with probability at
        least ``1 − delta`` over the sampler's random choices.
    seed:
        Seed for the explicit RNG driving the run.  ``None`` means fresh
        entropy on every estimate; any integer makes the estimate a pure
        function of its inputs.
    """

    epsilon: float = 0.05
    delta: float = 0.01
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not (0 < self.epsilon < 1):
            raise ReproError(f"epsilon must lie in (0, 1), got {self.epsilon!r}")
        if not (0 < self.delta < 1):
            raise ReproError(f"delta must lie in (0, 1), got {self.delta!r}")

    def rng(self) -> random.Random:
        """A fresh generator for one estimation run."""
        return make_rng(self.seed)


@dataclass(frozen=True)
class ApproxEstimate:
    """One sampling answer: the estimate plus its provenance.

    ``value`` is the estimated probability (a float in ``[0, 1]``);
    ``samples`` is the total number of Monte Carlo samples drawn;
    ``estimator`` names the algorithm (``"monte-carlo-worlds"`` or
    ``"karp-luby"``); ``exact`` marks the degenerate cases the estimators
    resolve symbolically (constant formulas, a single clause), where the
    value is not an estimate at all.
    """

    value: float
    samples: int
    epsilon: float
    delta: float
    seed: Optional[int]
    estimator: str
    exact: bool = False

    def __float__(self) -> float:
        return self.value

    def describe(self) -> str:
        """A one-line provenance note for results and logs."""
        if self.exact:
            return f"{self.estimator}: degenerate case solved exactly"
        seed = "fresh-entropy" if self.seed is None else self.seed
        return (
            f"{self.estimator}: {self.samples} samples, "
            f"ε={self.epsilon}, δ={self.delta}, seed={seed}"
        )


def hoeffding_sample_count(epsilon: float, delta: float) -> int:
    """Samples needed for an additive ``(ε, δ)`` bound on a Bernoulli mean."""
    return max(1, math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))


def sample_world_edges(
    instance: ProbabilisticGraph, rng: random.Random
) -> List[Edge]:
    """Draw the kept-edge set of one possible world from its exact distribution.

    Certain edges (probability 1) are always kept and impossible ones
    (probability 0) always dropped, so only the uncertain edges consume
    randomness — one uniform draw each, in the instance's deterministic edge
    order, which is what makes seeded runs reproducible.
    """
    probabilities = instance.float_probabilities()
    kept: List[Edge] = []
    uniform = rng.random
    for edge in instance.edges():
        p = probabilities[edge]
        if p >= 1.0 or (p > 0.0 and uniform() < p):
            kept.append(edge)
    return kept


def naive_phom_estimate(
    query: DiGraph,
    instance: ProbabilisticGraph,
    params: ApproxParams = ApproxParams(),
    num_samples: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> ApproxEstimate:
    """Estimate ``Pr(query ⇝ instance)`` by sampling possible worlds.

    With the default ``num_samples=None`` the sample count is chosen from
    ``params`` by Hoeffding's inequality, giving the additive ``(ε, δ)``
    guarantee documented in the module docstring; an explicit ``num_samples``
    overrides it (used by the accuracy-vs-samples benchmark curves).  Each
    sample draws a world and runs one homomorphism check, so the cost per
    sample is polynomial — in contrast to the ``2^m`` worlds of the exact
    brute force.
    """
    if rng is None:
        rng = params.rng()
    n = num_samples if num_samples is not None else hoeffding_sample_count(
        params.epsilon, params.delta
    )
    if n < 1:
        raise ReproError(f"need at least one sample, got {n!r}")
    graph = instance.graph
    hits = 0
    for _ in range(n):
        world = graph.subgraph_with_edges(sample_world_edges(instance, rng))
        if has_homomorphism(query, world):
            hits += 1
    return ApproxEstimate(
        value=hits / n,
        samples=n,
        epsilon=params.epsilon,
        delta=params.delta,
        seed=params.seed,
        estimator="monte-carlo-worlds",
    )
