"""Sampling-based approximation for the intractable PHom cells.

The paper's dichotomy (Tables 1–3) leaves every query/instance combination
outside the tractable classes #P-hard; exactly there the library used to
offer only exponential possible-world enumeration.  This subsystem opens the
intractable workload class with two seeded Monte Carlo estimators:

* :func:`naive_phom_estimate` — direct possible-world sampling with an
  additive ``(ε, δ)`` Hoeffding guarantee;
* :func:`karp_luby_probability` — the Karp–Luby importance sampler over the
  positive-DNF match lineage, with a *relative* ``(ε, δ)`` guarantee via a
  stopping-rule pilot plus median-of-means (see
  :mod:`repro.approx.karp_luby` for the analysis).

Both plug into the dispatcher: ``PHomSolver(precision="approx",
epsilon=…, delta=…, seed=…)`` routes #P-hard combinations to the Karp–Luby
estimator instead of brute force, and compiled
:class:`~repro.plan.FallbackPlan` objects expose the same path through
``plan.estimate(...)``.
"""

from repro.approx.sampling import (
    ApproxEstimate,
    ApproxParams,
    hoeffding_sample_count,
    make_rng,
    naive_phom_estimate,
    sample_world_edges,
)
from repro.approx.karp_luby import karp_luby_probability

__all__ = [
    "ApproxEstimate",
    "ApproxParams",
    "hoeffding_sample_count",
    "make_rng",
    "naive_phom_estimate",
    "sample_world_edges",
    "karp_luby_probability",
]
