"""Serving-layer benchmark: the parallel :class:`~repro.service.QueryService`
against single-process ``solve_many`` on Zipf-skewed query traffic.

The serving scenario: several probabilistic instances receive a stream of
query requests whose popularity follows a Zipf law (a few hot queries, a
long tail), arriving in micro-batches ("ticks") with occasional probability
updates in between.  The benchmark replays the *same* trace through

* ``solve_many`` — one persistent single-process solver, per tick grouping
  the requests by (instance, precision) and batch-solving each group (the
  PR-1/PR-2 serving story: plan cache + within-batch dedupe); and
* ``service`` — a :class:`~repro.service.QueryService` at several worker
  counts: instance-affinity sharding, cross-instance request coalescing
  before dispatch, and worker-side result caches that answer repeats across
  ticks without re-running even the arithmetic.

Correctness is asserted on every run: exact answers from every service
configuration must be *bit-identical* to the single-process baseline, and a
pinned-seed approx request on a ``#P``-hard pair must reproduce the same
estimate at every worker count (sampling is seeded per request, not per
worker).  The recorded speedup therefore measures architecture, not luck:
coalescing plus result caching removes duplicate arithmetic (the dominant
effect on skewed traffic at any core count), and sharding adds parallelism
on multi-core machines.

Results are written to ``BENCH_service.json``; run it with ``repro bench
service`` or ``python benchmarks/bench_service.py``.
"""

from __future__ import annotations

import pickle
import platform
import time
import warnings
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench import BENCH_SEED, _rng, write_report
from repro.core.solver import PHomSolver
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph
from repro.probability.prob_graph import ProbabilisticGraph
from repro.service import (
    Fault,
    FaultPlan,
    QueryService,
    ServiceRequest,
    epsilon_for_budget,
)
from repro.workloads.generators import (
    attach_random_probabilities,
    intractable_workload,
    make_instance,
    query_traffic_trace,
)
from repro import __version__

#: Worker counts replayed by the service side of the benchmark.
WORKER_COUNTS = (1, 2, 4)

#: Fraction of trace requests answered on the float backend (the rest exact).
FLOAT_REQUEST_SHARE = 0.2


@dataclass(frozen=True)
class TraceRequest:
    """One replayable request: a query against an instance at a precision."""

    instance_id: str
    query: DiGraph
    precision: str


@dataclass(frozen=True)
class ServiceTrace:
    """The full benchmark workload: instances, ticks and update points."""

    instances: Dict[str, ProbabilisticGraph]
    ticks: List[List[TraceRequest]]
    #: ``tick index -> (instance_id, edge endpoints, probability string)``
    updates: Dict[int, Tuple[str, Tuple, str]]
    distinct: int

    def num_requests(self) -> int:
        return sum(len(tick) for tick in self.ticks)


def build_service_trace(
    num_instances: int,
    pool_size: int,
    requests_per_instance: int,
    tick_size: int,
    skew: float,
    size_factor: float = 1.0,
) -> ServiceTrace:
    """A mixed-class, Zipf-skewed serving trace with mid-stream updates.

    Instances rotate over the three tractable shapes (labeled ⊔DWT with 1WP
    queries, labeled ⊔2WP with connected 2WP queries, unlabeled polytree
    with DWT queries), so the trace exercises every compiled-plan kind and
    the affinity sharding distributes real work.  The per-shape instance
    sizes put every shape's exact re-evaluation cost in the same
    serving-relevant band (milliseconds); ``size_factor`` scales them for
    smoke runs.
    """
    shapes = (
        (GraphClass.UNION_DOWNWARD_TREE, True, GraphClass.ONE_WAY_PATH, 3, 140),
        (GraphClass.UNION_TWO_WAY_PATH, True, GraphClass.TWO_WAY_PATH, 3, 80),
        (GraphClass.POLYTREE, False, GraphClass.DOWNWARD_TREE, 4, 80),
    )
    instances: Dict[str, ProbabilisticGraph] = {}
    streams: List[List[TraceRequest]] = []
    distinct = 0
    for index in range(num_instances):
        instance_class, labeled, query_class, query_size, instance_size = shapes[
            index % len(shapes)
        ]
        rng = _rng(100 + index)
        graph = make_instance(
            instance_class, labeled, max(12, int(instance_size * size_factor)), rng
        )
        instance = attach_random_probabilities(graph, rng, certain_fraction=0.2)
        instance_id = f"instance-{index}"
        instances[instance_id] = instance
        trace = query_traffic_trace(
            requests_per_instance,
            pool_size,
            skew=skew,
            query_class=query_class,
            labeled=labeled,
            query_size=query_size,
            rng=rng,
        )
        distinct += len(set(trace.requests))
        stream = []
        for position, query in enumerate(trace.queries()):
            precision = (
                "float"
                if (position % int(1 / FLOAT_REQUEST_SHARE)) == 0
                else "exact"
            )
            stream.append(TraceRequest(instance_id, query, precision))
        streams.append(stream)

    # Interleave the per-instance streams round-robin into arrival order,
    # then chop into ticks.
    arrival: List[TraceRequest] = []
    cursors = [0] * len(streams)
    while any(cursors[i] < len(streams[i]) for i in range(len(streams))):
        for i, stream in enumerate(streams):
            if cursors[i] < len(stream):
                arrival.append(stream[cursors[i]])
                cursors[i] += 1
    ticks = [
        arrival[start : start + tick_size]
        for start in range(0, len(arrival), tick_size)
    ]

    # Schedule one probability update at each third of the trace, rotating
    # over the instances.
    updates: Dict[int, Tuple[str, Tuple, str]] = {}
    update_rng = _rng(999)
    for mark, instance_id in zip(
        (len(ticks) // 3, (2 * len(ticks)) // 3), sorted(instances)
    ):
        uncertain = instances[instance_id].uncertain_edges()
        if not uncertain or mark == 0:
            continue
        edge = uncertain[update_rng.randrange(len(uncertain))]
        updates[mark] = (
            instance_id,
            (edge.source, edge.target),
            f"{update_rng.randint(1, 7)}/8",
        )
    return ServiceTrace(
        instances=instances, ticks=ticks, updates=updates, distinct=distinct
    )


def _fresh_instances(trace: ServiceTrace) -> Dict[str, ProbabilisticGraph]:
    """Every replay starts from an identical copy of the instances."""
    return pickle.loads(pickle.dumps(trace.instances))


def replay_solve_many(trace: ServiceTrace) -> Tuple[float, List]:
    """The single-process baseline: one persistent solver, per-tick batches."""
    instances = _fresh_instances(trace)
    solver = PHomSolver()
    answers: List = []
    start = time.perf_counter()
    for tick_index, tick in enumerate(trace.ticks):
        update = trace.updates.get(tick_index)
        if update is not None:
            instance_id, endpoints, probability = update
            instances[instance_id].set_probability(endpoints, probability)
        groups: Dict[Tuple[str, str], List[Tuple[int, DiGraph]]] = {}
        for offset, request in enumerate(tick):
            groups.setdefault((request.instance_id, request.precision), []).append(
                (offset, request.query)
            )
        tick_answers: List = [None] * len(tick)
        for (instance_id, precision), members in groups.items():
            results = solver.solve_many(
                [query for _, query in members],
                instances[instance_id],
                precision=precision,
            )
            for (offset, _), result in zip(members, results):
                tick_answers[offset] = result.probability
        answers.extend(tick_answers)
    return time.perf_counter() - start, answers


def replay_service(
    trace: ServiceTrace,
    num_workers: int,
    fault_plan: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
) -> Tuple[float, List, Dict]:
    """Replay the trace through a :class:`QueryService` at one worker count.

    The timed region covers the serving work only — worker start-up and
    instance registration are one-time deployment costs, exactly as plan
    compilation is excluded nowhere (both sides compile inside the timed
    replay, starting cold).

    With a ``fault_plan`` the replay doubles as the chaos scenario: the
    returned stats gain the supervision counters and the restart log, so
    the caller can assert zero lost requests and measure recovery cost.
    """
    instances = _fresh_instances(trace)
    answers: List = []
    kwargs: Dict[str, object] = {}
    if fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    if timeout is not None:
        kwargs["timeout"] = timeout
    with QueryService(num_workers=num_workers, **kwargs) as service:
        for instance_id in sorted(instances):
            service.register_instance(instances[instance_id], instance_id)
        start = time.perf_counter()
        for tick_index, tick in enumerate(trace.ticks):
            update = trace.updates.get(tick_index)
            if update is not None:
                instance_id, endpoints, probability = update
                service.update_probability(instance_id, endpoints, probability)
            results = service.submit_many(
                [
                    ServiceRequest(
                        query=request.query,
                        instance_id=request.instance_id,
                        precision=request.precision,
                    )
                    for request in tick
                ]
            )
            answers.extend(result.probability for result in results)
        elapsed = time.perf_counter() - start
        stats = service.stats()
        restart_log = [dict(entry) for entry in service.restart_log]
    return elapsed, answers, {
        "dedupe_hit_rate": stats.dedupe_hit_rate(),
        "coalesced": stats.coalesced,
        "dispatched": stats.dispatched,
        "result_cache_hits": stats.result_cache_hits(),
        "plan_cache": [worker.get("plan_cache") for worker in stats.workers],
        "restarts": stats.restarts,
        "retries": stats.retries,
        "restart_log": restart_log,
    }


def check_approx_reproducibility(
    worker_counts: Sequence[int], num_uncertain_edges: int = 10
) -> Dict[str, object]:
    """A pinned-seed approx request must not depend on the worker count."""
    workload = intractable_workload(num_uncertain_edges, rng=_rng(7))
    estimates: List[float] = []
    for workers in worker_counts:
        with QueryService(num_workers=workers) as service:
            instance_id = service.register_instance(
                pickle.loads(pickle.dumps(workload.instance)), "hard"
            )
            first = service.submit(
                workload.query, instance_id,
                precision="approx", epsilon=0.1, delta=0.05, seed=BENCH_SEED,
            )
            again = service.submit(
                workload.query, instance_id,
                precision="approx", epsilon=0.1, delta=0.05, seed=BENCH_SEED,
            )
        assert float(first) == float(again), (
            "pinned-seed approx estimate changed between submissions"
        )
        estimates.append(float(first))
    assert len(set(estimates)) == 1, (
        f"pinned-seed approx estimates differ across worker counts: {estimates}"
    )
    return {
        "estimate": estimates[0],
        "seed": BENCH_SEED,
        "worker_counts": list(worker_counts),
        "reproducible": True,
    }


def run_chaos_scenario(
    trace: ServiceTrace,
    num_workers: int,
    fault_free_seconds: float,
    baseline_answers: List,
) -> Dict[str, object]:
    """Replay the trace while a :class:`FaultPlan` kills one worker mid-trace.

    The contract asserted here is the tentpole of the fault-tolerance layer:
    the kill loses *zero* requests, exact answers stay bit-identical to the
    fault-free baseline (journal replay reconstructed the shard exactly),
    and the recovery cost — restart latency, retried dispatches, wall-clock
    overhead versus the fault-free run — is recorded for regression gating.
    """
    # Kill the worker that owns the first instance, a few batches in.
    target = zlib.crc32(b"instance-0") % num_workers
    fault = Fault(kind="kill", worker=target, after_messages=8)
    plan = FaultPlan(faults=(fault,), seed=BENCH_SEED)
    elapsed, answers, stats = replay_service(
        trace, num_workers, fault_plan=plan, timeout=30.0
    )
    lost = len(baseline_answers) - len(answers)
    bit_identical = answers == baseline_answers
    if lost != 0:
        raise AssertionError(f"chaos replay lost {lost} request(s)")
    if not bit_identical:
        raise AssertionError(
            "chaos replay answers are not bit-identical to the fault-free run"
        )
    if stats["restarts"] < 1:
        raise AssertionError("the injected kill did not trigger a worker restart")
    restart_log = stats["restart_log"]
    recovery_ms = max(entry["duration_s"] for entry in restart_log) * 1000.0
    return {
        "workers": num_workers,
        "fault": {
            "kind": fault.kind,
            "worker": fault.worker,
            "after_messages": fault.after_messages,
        },
        "restarts": stats["restarts"],
        "retries": stats["retries"],
        "recovery_ms": round(recovery_ms, 2),
        "instances_replayed": sum(e["instances_replayed"] for e in restart_log),
        "lost_requests": lost,
        "exact_bit_identical": bit_identical,
        "chaos_seconds": round(elapsed, 4),
        "fault_free_seconds": round(fault_free_seconds, 4),
        "retry_overhead_ratio": round(elapsed / fault_free_seconds, 3),
    }


def check_degraded_accuracy(
    deadline_ms: float = 50.0, num_uncertain_edges: int = 10
) -> Dict[str, object]:
    """A deadline-degraded answer must satisfy its budget-derived (ε, δ) bound.

    An injected delay makes a ``#P``-hard request miss its deadline; under
    ``on_deadline="degrade"`` the service re-answers it through the
    Karp–Luby tier with ``epsilon_for_budget(deadline_ms)``.  The pinned
    seed makes the estimate reproducible, and the relative error against
    the brute-force exact probability is recorded (and asserted within ε).
    """
    workload = intractable_workload(num_uncertain_edges, rng=_rng(7))
    with warnings.catch_warnings():
        # The reference value is exponential by design; the fallback
        # warning is expected here, not actionable.
        warnings.simplefilter("ignore")
        exact = float(
            PHomSolver(allow_brute_force=True).solve(
                workload.query, workload.instance, precision="exact"
            ).probability
        )
    epsilon = epsilon_for_budget(deadline_ms)
    plan = FaultPlan(
        faults=(Fault(kind="delay", seconds=0.15, after_messages=1),),
        seed=BENCH_SEED,
    )
    with QueryService(num_workers=0, seed=BENCH_SEED, fault_plan=plan) as service:
        instance_id = service.register_instance(
            pickle.loads(pickle.dumps(workload.instance)), "hard"
        )
        outcome = service.submit(
            workload.query,
            instance_id,
            deadline_ms=deadline_ms,
            on_deadline="degrade",
            seed=BENCH_SEED,
        )
        degraded_count = service.stats().degraded
    if not outcome.degraded:
        raise AssertionError("the delayed request was not degraded")
    estimate = float(outcome)
    relative_error = abs(estimate - exact) / exact if exact else abs(estimate)
    if relative_error > epsilon:
        raise AssertionError(
            f"degraded estimate {estimate:.6f} misses exact {exact:.6f} by "
            f"{relative_error:.3f} > epsilon {epsilon}"
        )
    return {
        "deadline_ms": deadline_ms,
        "epsilon": epsilon,
        "seed": BENCH_SEED,
        "exact": exact,
        "estimate": estimate,
        "relative_error": round(relative_error, 6),
        "within_epsilon": True,
        "degraded_answers": degraded_count,
    }


def run_service_benchmarks(
    smoke: bool = False,
    worker_counts: Optional[Sequence[int]] = None,
    faults: bool = False,
) -> Dict[str, object]:
    """Run the full suite and return the report dictionary."""
    if worker_counts is None:
        worker_counts = WORKER_COUNTS
    if smoke:
        num_instances, pool_size, per_instance, tick_size, skew = 2, 10, 150, 12, 1.1
        size_factor = 0.75
    else:
        num_instances, pool_size, per_instance, tick_size, skew = 4, 16, 250, 16, 1.1
        size_factor = 1.0
    trace = build_service_trace(
        num_instances, pool_size, per_instance, tick_size, skew,
        size_factor=size_factor,
    )

    baseline_seconds, baseline_answers = replay_solve_many(trace)
    num_requests = trace.num_requests()
    modes: Dict[str, Dict[str, object]] = {
        "solve_many_single_process": {
            "seconds": round(baseline_seconds, 4),
            "requests_per_sec": round(num_requests / baseline_seconds, 1),
        }
    }

    service_stats: Dict[int, Dict] = {}
    speedups: Dict[int, float] = {}
    for workers in worker_counts:
        elapsed, answers, stats = replay_service(trace, workers)
        if answers != baseline_answers:
            raise AssertionError(
                f"service answers at {workers} worker(s) are not bit-identical "
                "to the single-process baseline"
            )
        speedups[workers] = baseline_seconds / elapsed
        service_stats[workers] = stats
        modes[f"service_{workers}_workers"] = {
            "seconds": round(elapsed, 4),
            "requests_per_sec": round(num_requests / elapsed, 1),
            "speedup_vs_solve_many": round(speedups[workers], 2),
            **{k: (round(v, 4) if isinstance(v, float) else v) for k, v in stats.items()},
        }

    approx = check_approx_reproducibility(worker_counts)
    max_workers = max(worker_counts)
    recovery: Optional[Dict[str, object]] = None
    if faults:
        chaos_workers = max(2, max_workers)
        fault_free = (
            modes[f"service_{chaos_workers}_workers"]["seconds"]
            if chaos_workers in worker_counts
            else replay_service(trace, chaos_workers)[0]
        )
        recovery = run_chaos_scenario(
            trace, chaos_workers, float(fault_free), baseline_answers
        )
        recovery["degraded"] = check_degraded_accuracy()
    report: Dict[str, object] = {
        "benchmark": "service",
        "config": {
            "seed": BENCH_SEED,
            "smoke": smoke,
            "num_instances": num_instances,
            "distinct_queries": trace.distinct,
            "requests": num_requests,
            "tick_size": tick_size,
            "zipf_skew": skew,
            "updates": len(trace.updates),
            "worker_counts": list(worker_counts),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "version": __version__,
        },
        "modes": modes,
        "approx_reproducibility": approx,
        "summary": {
            "speedup_at_max_workers": round(speedups[max_workers], 2),
            "max_workers": max_workers,
            "dedupe_hit_rate": round(
                service_stats[max_workers]["dedupe_hit_rate"], 4
            ),
            "result_cache_hits": service_stats[max_workers]["result_cache_hits"],
            "exact_bit_identical": True,
            "approx_seed_reproducible": True,
            "contract": (
                "service answers bit-identical to single-process solve_many; "
                "pinned-seed approx estimates identical at every worker count"
            ),
        },
    }
    if recovery is not None:
        report["service_recovery"] = recovery
    return report


def check_service_thresholds(
    report: Dict[str, object],
    min_speedup: float = 0.0,
    max_recovery_ms: float = 0.0,
) -> None:
    """Raise AssertionError when a serving or reliability metric regresses."""
    summary = report["summary"]
    if not summary["exact_bit_identical"]:
        raise AssertionError("service exact answers diverged from the baseline")
    if not summary["approx_seed_reproducible"]:
        raise AssertionError("pinned-seed approx estimates were not reproducible")
    speedup = summary["speedup_at_max_workers"]
    if speedup < min_speedup:
        raise AssertionError(
            f"service speedup {speedup}x at {summary['max_workers']} workers is "
            f"below the required {min_speedup}x"
        )
    recovery = report.get("service_recovery")
    if recovery is not None:
        if recovery["lost_requests"] != 0:
            raise AssertionError(
                f"chaos run lost {recovery['lost_requests']} request(s)"
            )
        if not recovery["exact_bit_identical"]:
            raise AssertionError("chaos-run answers diverged from the baseline")
        if not recovery["degraded"]["within_epsilon"]:
            raise AssertionError("degraded answer violated its epsilon bound")
        if max_recovery_ms > 0 and recovery["recovery_ms"] > max_recovery_ms:
            raise AssertionError(
                f"worker recovery took {recovery['recovery_ms']} ms, above the "
                f"required {max_recovery_ms} ms"
            )
    elif max_recovery_ms > 0:
        raise AssertionError(
            "--max-recovery-ms requires the chaos scenario (run with --faults)"
        )


#: Serialise the report to disk — same format as the other benchmarks.
write_service_report = write_report


def format_service_report(report: Dict[str, object]) -> str:
    """A terse human-readable rendering of the report."""
    config = report["config"]
    lines = [
        f"service benchmark (seed {config['seed']}): {config['requests']} requests, "
        f"{config['distinct_queries']} distinct queries, Zipf skew {config['zipf_skew']}, "
        f"{config['num_instances']} instances, {config['updates']} mid-stream updates"
    ]
    for name, numbers in report["modes"].items():
        line = f"  {name:<28} {numbers['requests_per_sec']:>10.1f} req/sec"
        if "speedup_vs_solve_many" in numbers:
            line += f"   ({numbers['speedup_vs_solve_many']}x vs solve_many)"
        lines.append(line)
    summary = report["summary"]
    lines.append(
        f"  dedupe hit rate {summary['dedupe_hit_rate']:.0%}, "
        f"{summary['result_cache_hits']} result-cache hits at "
        f"{summary['max_workers']} workers"
    )
    approx = report["approx_reproducibility"]
    lines.append(
        f"  pinned-seed approx estimate {approx['estimate']:.6f} identical across "
        f"worker counts {approx['worker_counts']}"
    )
    lines.append(
        f"  speedup at {summary['max_workers']} workers: "
        f"{summary['speedup_at_max_workers']}x (exact answers bit-identical)"
    )
    recovery = report.get("service_recovery")
    if recovery is not None:
        fault = recovery["fault"]
        lines.append(
            f"  chaos: {fault['kind']} worker {fault['worker']} after "
            f"{fault['after_messages']} messages -> {recovery['restarts']} "
            f"restart(s) in {recovery['recovery_ms']} ms, "
            f"{recovery['retries']} retried dispatch(es), "
            f"{recovery['lost_requests']} lost, "
            f"{recovery['retry_overhead_ratio']}x wall-clock overhead"
        )
        degraded = recovery["degraded"]
        lines.append(
            f"  degraded answer at deadline {degraded['deadline_ms']} ms: "
            f"relative error {degraded['relative_error']:.4f} <= "
            f"epsilon {degraded['epsilon']}"
        )
    return "\n".join(lines)
