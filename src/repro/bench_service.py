"""Serving-layer benchmark: the parallel :class:`~repro.service.QueryService`
against single-process ``solve_many`` on Zipf-skewed query traffic.

The serving scenario: several probabilistic instances receive a stream of
query requests whose popularity follows a Zipf law (a few hot queries, a
long tail), arriving in micro-batches ("ticks") with occasional probability
updates in between.  The benchmark replays the *same* trace through

* ``solve_many`` — one persistent single-process solver, per tick grouping
  the requests by (instance, precision) and batch-solving each group (the
  PR-1/PR-2 serving story: plan cache + within-batch dedupe); and
* ``service`` — a :class:`~repro.service.QueryService` at several worker
  counts: instance-affinity sharding, cross-instance request coalescing
  before dispatch, and worker-side result caches that answer repeats across
  ticks without re-running even the arithmetic.

Correctness is asserted on every run: exact answers from every service
configuration must be *bit-identical* to the single-process baseline, and a
pinned-seed approx request on a ``#P``-hard pair must reproduce the same
estimate at every worker count (sampling is seeded per request, not per
worker).  The recorded speedup therefore measures architecture, not luck:
coalescing plus result caching removes duplicate arithmetic (the dominant
effect on skewed traffic at any core count), and sharding adds parallelism
on multi-core machines.

With ``--restart`` the suite additionally measures durable-state restart
(:mod:`repro.persist`): a cold replay populates a state directory, a warm
replay restarts from it and must recompile *zero* plans while answering
bit-identically, and a disk-fault matrix (torn-write, truncate-tail,
bit-flip, enospc, store-bit-flip) proves that every seeded corruption is
detected by checksum and recovered or quarantined — recorded as the
``restart_recovery`` section.

Results are written to ``BENCH_service.json``; run it with ``repro bench
service`` or ``python benchmarks/bench_service.py``.
"""

from __future__ import annotations

import math
import os
import pickle
import platform
import shutil
import tempfile
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench import BENCH_SEED, _rng, write_report
from repro.core.solver import PHomSolver
from repro.obs.metrics import histogram_quantile, merge_snapshots
from repro.obs.trace import read_trace, validate_trace
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph
from repro.persist import PlanStore
from repro.probability.prob_graph import ProbabilisticGraph
from repro.service import (
    DiskFaultInjector,
    Fault,
    FaultPlan,
    QueryService,
    ServiceRequest,
    epsilon_for_budget,
)
from repro.workloads.generators import (
    attach_random_probabilities,
    intractable_workload,
    make_instance,
    query_traffic_trace,
    round_robin_interleave,
)
from repro import __version__

#: Worker counts replayed by the service side of the benchmark.
WORKER_COUNTS = (1, 2, 4)

#: Fraction of trace requests answered on the float backend (the rest exact).
FLOAT_REQUEST_SHARE = 0.2


@dataclass(frozen=True)
class TraceRequest:
    """One replayable request: a query against an instance at a precision."""

    instance_id: str
    query: DiGraph
    precision: str


@dataclass(frozen=True)
class ServiceTrace:
    """The full benchmark workload: instances, ticks and update points."""

    instances: Dict[str, ProbabilisticGraph]
    ticks: List[List[TraceRequest]]
    #: ``tick index -> (instance_id, edge endpoints, probability string)``
    updates: Dict[int, Tuple[str, Tuple, str]]
    distinct: int

    def num_requests(self) -> int:
        return sum(len(tick) for tick in self.ticks)


def build_service_trace(
    num_instances: int,
    pool_size: int,
    requests_per_instance: int,
    tick_size: int,
    skew: float,
    size_factor: float = 1.0,
) -> ServiceTrace:
    """A mixed-class, Zipf-skewed serving trace with mid-stream updates.

    Instances rotate over the three tractable shapes (labeled ⊔DWT with 1WP
    queries, labeled ⊔2WP with connected 2WP queries, unlabeled polytree
    with DWT queries), so the trace exercises every compiled-plan kind and
    the affinity sharding distributes real work.  The per-shape instance
    sizes put every shape's exact re-evaluation cost in the same
    serving-relevant band (milliseconds); ``size_factor`` scales them for
    smoke runs.
    """
    shapes = (
        (GraphClass.UNION_DOWNWARD_TREE, True, GraphClass.ONE_WAY_PATH, 3, 140),
        (GraphClass.UNION_TWO_WAY_PATH, True, GraphClass.TWO_WAY_PATH, 3, 80),
        (GraphClass.POLYTREE, False, GraphClass.DOWNWARD_TREE, 4, 80),
    )
    instances: Dict[str, ProbabilisticGraph] = {}
    streams: List[List[TraceRequest]] = []
    distinct = 0
    for index in range(num_instances):
        instance_class, labeled, query_class, query_size, instance_size = shapes[
            index % len(shapes)
        ]
        rng = _rng(100 + index)
        graph = make_instance(
            instance_class, labeled, max(12, int(instance_size * size_factor)), rng
        )
        instance = attach_random_probabilities(graph, rng, certain_fraction=0.2)
        instance_id = f"instance-{index}"
        instances[instance_id] = instance
        trace = query_traffic_trace(
            requests_per_instance,
            pool_size,
            skew=skew,
            query_class=query_class,
            labeled=labeled,
            query_size=query_size,
            rng=rng,
        )
        distinct += len(set(trace.requests))
        stream = []
        for position, query in enumerate(trace.queries()):
            precision = (
                "float"
                if (position % int(1 / FLOAT_REQUEST_SHARE)) == 0
                else "exact"
            )
            stream.append(TraceRequest(instance_id, query, precision))
        streams.append(stream)

    # Interleave the per-instance streams round-robin into arrival order,
    # then chop into ticks.
    arrival = round_robin_interleave(streams)
    ticks = [
        arrival[start : start + tick_size]
        for start in range(0, len(arrival), tick_size)
    ]

    # Schedule one probability update at each third of the trace, rotating
    # over the instances.
    updates: Dict[int, Tuple[str, Tuple, str]] = {}
    update_rng = _rng(999)
    for mark, instance_id in zip(
        (len(ticks) // 3, (2 * len(ticks)) // 3), sorted(instances)
    ):
        uncertain = instances[instance_id].uncertain_edges()
        if not uncertain or mark == 0:
            continue
        edge = uncertain[update_rng.randrange(len(uncertain))]
        updates[mark] = (
            instance_id,
            (edge.source, edge.target),
            f"{update_rng.randint(1, 7)}/8",
        )
    return ServiceTrace(
        instances=instances, ticks=ticks, updates=updates, distinct=distinct
    )


def _fresh_instances(trace: ServiceTrace) -> Dict[str, ProbabilisticGraph]:
    """Every replay starts from an identical copy of the instances."""
    return pickle.loads(pickle.dumps(trace.instances))


def replay_solve_many(trace: ServiceTrace) -> Tuple[float, List]:
    """The single-process baseline: one persistent solver, per-tick batches."""
    instances = _fresh_instances(trace)
    solver = PHomSolver()
    answers: List = []
    start = time.perf_counter()
    for tick_index, tick in enumerate(trace.ticks):
        update = trace.updates.get(tick_index)
        if update is not None:
            instance_id, endpoints, probability = update
            instances[instance_id].set_probability(endpoints, probability)
        groups: Dict[Tuple[str, str], List[Tuple[int, DiGraph]]] = {}
        for offset, request in enumerate(tick):
            groups.setdefault((request.instance_id, request.precision), []).append(
                (offset, request.query)
            )
        tick_answers: List = [None] * len(tick)
        for (instance_id, precision), members in groups.items():
            results = solver.solve_many(
                [query for _, query in members],
                instances[instance_id],
                precision=precision,
            )
            for (offset, _), result in zip(members, results):
                tick_answers[offset] = result.probability
        answers.extend(tick_answers)
    return time.perf_counter() - start, answers


def replay_service(
    trace: ServiceTrace,
    num_workers: int,
    fault_plan: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
    state_dir: Optional[str] = None,
    wal_fsync: str = "batch",
    trace_sample_rate: float = 0.0,
    trace_path: Optional[str] = None,
    collect_metrics: bool = False,
) -> Tuple[float, List, Dict]:
    """Replay the trace through a :class:`QueryService` at one worker count.

    The timed region covers the serving work only — worker start-up and
    instance registration are one-time deployment costs, exactly as plan
    compilation is excluded nowhere (both sides compile inside the timed
    replay, starting cold).

    With a ``fault_plan`` the replay doubles as the chaos scenario: the
    returned stats gain the supervision counters and the restart log, so
    the caller can assert zero lost requests and measure recovery cost.
    """
    instances = _fresh_instances(trace)
    answers: List = []
    tick_latencies_ms: List[float] = []
    kwargs: Dict[str, object] = {}
    if fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    if timeout is not None:
        kwargs["timeout"] = timeout
    if state_dir is not None:
        kwargs["state_dir"] = state_dir
        kwargs["wal_fsync"] = wal_fsync
    if trace_sample_rate > 0.0:
        kwargs["trace_sample_rate"] = trace_sample_rate
        kwargs["trace_path"] = trace_path
    with QueryService(num_workers=num_workers, **kwargs) as service:
        for instance_id in sorted(instances):
            service.register_instance(instances[instance_id], instance_id)
        start = time.perf_counter()
        for tick_index, tick in enumerate(trace.ticks):
            update = trace.updates.get(tick_index)
            if update is not None:
                instance_id, endpoints, probability = update
                service.update_probability(instance_id, endpoints, probability)
            tick_start = time.perf_counter()
            results = service.submit_many(
                [
                    ServiceRequest(
                        query=request.query,
                        instance_id=request.instance_id,
                        precision=request.precision,
                    )
                    for request in tick
                ]
            )
            tick_latencies_ms.append((time.perf_counter() - tick_start) * 1000.0)
            answers.extend(result.probability for result in results)
        elapsed = time.perf_counter() - start
        stats = service.stats()
        restart_log = [dict(entry) for entry in service.restart_log]
        persistence = service.persistence_stats()
        metrics = service.metrics_snapshot() if collect_metrics else None
    extra = {"metrics_snapshot": metrics} if collect_metrics else {}
    return elapsed, answers, {
        **extra,
        "dedupe_hit_rate": stats.dedupe_hit_rate(),
        "coalesced": stats.coalesced,
        "dispatched": stats.dispatched,
        "steals": stats.steals,
        "replicas_shipped": stats.replicas_shipped,
        "result_cache_hits": stats.result_cache_hits(),
        # Keyed by worker index (JSON object keys are strings), so an idle
        # shard is attributable to its worker instead of being an anonymous
        # zeroed entry in a list.
        "plan_cache": {
            str(worker["worker"]): worker.get("plan_cache")
            for worker in stats.workers
        },
        "instances_by_worker": {
            str(worker["worker"]): list(worker.get("instances", ()))
            for worker in stats.workers
        },
        "restarts": stats.restarts,
        "retries": stats.retries,
        "restart_log": restart_log,
        "persistence": persistence,
        # Per-tick submit_many wall times — the latency samples behind the
        # p50/p99 percentiles of the throughput_vs_workers curve (popped
        # before the stats dict is serialized into a mode section).
        "tick_latencies_ms": tick_latencies_ms,
    }


def check_approx_reproducibility(
    worker_counts: Sequence[int], num_uncertain_edges: int = 10
) -> Dict[str, object]:
    """A pinned-seed approx request must not depend on the worker count."""
    workload = intractable_workload(num_uncertain_edges, rng=_rng(7))
    estimates: List[float] = []
    for workers in worker_counts:
        with QueryService(num_workers=workers) as service:
            instance_id = service.register_instance(
                pickle.loads(pickle.dumps(workload.instance)), "hard"
            )
            first = service.submit(
                workload.query, instance_id,
                precision="approx", epsilon=0.1, delta=0.05, seed=BENCH_SEED,
            )
            again = service.submit(
                workload.query, instance_id,
                precision="approx", epsilon=0.1, delta=0.05, seed=BENCH_SEED,
            )
        assert float(first) == float(again), (
            "pinned-seed approx estimate changed between submissions"
        )
        estimates.append(float(first))
    assert len(set(estimates)) == 1, (
        f"pinned-seed approx estimates differ across worker counts: {estimates}"
    )
    return {
        "estimate": estimates[0],
        "seed": BENCH_SEED,
        "worker_counts": list(worker_counts),
        "reproducible": True,
    }


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample set."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def build_balanced_trace(smoke: bool, max_workers: int) -> ServiceTrace:
    """The scaling trace: enough instances that every worker owns real work.

    Still Zipf-skewed per instance (the serving traffic model), but with at
    least ``2 * max_workers`` instances so least-loaded assignment gives
    every worker a multi-instance shard — the trace on which added workers
    *should* add throughput, making flat scaling attributable to the
    service rather than to a workload with nothing to parallelise.
    """
    num_instances = max(2 * max_workers, 8)
    if smoke:
        return build_service_trace(
            num_instances, 10, 40, 16, 1.1, size_factor=0.75
        )
    return build_service_trace(num_instances, 16, 80, 16, 1.1)


def measure_throughput_vs_workers(
    smoke: bool, worker_counts: Sequence[int]
) -> Dict[str, object]:
    """Replay the balanced trace at every worker count; record the curve.

    Each worker count reports throughput plus p50/p99 latency percentiles
    over the per-tick ``submit_many`` wall times (the latency a batching
    client observes under sustained load), the steal/replica counters, and
    the instance-to-worker assignment — asserting that no worker is left
    idle while instances outnumber workers, and that exact answers stay
    bit-identical to the 1-worker run at every count.

    ``scaling_gate_enforceable`` records whether this machine can honestly
    show parallel speedup: with fewer CPU cores than the largest worker
    count, added workers time-share the same cores and the throughput
    ratio measures scheduler overhead, not scaling — the CI gate only
    enforces ``--min-worker-scaling`` where ``cpus >= max_workers``.
    """
    trace = build_balanced_trace(smoke, max(worker_counts))
    cpus = os.cpu_count() or 1
    per_count: Dict[str, Dict[str, object]] = {}
    reference_answers: Optional[List] = None
    base_throughput: Optional[float] = None
    num_requests = trace.num_requests()
    for workers in sorted(worker_counts):
        elapsed, answers, stats = replay_service(trace, workers)
        if reference_answers is None:
            reference_answers = answers
        elif answers != reference_answers:
            raise AssertionError(
                f"balanced-trace answers at {workers} worker(s) diverged from "
                "the 1-worker run"
            )
        latencies = stats.pop("tick_latencies_ms")
        assignment = stats["instances_by_worker"]
        idle = [
            index
            for index in range(max(1, workers))
            if not assignment.get(str(index))
        ]
        if idle and len(trace.instances) >= max(1, workers):
            raise AssertionError(
                f"worker(s) {idle} own no instances at {workers} worker(s) "
                f"with {len(trace.instances)} instances registered"
            )
        throughput = num_requests / elapsed
        if base_throughput is None:
            base_throughput = throughput
        per_count[str(workers)] = {
            "seconds": round(elapsed, 4),
            "requests_per_sec": round(throughput, 1),
            "scaling_vs_1_worker": round(throughput / base_throughput, 2),
            "p50_ms": round(_percentile(latencies, 50), 2),
            "p99_ms": round(_percentile(latencies, 99), 2),
            "steals": stats["steals"],
            "replicas_shipped": stats["replicas_shipped"],
            "dedupe_hit_rate": round(stats["dedupe_hit_rate"], 4),
            "instances_by_worker": assignment,
            "no_idle_workers": not idle,
        }
    max_workers = max(worker_counts)
    return {
        "trace": {
            "num_instances": len(trace.instances),
            "requests": num_requests,
            "zipf_skew": 1.1,
        },
        "cpus": cpus,
        "scaling_gate_enforceable": cpus >= max_workers,
        "workers": per_count,
        "scaling_at_max_workers": per_count[str(max_workers)][
            "scaling_vs_1_worker"
        ],
        "exact_bit_identical": True,
    }


def run_chaos_scenario(
    trace: ServiceTrace,
    num_workers: int,
    fault_free_seconds: float,
    baseline_answers: List,
) -> Dict[str, object]:
    """Replay the trace while a :class:`FaultPlan` kills one worker mid-trace.

    The contract asserted here is the tentpole of the fault-tolerance layer:
    the kill loses *zero* requests, exact answers stay bit-identical to the
    fault-free baseline (journal replay reconstructed the shard exactly),
    and the recovery cost — restart latency, retried dispatches, wall-clock
    overhead versus the fault-free run — is recorded for regression gating.
    """
    # Kill the worker that owns the first instance, a few batches in:
    # replay_service registers instances in sorted order, and least-loaded
    # assignment gives the first registration to worker 0.
    target = 0
    fault = Fault(kind="kill", worker=target, after_messages=8)
    plan = FaultPlan(faults=(fault,), seed=BENCH_SEED)
    elapsed, answers, stats = replay_service(
        trace, num_workers, fault_plan=plan, timeout=30.0
    )
    lost = len(baseline_answers) - len(answers)
    bit_identical = answers == baseline_answers
    if lost != 0:
        raise AssertionError(f"chaos replay lost {lost} request(s)")
    if not bit_identical:
        raise AssertionError(
            "chaos replay answers are not bit-identical to the fault-free run"
        )
    if stats["restarts"] < 1:
        raise AssertionError("the injected kill did not trigger a worker restart")
    restart_log = stats["restart_log"]
    recovery_ms = max(entry["duration_s"] for entry in restart_log) * 1000.0
    return {
        "workers": num_workers,
        "fault": {
            "kind": fault.kind,
            "worker": fault.worker,
            "after_messages": fault.after_messages,
        },
        "restarts": stats["restarts"],
        "retries": stats["retries"],
        "recovery_ms": round(recovery_ms, 2),
        "instances_replayed": sum(e["instances_replayed"] for e in restart_log),
        "lost_requests": lost,
        "exact_bit_identical": bit_identical,
        "chaos_seconds": round(elapsed, 4),
        "fault_free_seconds": round(fault_free_seconds, 4),
        "retry_overhead_ratio": round(elapsed / fault_free_seconds, 3),
    }


def _plan_cache_totals(stats: Dict) -> Dict[str, int]:
    """Sum the per-worker plan-cache counters of a replay's stats."""
    totals = {"compiles": 0, "loads": 0, "hits": 0}
    for cache in stats.get("plan_cache", {}).values():
        if not cache:
            continue
        for counter in totals:
            totals[counter] += cache.get(counter, 0)
    return totals


def _disk_fault_workload(offset: int):
    """A small deterministic workload for one disk-fault case.

    Returns ``(instance, queries, updates)``: a labeled ⊔DWT instance,
    three 1WP queries against it, and four single-edge updates.
    """
    rng = _rng(500 + offset)
    graph = make_instance(GraphClass.UNION_DOWNWARD_TREE, True, 24, rng)
    instance = attach_random_probabilities(graph, rng, certain_fraction=0.2)
    traffic = query_traffic_trace(
        6, 3, skew=1.0,
        query_class=GraphClass.ONE_WAY_PATH, labeled=True, query_size=3, rng=rng,
    )
    queries = list(traffic.queries())[:3]
    uncertain = instance.uncertain_edges()
    updates = [
        ((edge.source, edge.target), f"{index + 1}/8")
        for index, edge in enumerate(uncertain[:4])
    ]
    if len(updates) < 2:  # pragma: no cover - workload generator guarantee
        raise AssertionError("disk-fault workload needs at least 2 uncertain edges")
    return instance, queries, updates


def _run_wal_fault_case(kind: str, offset: int) -> Dict[str, object]:
    """Prove recovery under one injected write-ahead-log fault kind.

    Phase 1 registers an instance and applies updates with the fault armed
    to fire on the *last* update's log append (solving runs afterwards, so
    plan-store writes cannot shift the shared write counter).  The damaged
    or rejected append means exactly that last update is not durable, so
    the expected post-restart state is known in closed form.  Phase 2
    restarts from the state directory and asserts: the corruption was
    detected (checksum/framing for torn-write / truncate-tail / bit-flip;
    the counted ``OSError`` for enospc), the instance was restored, and
    exact answers are bit-identical to an uninterrupted solver on the
    recovered state.
    """
    instance, queries, updates = _disk_fault_workload(offset)
    state_dir = tempfile.mkdtemp(prefix=f"repro-disk-{kind}-")
    try:
        fault = Fault(kind=kind, after_messages=len(updates))
        plan = FaultPlan(faults=(fault,), seed=BENCH_SEED)
        with QueryService(
            num_workers=0, state_dir=state_dir, wal_fsync="always", fault_plan=plan
        ) as service:
            service.register_instance(
                pickle.loads(pickle.dumps(instance)), "disk-case"
            )
            for endpoints, probability in updates:
                service.update_probability("disk-case", endpoints, probability)
            wal_errors = service.wal_errors
            # Keep serving under the fault: answers must reflect the full
            # in-memory state even when durability was just lost.
            live = [
                service.submit(query, "disk-case").result.probability
                for query in queries
            ]
        # The last update was the damaged/rejected append, so the durable
        # state is everything before it.
        expected_instance = pickle.loads(pickle.dumps(instance))
        for endpoints, probability in updates[:-1]:
            expected_instance.set_probability(endpoints, probability)
        solver = PHomSolver()
        expected = [
            solver.solve(query, expected_instance).probability for query in queries
        ]
        with QueryService(num_workers=0, state_dir=state_dir) as restarted:
            recovery = restarted.recovery
            wal_report = recovery["wal"]
            recovered = [
                restarted.submit(query, "disk-case").result.probability
                for query in queries
            ]
        if kind == "enospc":
            detected = wal_errors == 1
        else:
            detected = wal_report.corruption_detected
        bit_identical = recovered == expected
        full_state = pickle.loads(pickle.dumps(instance))
        for endpoints, probability in updates:
            full_state.set_probability(endpoints, probability)
        live_expected = [
            solver.solve(query, full_state).probability for query in queries
        ]
        return {
            "kind": kind,
            "detected": bool(detected),
            "recovered": bool(
                recovery["instances_restored"] == 1 and bit_identical
            ),
            "bit_identical": bool(bit_identical),
            "served_through_fault": live == live_expected,
            "lost_updates": 1,
            "wal_errors": wal_errors,
            "wal": wal_report.as_dict(),
        }
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def _run_store_fault_case() -> Dict[str, object]:
    """Prove recovery when a stored plan entry is silently corrupted.

    Phase 1 serves (and therefore stores) the workload's plans cleanly.
    One entry is then rewritten through the fault-injected write path with
    a seeded bit flip — silent media corruption of a plan at rest.  The
    detection contract is two-fold: ``PlanStore.verify`` (the ``repro
    store verify`` gate) must report the entry, and a restarted service
    must quarantine it during warm-up instead of unpickling garbage — then
    serve bit-identical answers by recompiling just that plan.
    """
    from repro.persist import plan_store_key

    instance, queries, _ = _disk_fault_workload(9)
    state_dir = tempfile.mkdtemp(prefix="repro-disk-store-")
    try:
        with QueryService(num_workers=0, state_dir=state_dir) as service:
            service.register_instance(
                pickle.loads(pickle.dumps(instance)), "disk-case"
            )
            expected = [
                service.submit(query, "disk-case").result.probability
                for query in queries
            ]
        plans_dir = os.path.join(state_dir, "plans")
        victim = next(iter(PlanStore(plans_dir).entries()))
        clean = PlanStore(plans_dir)
        victim_path = clean.entry_path(
            plan_store_key(
                victim["query_key"], victim["instance_digest"], victim["namespace"]
            )
        )
        os.remove(victim_path)
        injected = PlanStore(
            plans_dir,
            fault_injector=DiskFaultInjector(
                FaultPlan(faults=(Fault(kind="bit-flip"),), seed=BENCH_SEED)
            ),
        )
        injected.put(
            victim["query_key"],
            victim["instance_digest"],
            victim["namespace"],
            victim["plan"],
        )
        verify_report = PlanStore(plans_dir).verify()
        with QueryService(num_workers=0, state_dir=state_dir) as restarted:
            recovered = [
                restarted.submit(query, "disk-case").result.probability
                for query in queries
            ]
            store_stats = restarted.stats().workers[0]["plan_cache"]["store"]
        bit_identical = recovered == expected
        return {
            "kind": "store-bit-flip",
            "detected": bool(verify_report["corrupt"] == 1),
            "recovered": bool(store_stats["corrupt"] >= 1 and bit_identical),
            "bit_identical": bool(bit_identical),
            "quarantined_entries": store_stats["corrupt"],
            "verify": {
                "entries": verify_report["entries"],
                "corrupt": verify_report["corrupt"],
            },
        }
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def run_restart_scenario(
    trace: ServiceTrace, baseline_answers: List
) -> Dict[str, object]:
    """Cold-vs-warm restart through one state directory, plus disk faults.

    The cold replay starts with an empty ``state_dir`` and compiles the hot
    set from scratch; the warm replay restarts from the directory the cold
    run left behind and must *recompile zero plans* — every plan loads from
    the store — while answering bit-identically to the single-process
    baseline.  The disk-fault matrix then proves the recovery contract
    under every seeded corruption kind.
    """
    state_dir = tempfile.mkdtemp(prefix="repro-restart-")
    try:
        cold_seconds, cold_answers, cold_stats = replay_service(
            trace, 0, state_dir=state_dir
        )
        if cold_answers != baseline_answers:
            raise AssertionError(
                "cold durable replay answers are not bit-identical to the baseline"
            )
        warm_seconds, warm_answers, warm_stats = replay_service(
            trace, 0, state_dir=state_dir
        )
        if warm_answers != baseline_answers:
            raise AssertionError(
                "warm restart answers are not bit-identical to the baseline"
            )
        cold_totals = _plan_cache_totals(cold_stats)
        warm_totals = _plan_cache_totals(warm_stats)
        if warm_totals["compiles"] != 0:
            raise AssertionError(
                f"warm restart recompiled {warm_totals['compiles']} plan(s); "
                "the whole hot set must load from the store"
            )
        if warm_totals["loads"] == 0:
            raise AssertionError("warm restart loaded no plans from the store")
        warm_recovery = (warm_stats.get("persistence") or {}).get("recovery") or {}
        disk_faults = [
            _run_wal_fault_case(kind, offset)
            for offset, kind in enumerate(
                ("torn-write", "truncate-tail", "bit-flip", "enospc")
            )
        ]
        disk_faults.append(_run_store_fault_case())
        return {
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_speedup": round(cold_seconds / warm_seconds, 2),
            "hot_set_plans": cold_totals["compiles"],
            "cold_compiles": cold_totals["compiles"],
            "warm_compiles": warm_totals["compiles"],
            "warm_loads": warm_totals["loads"],
            "warm_bit_identical": True,
            "instances_restored": warm_recovery.get("instances_restored", 0),
            "plans_warmed": warm_recovery.get("plans_warmed", 0),
            "disk_faults": disk_faults,
            "all_faults_detected": all(case["detected"] for case in disk_faults),
            "all_faults_recovered": all(case["recovered"] for case in disk_faults),
        }
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def check_degraded_accuracy(
    deadline_ms: float = 50.0, num_uncertain_edges: int = 10
) -> Dict[str, object]:
    """A deadline-degraded answer must satisfy its budget-derived (ε, δ) bound.

    An injected delay makes a ``#P``-hard request miss its deadline; under
    ``on_deadline="degrade"`` the service re-answers it through the
    Karp–Luby tier with ``epsilon_for_budget(deadline_ms)``.  The pinned
    seed makes the estimate reproducible, and the relative error against
    the brute-force exact probability is recorded (and asserted within ε).
    """
    workload = intractable_workload(num_uncertain_edges, rng=_rng(7))
    with warnings.catch_warnings():
        # The reference value is exponential by design; the fallback
        # warning is expected here, not actionable.
        warnings.simplefilter("ignore")
        exact = float(
            PHomSolver(allow_brute_force=True).solve(
                workload.query, workload.instance, precision="exact"
            ).probability
        )
    epsilon = epsilon_for_budget(deadline_ms)
    plan = FaultPlan(
        faults=(Fault(kind="delay", seconds=0.15, after_messages=1),),
        seed=BENCH_SEED,
    )
    with QueryService(num_workers=0, seed=BENCH_SEED, fault_plan=plan) as service:
        instance_id = service.register_instance(
            pickle.loads(pickle.dumps(workload.instance)), "hard"
        )
        outcome = service.submit(
            workload.query,
            instance_id,
            deadline_ms=deadline_ms,
            on_deadline="degrade",
            seed=BENCH_SEED,
        )
        degraded_count = service.stats().degraded
    if not outcome.degraded:
        raise AssertionError("the delayed request was not degraded")
    estimate = float(outcome)
    relative_error = abs(estimate - exact) / exact if exact else abs(estimate)
    if relative_error > epsilon:
        raise AssertionError(
            f"degraded estimate {estimate:.6f} misses exact {exact:.6f} by "
            f"{relative_error:.3f} > epsilon {epsilon}"
        )
    return {
        "deadline_ms": deadline_ms,
        "epsilon": epsilon,
        "seed": BENCH_SEED,
        "exact": exact,
        "estimate": estimate,
        "relative_error": round(relative_error, 6),
        "within_epsilon": True,
        "degraded_answers": degraded_count,
    }


def _route_mix_snapshot() -> Dict[str, object]:
    """One inline service exercising every dispatch route at least once.

    The main trace is exact-only, so the d-DNNF / Karp–Luby / tape-batch
    rows of the per-route latency histogram come from this dedicated mix:
    polytree queries through the automaton method, a pinned-seed approx
    request on a ``#P``-hard pair, and one ``evaluate_many`` tape batch.
    Returns the service's pool-wide metrics snapshot.
    """
    rng = _rng(77)
    polytree = attach_random_probabilities(
        make_instance(GraphClass.POLYTREE, False, 24, rng), rng,
        certain_fraction=0.2,
    )
    tree_queries = list(
        query_traffic_trace(
            4, 2, skew=1.0, query_class=GraphClass.DOWNWARD_TREE,
            labeled=False, query_size=4, rng=rng,
        ).queries()
    )
    hard = intractable_workload(8, rng=_rng(7))
    with QueryService(num_workers=0, seed=BENCH_SEED) as service:
        service.register_instance(polytree, "mix-polytree")
        service.register_instance(
            pickle.loads(pickle.dumps(hard.instance)), "mix-hard"
        )
        for query in tree_queries:
            service.submit(query, "mix-polytree")
            service.submit(query, "mix-polytree", method="polytree-automaton")
        service.submit(
            hard.query, "mix-hard",
            precision="approx", epsilon=0.1, delta=0.05, seed=BENCH_SEED,
        )
        service.evaluate_many(
            "mix-polytree", tree_queries[0], [None, {}], precision="float"
        )
        return service.metrics_snapshot()


def _route_latency_section(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The per-route latency histogram of a metrics snapshot, summarised.

    Reads the ``repro_request_duration_ms`` family and reports, per route
    label, the raw bucket counts plus count / mean / p50 / p99 — the
    ``route_latency_ms`` section of ``BENCH_service.json``.
    """
    family = (snapshot.get("histograms") or {}).get("repro_request_duration_ms")
    if not family:
        return {"buckets_ms": [], "routes": {}}
    bounds = list(family["buckets"])
    routes: Dict[str, Dict[str, object]] = {}
    for labelvalues, data in family["samples"]:
        count = data["count"]
        if not count:
            continue
        route = labelvalues[0] if labelvalues else ""
        routes[route] = {
            "count": count,
            "mean_ms": round(data["sum"] / count, 3),
            "p50_ms": round(histogram_quantile(bounds, data["counts"], 0.5), 3),
            "p99_ms": round(histogram_quantile(bounds, data["counts"], 0.99), 3),
            "bucket_counts": list(data["counts"]),
        }
    return {"buckets_ms": bounds, "routes": routes}


def _tick_floor_ms(rounds: List[List[float]]) -> float:
    """Sum of per-tick minimum latencies across several replay rounds.

    Per-tick minima filter scheduler jitter tick by tick instead of
    requiring one fully clean replay, so the sum estimates the noise-free
    cost of the whole trace far more tightly than a single wall time.
    """
    return sum(min(column) for column in zip(*rounds))


def run_obs_scenario(
    trace: ServiceTrace, trace_out: Optional[str] = None, rounds: int = 4
) -> Dict[str, object]:
    """Measure full-rate tracing overhead and collect per-route latency.

    Replays the main trace inline untraced and at trace sample rate 1.0,
    interleaved over ``rounds`` rounds, alternating which arm goes first
    each round so slow clock drift (CPU frequency scaling) cancels
    instead of consistently penalising one arm.  A single replay is fast
    enough that machine noise would dominate any one measurement, so the
    recorded ``overhead_ratio`` — traced throughput over untraced
    throughput, 1.0 meaning free, gated by ``--min-obs-overhead-ratio``
    — is the better of two floor estimators: best whole-replay wall time
    per arm, and the summed per-tick minima (:func:`_tick_floor_ms`).  A
    real regression depresses both floors together; uncorrelated noise
    rarely does.  Answers must stay bit-identical and the emitted span
    stream must validate — no orphan parents, no duplicate span ids.
    The trace JSONL is kept at ``trace_out`` when given, so CI can run
    ``repro trace --validate`` on the same artifact.
    """
    cleanup = trace_out is None
    if trace_out is None:
        handle, path = tempfile.mkstemp(prefix="repro-obs-", suffix=".jsonl")
        os.close(handle)
    else:
        path = trace_out
    try:
        plain_seconds = math.inf
        traced_seconds = math.inf
        plain_ticks: List[List[float]] = []
        traced_ticks: List[List[float]] = []
        plain_answers: Optional[List] = None
        stats: Dict = {}
        traced_answers: Optional[List] = None

        def run_plain() -> None:
            nonlocal plain_seconds, plain_answers
            seconds, answers, _stats = replay_service(trace, 0)
            plain_seconds = min(plain_seconds, seconds)
            plain_ticks.append(_stats["tick_latencies_ms"])
            if plain_answers is None:
                plain_answers = answers

        def run_traced() -> None:
            nonlocal traced_seconds, traced_answers, stats
            # Truncate between rounds so the validated artifact holds
            # exactly one replay's spans.
            open(path, "w").close()
            seconds, answers, stats = replay_service(
                trace, 0,
                trace_sample_rate=1.0, trace_path=path, collect_metrics=True,
            )
            traced_seconds = min(traced_seconds, seconds)
            traced_ticks.append(stats["tick_latencies_ms"])
            traced_answers = answers

        for i in range(max(2, rounds)):
            first, second = (run_plain, run_traced) if i % 2 == 0 else (
                run_traced, run_plain
            )
            first()
            second()
        if traced_answers != plain_answers:
            raise AssertionError(
                "traced replay answers diverged from the untraced run"
            )
        records = read_trace(path)
        problems = validate_trace(records)
        if problems:
            raise AssertionError(
                f"emitted trace failed validation: {problems[:3]}"
            )
        snapshot = merge_snapshots(
            [stats["metrics_snapshot"], _route_mix_snapshot()]
        )
    finally:
        if cleanup:
            os.remove(path)
    roots = sum(1 for record in records if record["parent"] is None)
    wall_ratio = plain_seconds / traced_seconds
    floor_ratio = _tick_floor_ms(plain_ticks) / _tick_floor_ms(traced_ticks)
    return {
        "overhead": {
            "sample_rate": 1.0,
            "requests": trace.num_requests(),
            "rounds": max(2, rounds),
            "untraced_seconds": round(plain_seconds, 4),
            "traced_seconds": round(traced_seconds, 4),
            "wall_ratio": round(wall_ratio, 4),
            "tick_floor_ratio": round(floor_ratio, 4),
            "overhead_ratio": round(max(wall_ratio, floor_ratio), 4),
            "bit_identical": True,
        },
        "trace": {
            "spans": len(records),
            "roots": roots,
            "span_names": sorted({record["name"] for record in records}),
            "valid": True,
        },
        "route_latency_ms": _route_latency_section(snapshot),
    }


def run_service_benchmarks(
    smoke: bool = False,
    worker_counts: Optional[Sequence[int]] = None,
    faults: bool = False,
    restart: bool = False,
    trace_out: Optional[str] = None,
) -> Dict[str, object]:
    """Run the full suite and return the report dictionary."""
    if worker_counts is None:
        worker_counts = WORKER_COUNTS
    if smoke:
        num_instances, pool_size, per_instance, tick_size, skew = 2, 10, 150, 12, 1.1
        size_factor = 0.75
    else:
        num_instances, pool_size, per_instance, tick_size, skew = 4, 16, 250, 16, 1.1
        size_factor = 1.0
    trace = build_service_trace(
        num_instances, pool_size, per_instance, tick_size, skew,
        size_factor=size_factor,
    )

    baseline_seconds, baseline_answers = replay_solve_many(trace)
    num_requests = trace.num_requests()
    modes: Dict[str, Dict[str, object]] = {
        "solve_many_single_process": {
            "seconds": round(baseline_seconds, 4),
            "requests_per_sec": round(num_requests / baseline_seconds, 1),
        }
    }

    service_stats: Dict[int, Dict] = {}
    speedups: Dict[int, float] = {}
    for workers in worker_counts:
        elapsed, answers, stats = replay_service(trace, workers)
        if answers != baseline_answers:
            raise AssertionError(
                f"service answers at {workers} worker(s) are not bit-identical "
                "to the single-process baseline"
            )
        latencies = stats.pop("tick_latencies_ms")
        speedups[workers] = baseline_seconds / elapsed
        service_stats[workers] = stats
        modes[f"service_{workers}_workers"] = {
            "seconds": round(elapsed, 4),
            "requests_per_sec": round(num_requests / elapsed, 1),
            "speedup_vs_solve_many": round(speedups[workers], 2),
            "p50_ms": round(_percentile(latencies, 50), 2),
            "p99_ms": round(_percentile(latencies, 99), 2),
            **{k: (round(v, 4) if isinstance(v, float) else v) for k, v in stats.items()},
        }

    scaling = measure_throughput_vs_workers(smoke, worker_counts)
    approx = check_approx_reproducibility(worker_counts)
    observability = run_obs_scenario(trace, trace_out=trace_out, rounds=8)
    max_workers = max(worker_counts)
    recovery: Optional[Dict[str, object]] = None
    if faults:
        chaos_workers = max(2, max_workers)
        fault_free = (
            modes[f"service_{chaos_workers}_workers"]["seconds"]
            if chaos_workers in worker_counts
            else replay_service(trace, chaos_workers)[0]
        )
        recovery = run_chaos_scenario(
            trace, chaos_workers, float(fault_free), baseline_answers
        )
        recovery["degraded"] = check_degraded_accuracy()
    restart_recovery: Optional[Dict[str, object]] = None
    if restart:
        restart_recovery = run_restart_scenario(trace, baseline_answers)
    report: Dict[str, object] = {
        "benchmark": "service",
        "config": {
            "seed": BENCH_SEED,
            "smoke": smoke,
            "num_instances": num_instances,
            "distinct_queries": trace.distinct,
            "requests": num_requests,
            "tick_size": tick_size,
            "zipf_skew": skew,
            "updates": len(trace.updates),
            "worker_counts": list(worker_counts),
            "cpus": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "version": __version__,
        },
        "modes": modes,
        "throughput_vs_workers": scaling,
        "approx_reproducibility": approx,
        "observability": observability,
        "summary": {
            "speedup_at_max_workers": round(speedups[max_workers], 2),
            "max_workers": max_workers,
            "worker_scaling_at_max": scaling["scaling_at_max_workers"],
            "scaling_gate_enforceable": scaling["scaling_gate_enforceable"],
            "p99_ms_at_max_workers": scaling["workers"][str(max_workers)]["p99_ms"],
            "dedupe_hit_rate": round(
                service_stats[max_workers]["dedupe_hit_rate"], 4
            ),
            "result_cache_hits": service_stats[max_workers]["result_cache_hits"],
            "steals_at_max_workers": service_stats[max_workers]["steals"],
            "exact_bit_identical": True,
            "approx_seed_reproducible": True,
            "contract": (
                "service answers bit-identical to single-process solve_many; "
                "pinned-seed approx estimates identical at every worker count"
            ),
        },
    }
    if recovery is not None:
        report["service_recovery"] = recovery
    if restart_recovery is not None:
        report["restart_recovery"] = restart_recovery
    return report


def check_service_thresholds(
    report: Dict[str, object],
    min_speedup: float = 0.0,
    max_recovery_ms: float = 0.0,
    min_worker_scaling: float = 0.0,
    max_p99_ms: float = 0.0,
    min_obs_overhead_ratio: float = 0.0,
) -> None:
    """Raise AssertionError when a serving or reliability metric regresses.

    The parallel-throughput gates — ``min_speedup`` (service at max
    workers over single-process ``solve_many``) and ``min_worker_scaling``
    (the balanced-trace ratio of the largest worker count over one worker)
    — are enforced only where the recording machine has at least as many
    CPU cores as workers (``scaling_gate_enforceable``): a box with fewer
    cores than workers physically cannot show parallel speedup, so there
    the numbers are recorded, the machine-independent invariants
    (bit-identical answers, pinned-seed reproducibility, no idle workers,
    the ``max_p99_ms`` ceiling) are still enforced, and the ratio gates
    are skipped rather than failed dishonestly.
    """
    summary = report["summary"]
    if not summary["exact_bit_identical"]:
        raise AssertionError("service exact answers diverged from the baseline")
    if not summary["approx_seed_reproducible"]:
        raise AssertionError("pinned-seed approx estimates were not reproducible")
    speedup = summary["speedup_at_max_workers"]
    if speedup < min_speedup and summary.get("scaling_gate_enforceable", True):
        raise AssertionError(
            f"service speedup {speedup}x at {summary['max_workers']} workers is "
            f"below the required {min_speedup}x"
        )
    scaling = report.get("throughput_vs_workers")
    if scaling is None:
        if min_worker_scaling > 0 or max_p99_ms > 0:
            raise AssertionError(
                "--min-worker-scaling/--max-p99-ms require the "
                "throughput_vs_workers section"
            )
    else:
        if not scaling["exact_bit_identical"]:
            raise AssertionError(
                "balanced-trace answers diverged across worker counts"
            )
        for count, entry in scaling["workers"].items():
            if not entry["no_idle_workers"]:
                raise AssertionError(
                    f"a worker owns no instances at {count} worker(s) — the "
                    "shard assignment left capacity idle"
                )
        if max_p99_ms > 0:
            worst = max(
                entry["p99_ms"] for entry in scaling["workers"].values()
            )
            if worst > max_p99_ms:
                raise AssertionError(
                    f"p99 tick latency {worst} ms exceeds the required "
                    f"{max_p99_ms} ms ceiling"
                )
        if min_worker_scaling > 0 and scaling["scaling_gate_enforceable"]:
            ratio = scaling["scaling_at_max_workers"]
            if ratio < min_worker_scaling:
                raise AssertionError(
                    f"throughput at {summary['max_workers']} workers is only "
                    f"{ratio}x the 1-worker run, below the required "
                    f"{min_worker_scaling}x"
                )
    observability = report.get("observability")
    if observability is not None:
        if not observability["trace"]["valid"]:
            raise AssertionError("the emitted trace failed validation")
        if not observability["overhead"]["bit_identical"]:
            raise AssertionError("traced answers diverged from untraced")
        if min_obs_overhead_ratio > 0:
            ratio = observability["overhead"]["overhead_ratio"]
            if ratio < min_obs_overhead_ratio:
                raise AssertionError(
                    f"tracing at sample rate 1.0 kept only {ratio}x of the "
                    f"untraced throughput, below the required "
                    f"{min_obs_overhead_ratio}x"
                )
    elif min_obs_overhead_ratio > 0:
        raise AssertionError(
            "--min-obs-overhead-ratio requires the observability section"
        )
    recovery = report.get("service_recovery")
    if recovery is not None:
        if recovery["lost_requests"] != 0:
            raise AssertionError(
                f"chaos run lost {recovery['lost_requests']} request(s)"
            )
        if not recovery["exact_bit_identical"]:
            raise AssertionError("chaos-run answers diverged from the baseline")
        if not recovery["degraded"]["within_epsilon"]:
            raise AssertionError("degraded answer violated its epsilon bound")
        if max_recovery_ms > 0 and recovery["recovery_ms"] > max_recovery_ms:
            raise AssertionError(
                f"worker recovery took {recovery['recovery_ms']} ms, above the "
                f"required {max_recovery_ms} ms"
            )
    elif max_recovery_ms > 0:
        raise AssertionError(
            "--max-recovery-ms requires the chaos scenario (run with --faults)"
        )
    restart = report.get("restart_recovery")
    if restart is not None:
        if restart["warm_compiles"] != 0:
            raise AssertionError(
                f"warm restart recompiled {restart['warm_compiles']} plan(s)"
            )
        if not restart["warm_bit_identical"]:
            raise AssertionError("warm-restart answers diverged from the baseline")
        for case in restart["disk_faults"]:
            if not case["detected"]:
                raise AssertionError(
                    f"injected {case['kind']} fault went undetected"
                )
            if not case["recovered"]:
                raise AssertionError(
                    f"recovery from the injected {case['kind']} fault failed"
                )


#: Serialise the report to disk — same format as the other benchmarks.
write_service_report = write_report


def format_service_report(report: Dict[str, object]) -> str:
    """A terse human-readable rendering of the report."""
    config = report["config"]
    lines = [
        f"service benchmark (seed {config['seed']}): {config['requests']} requests, "
        f"{config['distinct_queries']} distinct queries, Zipf skew {config['zipf_skew']}, "
        f"{config['num_instances']} instances, {config['updates']} mid-stream updates"
    ]
    for name, numbers in report["modes"].items():
        line = f"  {name:<28} {numbers['requests_per_sec']:>10.1f} req/sec"
        if "speedup_vs_solve_many" in numbers:
            line += f"   ({numbers['speedup_vs_solve_many']}x vs solve_many)"
        lines.append(line)
    summary = report["summary"]
    lines.append(
        f"  dedupe hit rate {summary['dedupe_hit_rate']:.0%}, "
        f"{summary['result_cache_hits']} result-cache hits at "
        f"{summary['max_workers']} workers"
    )
    scaling = report.get("throughput_vs_workers")
    if scaling is not None:
        gate = (
            "gate enforceable"
            if scaling["scaling_gate_enforceable"]
            else f"gate skipped: {scaling['cpus']} cpu(s)"
        )
        lines.append(
            f"  throughput vs workers (balanced trace, "
            f"{scaling['trace']['num_instances']} instances; {gate}):"
        )
        for count, entry in sorted(
            scaling["workers"].items(), key=lambda item: int(item[0])
        ):
            lines.append(
                f"    {count} worker(s): {entry['requests_per_sec']:>8.1f} req/sec "
                f"({entry['scaling_vs_1_worker']}x vs 1), "
                f"p50 {entry['p50_ms']} ms, p99 {entry['p99_ms']} ms, "
                f"{entry['steals']} steal(s)"
            )
    approx = report["approx_reproducibility"]
    lines.append(
        f"  pinned-seed approx estimate {approx['estimate']:.6f} identical across "
        f"worker counts {approx['worker_counts']}"
    )
    observability = report.get("observability")
    if observability is not None:
        overhead = observability["overhead"]
        lines.append(
            f"  tracing at rate {overhead['sample_rate']}: "
            f"{overhead['overhead_ratio']}x of untraced throughput, "
            f"{observability['trace']['spans']} span(s) emitted and validated"
        )
        routes = observability["route_latency_ms"]["routes"]
        for route in sorted(routes):
            entry = routes[route]
            lines.append(
                f"    route {route:<12} {entry['count']:>5} request(s), "
                f"p50 {entry['p50_ms']} ms, p99 {entry['p99_ms']} ms"
            )
    lines.append(
        f"  speedup at {summary['max_workers']} workers: "
        f"{summary['speedup_at_max_workers']}x (exact answers bit-identical)"
    )
    recovery = report.get("service_recovery")
    if recovery is not None:
        fault = recovery["fault"]
        lines.append(
            f"  chaos: {fault['kind']} worker {fault['worker']} after "
            f"{fault['after_messages']} messages -> {recovery['restarts']} "
            f"restart(s) in {recovery['recovery_ms']} ms, "
            f"{recovery['retries']} retried dispatch(es), "
            f"{recovery['lost_requests']} lost, "
            f"{recovery['retry_overhead_ratio']}x wall-clock overhead"
        )
        degraded = recovery["degraded"]
        lines.append(
            f"  degraded answer at deadline {degraded['deadline_ms']} ms: "
            f"relative error {degraded['relative_error']:.4f} <= "
            f"epsilon {degraded['epsilon']}"
        )
    restart = report.get("restart_recovery")
    if restart is not None:
        lines.append(
            f"  restart: cold {restart['cold_seconds']}s -> warm "
            f"{restart['warm_seconds']}s ({restart['warm_speedup']}x), "
            f"{restart['warm_loads']} plan(s) loaded from the store, "
            f"{restart['warm_compiles']} recompiled (bit-identical answers)"
        )
        fault_kinds = ", ".join(case["kind"] for case in restart["disk_faults"])
        lines.append(
            f"  disk faults [{fault_kinds}]: "
            f"detected={restart['all_faults_detected']}, "
            f"recovered={restart['all_faults_recovered']}"
        )
    return "\n".join(lines)
