"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate which
subsystem rejected the input and why.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for malformed graphs (unknown vertices, duplicate edges, ...)."""


class ClassConstraintError(ReproError):
    """Raised when a graph does not belong to the graph class an algorithm requires.

    The tractable algorithms of the paper only apply to restricted graph
    classes (1WP, 2WP, DWT, PT, ...).  When a caller invokes a specialised
    solver on an input outside its class, this error is raised instead of
    silently returning a wrong probability.
    """


class ProbabilityError(ReproError):
    """Raised for invalid probability annotations (outside ``[0, 1]``)."""


class LineageError(ReproError):
    """Raised for malformed lineage formulas or circuits."""


class PlanError(ReproError):
    """Raised for invalid uses of compiled query plans.

    Compiled plans (:mod:`repro.plan`) separate the probability-independent
    structure of a query evaluation from its arithmetic.  Operations that a
    particular plan kind cannot honour — e.g. incremental updates on a
    brute-force fallback plan — raise this error instead of silently
    recomputing from scratch.
    """


class AutomatonError(ReproError):
    """Raised for malformed tree automata or trees that an automaton cannot run on."""


class ServiceError(ReproError):
    """Raised for failures of the parallel serving layer (:mod:`repro.service`).

    Covers protocol misuse (unknown instance ids, submitting after
    ``close()``), request failures reported back by a worker process, and
    worker-pool breakdowns (a worker dying or timing out).
    """


class IntractableFallbackWarning(UserWarning):
    """Warning emitted when the dispatcher falls back to exponential brute force.

    The combined complexity classification of the paper shows that some
    query/instance combinations are #P-hard; for those the library can only
    offer exponential-time possible-world enumeration.  The dispatcher emits
    this warning so that the caller knows the computation may blow up.
    """
