"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate which
subsystem rejected the input and why.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for malformed graphs (unknown vertices, duplicate edges, ...)."""


class QueryParseError(ReproError):
    """Raised for malformed query-language strings (:mod:`repro.query`).

    Carries the offending source text and the character offset of the
    failure, and renders them as a caret diagnostic::

        R(x, y), S(y z)
                     ^
        expected ',' between the arguments of 'S'

    ``message`` is the bare description; ``str(error)`` includes the source
    excerpt.  ``position`` is ``None`` for errors without a single location
    (e.g. a vertex name that cannot be written in the query language).
    """

    def __init__(self, message: str, text: str = "", position: "int | None" = None):
        super().__init__(message)
        self.message = message
        self.text = text
        self.position = position

    def __str__(self) -> str:
        if not self.text or self.position is None:
            return self.message
        # Locate the offending line and column for the caret rendering.
        prefix = self.text[: self.position]
        line_start = prefix.rfind("\n") + 1
        line_end = self.text.find("\n", self.position)
        if line_end < 0:
            line_end = len(self.text)
        column = self.position - line_start
        line = self.text[line_start:line_end]
        return f"{self.message}\n  {line}\n  {' ' * column}^"


class ClassConstraintError(ReproError):
    """Raised when a graph does not belong to the graph class an algorithm requires.

    The tractable algorithms of the paper only apply to restricted graph
    classes (1WP, 2WP, DWT, PT, ...).  When a caller invokes a specialised
    solver on an input outside its class, this error is raised instead of
    silently returning a wrong probability.
    """


class ProbabilityError(ReproError):
    """Raised for invalid probability annotations (outside ``[0, 1]``)."""


class LineageError(ReproError):
    """Raised for malformed lineage formulas or circuits."""


class PlanError(ReproError):
    """Raised for invalid uses of compiled query plans.

    Compiled plans (:mod:`repro.plan`) separate the probability-independent
    structure of a query evaluation from its arithmetic.  Operations that a
    particular plan kind cannot honour — e.g. incremental updates on a
    brute-force fallback plan — raise this error instead of silently
    recomputing from scratch.
    """


class AutomatonError(ReproError):
    """Raised for malformed tree automata or trees that an automaton cannot run on."""


class PersistenceError(ReproError):
    """Raised for misuse of the durable-state layer (:mod:`repro.persist`).

    Covers invalid configuration (an unknown fsync policy, a state directory
    that is not a directory) and protocol misuse of the write-ahead log or
    the plan store.  Note that *corruption on disk* deliberately does NOT
    raise this error: recovery truncates torn write-ahead-log tails and
    quarantines corrupt plan-store entries, reporting both through recovery
    counters, because a restart after a crash must come back up rather than
    crash again on the damage the first crash left behind.
    """


class ServiceError(ReproError):
    """Raised for failures of the parallel serving layer (:mod:`repro.service`).

    Covers protocol misuse (unknown instance ids, submitting after
    ``close()``), request failures reported back by a worker process, and
    worker-pool breakdowns (a worker dying or timing out).
    """


class ServiceUnavailableError(ServiceError):
    """Raised when a request exhausts its retry budget on the serving layer.

    The supervision loop of :class:`~repro.service.QueryService` restarts
    dead or unresponsive workers and retries the in-flight requests on the
    fresh incarnation (with capped exponential backoff).  A request that
    still cannot be answered after ``max_retries`` re-dispatches fails with
    this error instead of a silent hang.

    ``notes`` carries the attempt provenance — one line per failed attempt,
    naming the worker, the attempt number and the failure reason — so an
    operator can reconstruct what the supervisor saw.
    """

    def __init__(self, message: str, notes: "tuple | list" = ()):
        super().__init__(message)
        self.message = message
        self.notes = tuple(notes)

    def __str__(self) -> str:
        if not self.notes:
            return self.message
        return self.message + "\n  " + "\n  ".join(self.notes)


class DeadlineExceededError(ServiceError):
    """Raised when a request misses its deadline under ``on_deadline="error"``.

    Requests may carry a ``deadline_ms`` budget and an ``on_deadline``
    policy (see :class:`~repro.service.ServiceRequest`).  Under the default
    ``"error"`` policy a missed deadline raises this error; the
    ``"degrade"`` policy re-answers through the approximate route instead,
    and ``"partial"`` surfaces a typed timeout result without raising.
    """


class IntractableFallbackWarning(UserWarning):
    """Warning emitted when the dispatcher falls back to exponential brute force.

    The combined complexity classification of the paper shows that some
    query/instance combinations are #P-hard; for those the library can only
    offer exponential-time possible-world enumeration.  The dispatcher emits
    this warning so that the caller knows the computation may blow up.
    """
