"""A crash-safe write-ahead log of serving-state changes.

The coordinator of :class:`~repro.service.QueryService` keeps its shard
state — instance registrations and probability updates — in an in-memory
journal.  :class:`WriteAheadLog` makes that journal durable: every
acknowledged state change is appended as one framed record, and a restarted
coordinator replays the log to reconstruct the journal exactly.

On-disk format
--------------

A log is a directory of numbered *segments* (``segment-000001.wal``,
``segment-000002.wal``, ...), each an append-only file:

* an 8-byte segment header: the magic ``b"RWAL"``, a little-endian
  ``uint16`` format version, and two reserved zero bytes;
* a sequence of frames, each ``uint32`` payload length + ``uint32``
  CRC32 of the payload + the payload (a pickled record tuple).

Records are ``("register", instance_id, snapshot_bytes)`` and
``("update", instance_id, endpoints, probability)``; replay order within
the log is append order.

Recovery semantics
------------------

Opening a log scans every segment and *repairs before replaying*:

* a segment whose header is missing or malformed is moved to the log's
  ``quarantine/`` directory (never deleted, never replayed);
* an incomplete frame at the end of a segment — a torn write from a crash
  mid-append — is truncated away; the lost record was never acknowledged
  durable, so truncation restores the last consistent prefix;
* a frame whose CRC32 does not match its payload (a flipped bit) is
  detected; the segment is truncated at the bad frame and the damaged
  tail bytes are preserved in ``quarantine/`` for forensics.  Replay never
  feeds corrupt bytes to ``pickle``.

Every repair is counted in a :class:`WalRecovery` report, so callers (and
the ``repro store verify`` CLI) can distinguish a clean start from a
recovered one.  :func:`scan_wal` runs the same detection read-only,
without repairing anything.

Durability knob
---------------

``fsync="always"`` fsyncs after every append (each acknowledged record
survives an OS crash); ``"batch"`` (the default) flushes to the OS per
append and fsyncs on :meth:`WriteAheadLog.sync` and :meth:`close` (a
*process* crash loses nothing, an OS crash loses at most the records since
the last sync); ``"never"`` leaves flushing entirely to the OS.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import PersistenceError
from repro.obs.trace import current_tracer

#: Segment header: magic + format version + two reserved bytes.
WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
_HEADER = WAL_MAGIC + struct.pack("<HH", WAL_VERSION, 0)
_FRAME = struct.Struct("<II")

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "batch", "never")

#: Hard ceiling on a single frame's payload (a corrupt length field must
#: never trigger a multi-gigabyte read).
_MAX_PAYLOAD = 1 << 30


@dataclass
class WalRecovery:
    """What opening (or scanning) a write-ahead log found and repaired.

    A clean start has every counter at zero except ``segments_scanned`` and
    ``records_replayed``.  ``corruption_detected`` summarises whether any
    checksum, framing or header damage was seen.
    """

    segments_scanned: int = 0
    records_replayed: int = 0
    #: Bytes removed from segment tails (torn writes / truncated tails).
    torn_tail_bytes: int = 0
    #: Frames whose CRC32 (or pickled payload) failed validation.
    corrupt_frames: int = 0
    #: Whole segments quarantined for a missing or malformed header.
    quarantined_segments: int = 0
    #: Paths of quarantined files (segments and preserved damaged tails).
    quarantined_files: List[str] = field(default_factory=list)

    @property
    def corruption_detected(self) -> bool:
        """True when any repair or quarantine happened."""
        return bool(
            self.torn_tail_bytes
            or self.corrupt_frames
            or self.quarantined_segments
        )

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-friendly rendering (used by benchmark reports)."""
        return {
            "segments_scanned": self.segments_scanned,
            "records_replayed": self.records_replayed,
            "torn_tail_bytes": self.torn_tail_bytes,
            "corrupt_frames": self.corrupt_frames,
            "quarantined_segments": self.quarantined_segments,
            "corruption_detected": self.corruption_detected,
        }


def _segment_name(index: int) -> str:
    return f"segment-{index:06d}.wal"


def _segment_index(name: str) -> Optional[int]:
    if not (name.startswith("segment-") and name.endswith(".wal")):
        return None
    digits = name[len("segment-") : -len(".wal")]
    return int(digits) if digits.isdigit() else None


def _parse_segment(
    path: str, recovery: WalRecovery, repair: bool, quarantine_dir: Optional[str]
) -> Tuple[List[Any], bool]:
    """Read one segment's valid record prefix; optionally repair in place.

    Returns ``(records, header_ok)``.  With ``repair=True`` a damaged tail
    is truncated (the corrupt remainder preserved under ``quarantine_dir``)
    and a bad-header segment is moved there whole; with ``repair=False``
    the damage is only counted.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(_HEADER) or data[: len(_HEADER)] != _HEADER:
        recovery.quarantined_segments += 1
        if repair and quarantine_dir is not None:
            os.makedirs(quarantine_dir, exist_ok=True)
            target = os.path.join(quarantine_dir, os.path.basename(path))
            os.replace(path, target)
            recovery.quarantined_files.append(target)
        return [], False
    records: List[Any] = []
    offset = len(_HEADER)
    valid_end = offset
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            recovery.torn_tail_bytes += len(data) - offset
            break
        length, checksum = _FRAME.unpack_from(data, offset)
        payload_start = offset + _FRAME.size
        payload_end = payload_start + length
        if length > _MAX_PAYLOAD or payload_end > len(data):
            # A short payload at EOF is a torn write; an absurd length is a
            # corrupt frame header.  Both invalidate everything after offset.
            recovery.torn_tail_bytes += len(data) - offset
            break
        payload = data[payload_start:payload_end]
        if zlib.crc32(payload) != checksum:
            recovery.corrupt_frames += 1
            break
        try:
            record = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - a CRC collision over garbage
            # must be handled like any other corrupt frame, not crash replay.
            recovery.corrupt_frames += 1
            break
        records.append(record)
        offset = payload_end
        valid_end = offset
    if valid_end < len(data) and repair:
        if quarantine_dir is not None:
            os.makedirs(quarantine_dir, exist_ok=True)
            target = os.path.join(
                quarantine_dir, os.path.basename(path) + f".tail-{valid_end}"
            )
            with open(target, "wb") as handle:
                handle.write(data[valid_end:])
            recovery.quarantined_files.append(target)
        with open(path, "r+b") as handle:
            handle.truncate(valid_end)
    return records, True


def scan_wal(directory: str) -> WalRecovery:
    """Detect (but do not repair) damage in a write-ahead log directory.

    The read-only twin of the recovery that :class:`WriteAheadLog` runs on
    open: same framing and checksum validation, same counters, no
    truncation and no quarantining — the tool behind ``repro store verify``.
    """
    recovery = WalRecovery()
    if not os.path.isdir(directory):
        return recovery
    for name in sorted(os.listdir(directory)):
        if _segment_index(name) is None:
            continue
        recovery.segments_scanned += 1
        records, _ = _parse_segment(
            os.path.join(directory, name), recovery, repair=False, quarantine_dir=None
        )
        recovery.records_replayed += len(records)
    return recovery


class WriteAheadLog:
    """An append-only, checksummed, segmented log of serving-state records.

    Opening the log recovers it first (see the module docstring); the
    result is exposed as the :attr:`recovery` report.  ``fault_injector``
    is the chaos hook: a
    :class:`~repro.service.faults.DiskFaultInjector` threaded through
    every append, used by tests and benchmarks to prove the recovery
    contract under seeded corruption.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        segment_max_bytes: int = 4 << 20,
        fault_injector=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise PersistenceError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if segment_max_bytes <= len(_HEADER):
            raise PersistenceError("segment_max_bytes is too small for the header")
        self.directory = directory
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self.fault_injector = fault_injector
        os.makedirs(directory, exist_ok=True)
        #: Number of records appended through this handle (not replayed ones).
        self.appended = 0
        self._closed = False
        self.recovery = WalRecovery()
        self._segments: List[int] = []
        for name in sorted(os.listdir(directory)):
            index = _segment_index(name)
            if index is not None:
                self._segments.append(index)
        self._segments.sort()
        # Repair pass: truncate torn tails, quarantine bad-header segments.
        surviving: List[int] = []
        for index in list(self._segments):
            self.recovery.segments_scanned += 1
            records, header_ok = _parse_segment(
                self._segment_path(index),
                self.recovery,
                repair=True,
                quarantine_dir=self._quarantine_dir(),
            )
            self.recovery.records_replayed += len(records)
            if header_ok:
                surviving.append(index)
        self._segments = surviving
        if not self._segments:
            self._segments = [1]
            self._write_fresh_segment(1, [])
        self._handle = open(self._segment_path(self._segments[-1]), "ab")

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, _segment_name(index))

    def _quarantine_dir(self) -> str:
        return os.path.join(self.directory, "quarantine")

    @property
    def segments(self) -> List[str]:
        """The live segment file paths, oldest first."""
        return [self._segment_path(index) for index in self._segments]

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _frame(self, record: Any) -> bytes:
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    def append(self, record: Any) -> None:
        """Durably append one record (honouring the fsync policy).

        Raises ``OSError`` when the underlying write fails (disk full —
        injected or real); the caller decides whether to degrade or stop.
        """
        self._check_open()
        with current_tracer().span("wal.append") as span:
            frame = self._frame(record)
            if span:
                span.attrs["bytes"] = len(frame)
                span.attrs["fsync"] = self.fsync
            if self.fault_injector is not None:
                frame = self.fault_injector.mutate_write(frame)
            self._handle.write(frame)
            if self.fsync == "always":
                self._handle.flush()
                os.fsync(self._handle.fileno())
            elif self.fsync == "batch":
                self._handle.flush()
            if self.fault_injector is not None:
                truncation = self.fault_injector.take_tail_truncation()
                if truncation:
                    self._handle.flush()
                    size = os.fstat(self._handle.fileno()).st_size
                    os.ftruncate(
                        self._handle.fileno(), max(len(_HEADER), size - truncation)
                    )
                    self._handle.seek(0, os.SEEK_END)
            self.appended += 1
            if self._handle.tell() >= self.segment_max_bytes:
                self.rotate()

    def sync(self) -> None:
        """Flush and fsync the active segment (a batch-policy barrier)."""
        self._check_open()
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def rotate(self) -> None:
        """Atomically start a fresh segment; subsequent appends go there."""
        self._check_open()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        index = self._segments[-1] + 1
        self._write_fresh_segment(index, [])
        self._segments.append(index)
        self._handle = open(self._segment_path(index), "ab")

    def _write_fresh_segment(self, index: int, records: Iterable[Any]) -> None:
        """Write header + records into ``segment-index`` via temp + rename."""
        path = self._segment_path(index)
        temporary = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temporary, "wb") as handle:
                handle.write(_HEADER)
                for record in records:
                    handle.write(self._frame(record))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, path)
        except BaseException:
            if os.path.exists(temporary):
                os.remove(temporary)
            raise

    def compact(self, records: Iterable[Any]) -> None:
        """Replace the whole log with one fresh segment holding ``records``.

        The caller passes the *folded* state (each instance's latest
        snapshot followed by its last-write-wins updates); the new segment
        is written atomically (temp file + rename + fsync) under the next
        segment number before the old segments are deleted, so a crash at
        any point leaves either the old log or the new one — never neither.
        """
        self._check_open()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        old = list(self._segments)
        index = old[-1] + 1
        self._write_fresh_segment(index, records)
        self._segments = [index]
        for stale in old:
            try:
                os.remove(self._segment_path(stale))
            except OSError:  # pragma: no cover - already gone
                pass
        self._handle = open(self._segment_path(index), "ab")
        self.appended = 0

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def replay(self) -> List[Any]:
        """Every record in the (already repaired) log, in append order."""
        self._check_open()
        self._handle.flush()
        records: List[Any] = []
        scratch = WalRecovery()
        for index in self._segments:
            segment_records, _ = _parse_segment(
                self._segment_path(index), scratch, repair=False, quarantine_dir=None
            )
            records.extend(segment_records)
        return records

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise PersistenceError("the write-ahead log has been closed")

    def close(self) -> None:
        """Flush, fsync and close the active segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.flush()
            if self.fsync != "never":
                os.fsync(self._handle.fileno())
        finally:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        """Context-manager entry; returns the log itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the log."""
        self.close()
