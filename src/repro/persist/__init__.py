"""Durable state for the serving layer: write-ahead log + plan store.

The coordinator state of :class:`~repro.service.QueryService` (instance
registrations and probability updates) and the compiled plans of
:class:`~repro.core.solver.PHomSolver` are both expensive to lose:
without durability, a process crash or redeploy cold-starts the service
and recompiles the entire hot set.  This package makes restart a
non-event:

* :class:`~repro.persist.wal.WriteAheadLog` — an append-only, CRC32-framed,
  segmented log of state changes with crash recovery (torn tails
  truncated, damaged segments quarantined) and a compaction that folds
  last-write-wins updates into a snapshot;
* :class:`~repro.persist.store.PlanStore` — a content-addressed,
  checksummed, atomically written store of compiled plans, with
  quarantine-don't-crash handling of corrupt entries;
* :class:`~repro.persist.store.PersistentPlanCache` — the solver-side
  read-through/write-through tier that plugs the store into the existing
  :class:`~repro.plan.PlanCache` seam.

``QueryService(state_dir=...)`` wires all three together, and the
recovery contract is proven — not assumed — by the seeded disk faults of
:class:`~repro.service.faults.DiskFaultInjector` (torn-write,
truncate-tail, bit-flip, enospc) threaded through every persistence
write.  See ``docs/persistence.md`` for the formats and semantics.
"""

from repro.persist.store import (
    PersistentPlanCache,
    PlanStore,
    instance_digest,
    plan_store_key,
)
from repro.persist.wal import FSYNC_POLICIES, WalRecovery, WriteAheadLog, scan_wal

__all__ = [
    "FSYNC_POLICIES",
    "PersistentPlanCache",
    "PlanStore",
    "WalRecovery",
    "WriteAheadLog",
    "instance_digest",
    "plan_store_key",
    "scan_wal",
]
