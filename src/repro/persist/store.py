"""A checksummed, content-addressed store of compiled query plans.

Compiling a plan is the expensive, structure-dependent half of query
evaluation; the arithmetic half is cheap.  :class:`PlanStore` persists
compiled plans on disk so a restarted process — or a freshly spawned
serving worker — can load its hot set instead of recompiling it.

Keys and addressing
-------------------

A stored plan is valid for exactly one combination of

* the canonical query key (:func:`repro.plan.canonical_query_key`), which
  already folds away query-isomorphism and core minimization;
* the *structure* of the instance (:func:`instance_digest`: vertices and
  labelled edges, **not** probabilities — plans are probability-independent
  by construction, which is the whole point of compiling them);
* a solver-configuration namespace (the compile-relevant solver knobs),
  because two solvers configured differently may compile different plans
  for the same inputs.

:func:`plan_store_key` hashes the three into one hex digest; the entry
lives at ``<root>/<digest[:2]>/<digest>.plan``.  Entries are immutable:
a put either creates the file (atomically, temp file + ``os.replace``) or
finds it already present.

Entry format and corruption handling
------------------------------------

Each entry is a 12-byte header (magic ``b"RPLN"``, ``uint16`` version,
two reserved bytes, ``uint32`` payload CRC32) followed by the pickled
payload dictionary.  Reads validate magic, version and checksum before
unpickling; a failing entry is *quarantined* — moved into
``<root>/quarantine/`` and counted — never unpickled, and never a crash.
A missing or damaged plan only costs a recompile.

Disk-full and other write errors likewise degrade instead of crashing:
:meth:`PlanStore.put` counts the failure and serving continues without
that entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import zlib
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.exceptions import PersistenceError
from repro.obs.trace import current_tracer
from repro.plan import CompiledPlan, PlanCache
from repro.probability.prob_graph import ProbabilisticGraph

#: Entry header: magic + format version + reserved, then the payload CRC32.
STORE_MAGIC = b"RPLN"
STORE_VERSION = 1
_HEADER = struct.Struct("<4sHHI")


def instance_digest(instance: ProbabilisticGraph) -> str:
    """A hex digest of an instance's *structure* (never its probabilities).

    Two instances with the same vertices and the same labelled edges share
    a digest even when their probability annotations differ, because
    compiled plans separate structure from arithmetic: the structural
    skeleton is reusable across probability tables, and serving re-seeds
    probabilities from the live instance (see
    :meth:`repro.plan.CompiledPlan.rebind`).
    """
    graph = instance.graph
    hasher = hashlib.sha256()
    for vertex in sorted(str(v) for v in graph.vertices):
        hasher.update(b"v\x00" + vertex.encode("utf-8") + b"\x00")
    edges = sorted(
        (str(edge.source), str(edge.target), str(edge.label))
        for edge in graph.edges()
    )
    for source, target, label in edges:
        hasher.update(
            b"e\x00"
            + source.encode("utf-8")
            + b"\x00"
            + target.encode("utf-8")
            + b"\x00"
            + label.encode("utf-8")
            + b"\x00"
        )
    return hasher.hexdigest()


def plan_store_key(query_key: Hashable, structure_digest: str, namespace: str) -> str:
    """The content address of one plan-store entry (a hex digest).

    Combines the canonical query key, the instance structure digest (from
    :func:`instance_digest`) and the solver-configuration namespace, so a
    plan is only ever served back for the exact combination it was
    compiled for.
    """
    hasher = hashlib.sha256()
    hasher.update(repr(query_key).encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(structure_digest.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(namespace.encode("utf-8"))
    return hasher.hexdigest()


class PlanStore:
    """A directory of checksummed compiled-plan entries (see module docs).

    The store holds no open file handles, so it pickles freely — a solver
    configured with a store ships a working copy to every serving worker.
    Counters (``puts``, ``put_errors``, ``hits``, ``misses``, ``corrupt``)
    are per-copy.  ``fault_injector`` is the chaos hook threaded through
    the write path (see
    :class:`~repro.service.faults.DiskFaultInjector`).
    """

    def __init__(self, directory: str, fault_injector=None) -> None:
        if os.path.exists(directory) and not os.path.isdir(directory):
            raise PersistenceError(f"plan store path {directory!r} is not a directory")
        self.directory = directory
        self.fault_injector = fault_injector
        os.makedirs(directory, exist_ok=True)
        self.puts = 0
        self.put_errors = 0
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_path(self, digest: str) -> str:
        """Where the entry for ``digest`` lives (whether or not it exists)."""
        return os.path.join(self.directory, digest[:2], f"{digest}.plan")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.directory, "quarantine")

    def _entry_files(self) -> Iterator[str]:
        for name in sorted(os.listdir(self.directory)):
            shard = os.path.join(self.directory, name)
            if len(name) != 2 or not os.path.isdir(shard):
                continue
            for entry in sorted(os.listdir(shard)):
                if entry.endswith(".plan"):
                    yield os.path.join(shard, entry)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def put(
        self,
        query_key: Hashable,
        structure_digest: str,
        namespace: str,
        plan: CompiledPlan,
        replace: bool = False,
    ) -> Optional[str]:
        """Persist one compiled plan; returns its digest, or ``None``.

        Idempotent (an existing entry is left untouched) and atomic (temp
        file + ``os.replace``).  Pass ``replace=True`` to overwrite an
        existing entry — used when a cached plan gains a compiled tape, so
        the refreshed pickle ships the tape to future loads.  A write
        failure — disk full, injected or real — is counted in
        ``put_errors`` and returns ``None``: losing durability for one
        plan must never take serving down.
        """
        with current_tracer().span("store.put") as span:
            digest = plan_store_key(query_key, structure_digest, namespace)
            path = self.entry_path(digest)
            if os.path.exists(path) and not replace:
                return digest
            payload = pickle.dumps(
                {
                    "query_key": query_key,
                    "instance_digest": structure_digest,
                    "namespace": namespace,
                    "plan": plan,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            data = (
                _HEADER.pack(STORE_MAGIC, STORE_VERSION, 0, zlib.crc32(payload))
                + payload
            )
            if span:
                span.attrs["bytes"] = len(data)
            temporary = f"{path}.tmp.{os.getpid()}"
            try:
                if self.fault_injector is not None:
                    data = self.fault_injector.mutate_write(data)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(temporary, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                    if self.fault_injector is not None:
                        truncation = self.fault_injector.take_tail_truncation()
                        if truncation:
                            size = os.fstat(handle.fileno()).st_size
                            os.ftruncate(handle.fileno(), max(0, size - truncation))
                os.replace(temporary, path)
            except OSError:
                self.put_errors += 1
                if os.path.exists(temporary):
                    try:
                        os.remove(temporary)
                    except OSError:  # pragma: no cover - best-effort cleanup
                        pass
                return None
            self.puts += 1
            return digest

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _read_entry(self, path: str) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """Validate and unpickle one entry file.

        Returns ``(payload, None)`` on success or ``(None, reason)`` when
        the entry fails validation (the reason names the failing layer).
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None, "unreadable"
        if len(data) < _HEADER.size:
            return None, "truncated header"
        magic, version, _, checksum = _HEADER.unpack_from(data)
        if magic != STORE_MAGIC:
            return None, "bad magic"
        if version != STORE_VERSION:
            return None, f"unsupported version {version}"
        payload = data[_HEADER.size :]
        if zlib.crc32(payload) != checksum:
            return None, "checksum mismatch"
        try:
            entry = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - treat any unpickling failure
            # as corruption; the checksum passing makes this near-impossible
            # but quarantining is still the right answer.
            return None, "undecodable payload"
        if not isinstance(entry, dict) or "plan" not in entry:
            return None, "malformed payload"
        return entry, None

    def _quarantine(self, path: str) -> str:
        """Move a corrupt entry aside (never delete evidence); count it."""
        self.corrupt += 1
        quarantine = self._quarantine_dir()
        os.makedirs(quarantine, exist_ok=True)
        target = os.path.join(quarantine, os.path.basename(path))
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(quarantine, f"{os.path.basename(path)}.{suffix}")
        os.replace(path, target)
        return target

    def get(
        self, query_key: Hashable, structure_digest: str, namespace: str
    ) -> Optional[CompiledPlan]:
        """The stored plan for the key combination, or ``None`` (counted).

        A corrupt entry is quarantined and reported as a miss; the caller
        simply recompiles.
        """
        with current_tracer().span("store.get") as span:
            digest = plan_store_key(query_key, structure_digest, namespace)
            path = self.entry_path(digest)
            if not os.path.exists(path):
                self.misses += 1
                if span:
                    span.attrs["hit"] = False
                return None
            entry, failure = self._read_entry(path)
            if entry is None:
                self._quarantine(path)
                self.misses += 1
                if span:
                    span.attrs["hit"] = False
                return None
            if failure is None and entry.get("instance_digest") != structure_digest:
                # A digest collision is cryptographically implausible; treat a
                # mismatched payload as corruption all the same.
                self._quarantine(path)
                self.misses += 1
                if span:
                    span.attrs["hit"] = False
                return None
            self.hits += 1
            if span:
                span.attrs["hit"] = True
            return entry["plan"]

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Iterate the valid entries' payload dictionaries (corrupt ones
        are quarantined along the way)."""
        for path in list(self._entry_files()):
            entry, _ = self._read_entry(path)
            if entry is None:
                self._quarantine(path)
                continue
            yield entry

    def verify(self) -> Dict[str, Any]:
        """Read-only integrity check over every entry.

        Returns ``{"entries", "valid", "corrupt", "failures"}`` where
        ``failures`` maps each failing path to the validation layer that
        rejected it.  Nothing is repaired or quarantined — this is the
        detector behind ``repro store verify``.
        """
        entries = 0
        valid = 0
        failures: Dict[str, str] = {}
        for path in self._entry_files():
            entries += 1
            entry, failure = self._read_entry(path)
            if entry is None:
                failures[path] = failure or "corrupt"
            else:
                valid += 1
        return {
            "entries": entries,
            "valid": valid,
            "corrupt": len(failures),
            "failures": failures,
        }

    def inspect(self) -> List[Dict[str, Any]]:
        """A metadata listing of the valid entries (for ``repro store inspect``).

        Each row carries the entry digest, the canonical query key's
        ``repr``, the instance digest, the namespace, the plan's method,
        and the entry size in bytes.
        """
        rows: List[Dict[str, Any]] = []
        for path in self._entry_files():
            entry, _ = self._read_entry(path)
            if entry is None:
                continue
            plan = entry["plan"]
            rows.append(
                {
                    "digest": os.path.basename(path)[: -len(".plan")],
                    "query_key": repr(entry.get("query_key")),
                    "instance_digest": entry.get("instance_digest"),
                    "namespace": entry.get("namespace"),
                    "method": getattr(plan, "method", "?"),
                    "tape": getattr(plan, "_tape", None) is not None,
                    "bytes": os.path.getsize(path),
                }
            )
        return rows

    def __len__(self) -> int:
        """Number of entry files currently on disk (valid or not)."""
        return sum(1 for _ in self._entry_files())

    @property
    def stats(self) -> Dict[str, int]:
        """Store counters: puts, put_errors, hits, misses, corrupt."""
        return {
            "puts": self.puts,
            "put_errors": self.put_errors,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanStore({self.directory!r}, hits={self.hits}, misses={self.misses})"


class PersistentPlanCache(PlanCache):
    """The in-memory plan LRU backed by an on-disk :class:`PlanStore`.

    A drop-in :class:`~repro.plan.PlanCache` (the solver's existing cache
    seam): memory hits behave identically; a memory miss falls through to
    the store, and a store hit *rebinds* the loaded plan to the live
    instance (:meth:`repro.plan.CompiledPlan.rebind`) and inserts it
    without counting a compile — the ``loads`` counter tracks these, which
    is what lets the warm-restart benchmark assert that zero hot-set plans
    were recompiled.  Freshly compiled plans are written through to the
    store.
    """

    def __init__(
        self,
        maxsize: int = 128,
        on_evict=None,
        plan_store: Optional[PlanStore] = None,
        namespace: str = "",
    ) -> None:
        super().__init__(maxsize=maxsize, on_evict=on_evict)
        if plan_store is None:
            raise PersistenceError("PersistentPlanCache needs a PlanStore")
        self.plan_store = plan_store
        self.namespace = namespace
        self.loads = 0
        self._digests: Dict[int, str] = {}

    def _structure_digest(self, instance: ProbabilisticGraph) -> str:
        # Memoised per instance identity; valid because the PR-2 update
        # path never mutates structure, only probabilities.
        digest = self._digests.get(id(instance))
        if digest is None:
            digest = instance_digest(instance)
            self._digests[id(instance)] = digest
        return digest

    def _insert_loaded(
        self, query_key: Hashable, instance: ProbabilisticGraph, plan: CompiledPlan
    ) -> None:
        """Insert a store-loaded plan without counting a compile."""
        key = (query_key, id(instance))
        self._entries[key] = plan
        self._entries.move_to_end(key)
        self.loads += 1
        while len(self._entries) > self.maxsize:
            evicted_key, evicted_plan = self._entries.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted_plan)

    def lookup(
        self, query_key: Hashable, instance: ProbabilisticGraph
    ) -> Optional[CompiledPlan]:
        """Memory first, then the store (a store hit is a ``load``, not a
        compile); ``None`` only when both tiers miss."""
        plan = super().lookup(query_key, instance)
        if plan is not None:
            return plan
        stored = self.plan_store.get(
            query_key, self._structure_digest(instance), self.namespace
        )
        if stored is None:
            return None
        stored.rebind(instance)
        self._insert_loaded(query_key, instance, stored)
        return stored

    def store(
        self, query_key: Hashable, instance: ProbabilisticGraph, plan: CompiledPlan
    ) -> None:
        """Count the compile, cache in memory, and write through to disk."""
        super().store(query_key, instance, plan)
        self.plan_store.put(
            query_key, self._structure_digest(instance), self.namespace, plan
        )

    def note_tape(
        self, query_key: Hashable, instance: ProbabilisticGraph, plan: CompiledPlan
    ) -> None:
        """Record a tape compile and refresh the plan's store entry.

        The plan was already persisted when it was compiled; now that it
        carries a tape (tapes pickle with their plan), re-put with
        ``replace=True`` so a warm restart loads the tape instead of
        recompiling it.
        """
        super().note_tape(query_key, instance, plan)
        self.plan_store.put(
            query_key,
            self._structure_digest(instance),
            self.namespace,
            plan,
            replace=True,
        )

    def warm(self, instance: ProbabilisticGraph) -> int:
        """Pre-load every stored plan matching ``instance`` (and this
        cache's namespace) into memory; returns how many were loaded.

        Called by serving workers at registration time so that the first
        request after a warm restart finds its plan already bound — the
        read-through tier alone would also find it, but warming moves the
        disk reads out of the request path.
        """
        digest = self._structure_digest(instance)
        loaded = 0
        for entry in self.plan_store.entries():
            if entry.get("instance_digest") != digest:
                continue
            if entry.get("namespace") != self.namespace:
                continue
            query_key = entry.get("query_key")
            if super().lookup(query_key, instance) is not None:
                # Already warm; undo the probe's hit so warming is
                # statistics-neutral for plans that were never cold.
                self.hits -= 1
                continue
            self.misses -= 1  # the probe above was bookkeeping, not traffic
            plan = entry["plan"]
            plan.rebind(instance)
            self._insert_loaded(query_key, instance, plan)
            loaded += 1
        return loaded

    @property
    def stats(self) -> Dict[str, Any]:
        """Cache counters plus ``loads`` and the backing store's counters."""
        merged = dict(super().stats)
        merged["loads"] = self.loads
        merged["store"] = self.plan_store.stats
        return merged
