"""repro — Conjunctive Queries on Probabilistic Graphs: Combined Complexity.

A from-scratch Python implementation of the algorithms, reductions and
complexity classification of

    Antoine Amarilli, Mikaël Monet, Pierre Senellart.
    "Conjunctive Queries on Probabilistic Graphs: Combined Complexity."
    PODS 2017.

The central problem is **PHom**: given a directed, edge-labeled query graph
``G`` and a probabilistic instance graph ``(H, π)`` whose edges are kept
independently with probability ``π(e)``, compute the probability that ``G``
has a homomorphism to the surviving subgraph.

Quick start
-----------

>>> from repro import DiGraph, ProbabilisticGraph, one_way_path, phom_probability
>>> H = DiGraph()
>>> _ = H.add_edge("a", "b", "R"); _ = H.add_edge("d", "b", "R"); _ = H.add_edge("b", "c", "S")
>>> instance = ProbabilisticGraph(H, {("a", "b"): "0.1", ("d", "b"): "0.8", ("b", "c"): "0.7"})
>>> query = one_way_path(["R", "S"])
>>> float(phom_probability(query, instance))
0.574

The top-level namespace re-exports the most commonly used pieces; the
subpackages contain the full machinery:

* :mod:`repro.graphs` — graphs, graph classes (1WP/2WP/DWT/PT/...), random
  generators, homomorphisms, graded DAGs;
* :mod:`repro.probability` — probabilistic graphs and the brute-force oracle;
* :mod:`repro.lineage` — DNF lineages, β-acyclicity, d-DNNF circuits;
* :mod:`repro.automata` — tree automata and provenance circuits (Prop 5.4);
* :mod:`repro.csp` — the X-property homomorphism algorithm (Theorem 4.13);
* :mod:`repro.query` — the conjunctive-query language frontend
  (``"R(x, y), S(y, z)"``), Chandra–Merlin core minimization and the
  class-aware ``normalize`` pass;
* :mod:`repro.core` — the tractable solvers and the dispatching
  :class:`~repro.core.solver.PHomSolver`;
* :mod:`repro.tape` — compiled plans lowered to flat array programs
  (:class:`~repro.tape.PlanTape`) with vectorized batch evaluation;
* :mod:`repro.reductions` — the hardness reductions (#Bipartite-Edge-Cover,
  #PP2DNF) with brute-force counters;
* :mod:`repro.classification` — Tables 1–3 as code;
* :mod:`repro.approx` — seeded Monte Carlo estimators (naive possible-world
  sampling, the Karp–Luby ``(ε, δ)`` importance sampler) for the #P-hard
  cells;
* :mod:`repro.service` — the parallel serving layer: a sharded worker pool
  with request coalescing, result caching and per-request mixed precision;
* :mod:`repro.persist` — durable serving state: a crash-safe write-ahead
  log and a checksummed plan store for warm restarts;
* :mod:`repro.workloads` — workload generators for the benchmark harness.
"""

from repro.exceptions import (
    ReproError,
    GraphError,
    QueryParseError,
    ClassConstraintError,
    ProbabilityError,
    LineageError,
    PlanError,
    AutomatonError,
    PersistenceError,
    ServiceError,
    ServiceUnavailableError,
    DeadlineExceededError,
    IntractableFallbackWarning,
)
from repro.graphs import (
    DiGraph,
    Edge,
    UNLABELED,
    one_way_path,
    two_way_path,
    downward_tree,
    polytree_from_parents,
    disjoint_union,
    GraphClass,
    classify_graph,
    graph_class_of,
    has_homomorphism,
    find_homomorphism,
    homomorphic_equivalent,
)
from repro.approx import (
    ApproxEstimate,
    ApproxParams,
    karp_luby_probability,
    naive_phom_estimate,
)
from repro.numeric import EXACT, FAST, NumericContext, resolve_context
from repro.probability import ProbabilisticGraph, brute_force_phom
from repro.lineage import PositiveDNF, DDNNF, CircuitEvaluator, match_lineage
from repro.core import PHomSolver, PHomResult, phom_probability
from repro.plan import CompiledPlan, PlanCache, canonical_query_key
from repro.tape import PlanTape, TapeEvaluator, compile_plan_tape
from repro.query import (
    Atom,
    NormalizedQuery,
    QueryIR,
    explain_query,
    format_query,
    normalize as normalize_query,
    parse_query,
    parse_query_graph,
    query_core,
)
from repro.persist import (
    PersistentPlanCache,
    PlanStore,
    WalRecovery,
    WriteAheadLog,
    instance_digest,
    plan_store_key,
    scan_wal,
)
from repro.service import (
    DiskFaultInjector,
    Fault,
    FaultInjector,
    FaultPlan,
    QueryService,
    ServiceRequest,
    ServiceResult,
    ServiceStats,
    epsilon_for_budget,
)
from repro.classification import classify_cell, Complexity, table1, table2, table3

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "QueryParseError",
    "ClassConstraintError",
    "ProbabilityError",
    "LineageError",
    "PlanError",
    "AutomatonError",
    "PersistenceError",
    "ServiceError",
    "ServiceUnavailableError",
    "DeadlineExceededError",
    "IntractableFallbackWarning",
    "DiGraph",
    "Edge",
    "UNLABELED",
    "one_way_path",
    "two_way_path",
    "downward_tree",
    "polytree_from_parents",
    "disjoint_union",
    "GraphClass",
    "classify_graph",
    "graph_class_of",
    "has_homomorphism",
    "find_homomorphism",
    "homomorphic_equivalent",
    "ApproxEstimate",
    "ApproxParams",
    "karp_luby_probability",
    "naive_phom_estimate",
    "EXACT",
    "FAST",
    "NumericContext",
    "resolve_context",
    "ProbabilisticGraph",
    "brute_force_phom",
    "PositiveDNF",
    "DDNNF",
    "CircuitEvaluator",
    "match_lineage",
    "PHomSolver",
    "PHomResult",
    "phom_probability",
    "CompiledPlan",
    "PlanCache",
    "canonical_query_key",
    "PlanTape",
    "TapeEvaluator",
    "compile_plan_tape",
    "Atom",
    "QueryIR",
    "parse_query",
    "parse_query_graph",
    "format_query",
    "query_core",
    "normalize_query",
    "NormalizedQuery",
    "explain_query",
    "PersistentPlanCache",
    "PlanStore",
    "WalRecovery",
    "WriteAheadLog",
    "instance_digest",
    "plan_store_key",
    "scan_wal",
    "QueryService",
    "ServiceRequest",
    "ServiceResult",
    "ServiceStats",
    "DiskFaultInjector",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "epsilon_for_budget",
    "classify_cell",
    "Complexity",
    "table1",
    "table2",
    "table3",
    "__version__",
]
