"""Observability: a telemetry registry and structured tracing, zero deps.

The package holds the two measurement substrates the serving stack shares:

* :mod:`repro.obs.metrics` — labeled counters / gauges / histograms with
  fixed log-scale buckets, lock-free per process and mergeable across the
  worker pool via plain JSON-able snapshots;
* :mod:`repro.obs.trace` — explicit :class:`Tracer` / :class:`Span`
  objects with parent links, wall + CPU time and attributes, propagated
  through request frames and piggybacked back on reply pipes, behind a
  module-level no-op tracer so the disabled path stays allocation-free.

Neither module imports anything from the rest of the library (or any third
party), so every layer — plans, tapes, samplers, persistence, serving —
can hook into them without import cycles.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_samples,
    counter_total,
    counter_value,
    histogram_quantile,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    read_trace,
    render_trace,
    set_tracer,
    validate_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_samples",
    "counter_total",
    "counter_value",
    "histogram_quantile",
    "merge_snapshots",
    "render_prometheus",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "read_trace",
    "render_trace",
    "set_tracer",
    "validate_trace",
]
