"""Structured tracing: explicit spans across coordinator, workers and solver.

A :class:`Span` is one timed phase of one request — plan-cache lookup,
compile, tape evaluate, a sampler's pilot loop, a WAL append — with a
process-unique id, a parent id, wall-clock and CPU time, and a free-form
attribute dict.  A :class:`Tracer` owns the spans of one process: it makes
the sampling decision per *root* span (the ``sample_rate`` knob bounds
overhead), keeps finished spans in a bounded ring buffer, and optionally
flushes them to a JSONL sink.

The library is instrumented through a **module-level no-op tracer**
(:data:`NULL_TRACER`, installed by default): call sites do ::

    with current_tracer().span("plan.compile") as span:
        ...
        if span:
            span.attrs["ops"] = len(program)

and the disabled path allocates nothing — :data:`current_tracer` returns
the singleton :class:`NullTracer`, whose ``span()`` hands back one shared
falsy no-op span, so the ``if span:`` guard also skips the attribute dict.

Cross-process propagation is explicit: the coordinator passes
``tracer.context(span)`` — a ``(trace_id, span_id)`` pair — inside the
request frame, the worker brackets the work with :meth:`Tracer.adopt` /
:meth:`Tracer.release`, and the worker's finished spans ride back on the
reply pipe (:meth:`Tracer.drain`) to be folded into the coordinator's ring
(:meth:`Tracer.ingest`).  :func:`validate_trace` checks the resulting JSONL
(spans closed, parents present, timestamps monotonic) and
:func:`render_trace` pretty-prints the span forest with per-phase totals —
the engines behind ``repro trace``.
"""

from __future__ import annotations

import json
import os
import random
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Span statuses a well-formed trace may carry.  ``"retried"`` marks a
#: dispatch attempt whose worker died — the coordinator closes the orphaned
#: span itself and opens a fresh one for the retry.
SPAN_STATUSES = ("ok", "error", "retried", "timeout")

#: Wall-clock slack (seconds) tolerated between a parent's start and a
#: child's start when validating timestamps across process boundaries.
CLOCK_SLACK_S = 0.005

#: Offset mapping ``time.perf_counter()`` onto the epoch, computed once per
#: process: span timestamps are ``_TS_BASE + perf_counter()`` so opening a
#: span costs two clock reads (perf + CPU), not three.
_TS_BASE = time.time() - time.perf_counter()

#: One reused compact encoder for the JSONL sink — building a fresh encoder
#: per record (what ``json.dumps`` with keyword arguments does) is
#: measurable at trace rate 1.0 on cache-hit traffic.
_ENCODE = json.JSONEncoder(separators=(",", ":"), default=str).encode

#: Finished spans buffered in memory before the sink encodes and writes
#: them in one batch.  Serialisation is the dominant cost of tracing
#: cache-hit traffic, so it is amortised over many spans instead of being
#: paid inside every request batch.
SINK_BATCH = 512


class Span:
    """One timed phase: id, parent, wall + CPU time, attributes, status.

    Spans are context managers (``with tracer.span("plan.compile") as s:``)
    and truthy, so instrumentation can guard attribute writes with
    ``if s:``; the disabled path hands out a falsy no-op span instead.
    ``status`` defaults to ``"ok"`` and becomes ``"error"`` automatically
    when the ``with`` block raises.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "ts",
        "duration_ms",
        "cpu_ms",
        "status",
        "attrs",
        "_tracer",
        "_t0",
        "_c0",
        "_detached",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        detached: bool = False,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        self.ts = _TS_BASE + self._t0
        self.duration_ms = 0.0
        self.cpu_ms = 0.0
        self.status = "ok"
        self.attrs: Dict[str, Any] = {}
        self._detached = detached

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.end(self, "error" if exc_type is not None else self.status)
        return False

    def record(self) -> Dict[str, Any]:
        """The span as a plain JSON-able dictionary (one JSONL line)."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self.ts,
            "dur_ms": self.duration_ms,
            "cpu_ms": self.cpu_ms,
            "status": self.status,
            "attrs": self.attrs,
        }


class _NullAttrs(dict):
    """An attribute dict that silently discards writes (shared, stateless)."""

    def __setitem__(self, key, value) -> None:
        pass

    def update(self, *args, **kwargs) -> None:
        pass


class _NullSpan:
    """The shared falsy no-op span: a zero-allocation context manager."""

    __slots__ = ()
    attrs = _NullAttrs()
    status = "ok"
    span_id = None
    trace_id = None
    parent_id = None
    duration_ms = 0.0
    cpu_ms = 0.0

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _SuppressedSpan:
    """The falsy span handed out under an unsampled root (per tracer).

    It still balances the tracer's suppression depth on exit, so nested
    instrumentation under an unsampled root costs one integer per span and
    recording resumes exactly when the unsampled root closes.
    """

    __slots__ = ("_tracer",)
    attrs = _NullAttrs()
    status = "ok"
    span_id = None
    trace_id = None
    parent_id = None
    duration_ms = 0.0
    cpu_ms = 0.0

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_SuppressedSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._suppress -= 1
        return False


class Tracer:
    """The per-process span collector: sampling, ring buffer, JSONL sink.

    Parameters
    ----------
    sample_rate:
        Probability that a *root* span (opened with an empty stack and no
        adopted remote context) is recorded; every descendant follows the
        root's decision, so a trace is always complete or absent.  ``0.0``
        records only adopted (remote-parented) work, ``1.0`` records
        everything.
    ring_size:
        Capacity of the finished-span ring buffer; the oldest spans are
        dropped on overflow (the sink flushes per root, so overflow only
        matters for pathologically deep traces).
    sink_path:
        Optional JSONL file; finished spans are appended whenever the
        tracer goes idle (no open spans) and on :meth:`close`.
    seed:
        Seed of the sampling RNG, so a seeded service traces the same
        requests run to run.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        ring_size: int = 4096,
        sink_path: Optional[str] = None,
        seed: Optional[int] = 0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.sink_path = sink_path
        self._rng = random.Random(seed if seed is not None else 0)
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=ring_size)
        self._stack: List[Span] = []
        self._suppress = 0
        self._suppressed = _SuppressedSpan(self)
        self._adopted: Optional[Tuple[str, str]] = None
        self._seq = 0
        self._next_id = 0
        self._prefix = f"{os.getpid():x}"
        self._sink: Optional[Any] = None
        self._pending: List[Dict[str, Any]] = []

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # opening and closing spans
    # ------------------------------------------------------------------
    def _new_id(self) -> str:
        self._next_id += 1
        return f"{self._prefix}-{self._next_id}"

    def span(self, name: str) -> Union[Span, _SuppressedSpan]:
        """Open a span as the child of the current stack top.

        A root span (empty stack, no adopted context) takes the sampling
        decision for its whole trace; unsampled trees cost one integer per
        nested span and allocate nothing.
        """
        if self._suppress:
            self._suppress += 1
            return self._suppressed
        if not self._stack:
            if self._adopted is not None:
                trace_id, parent_id = self._adopted
            else:
                if self.sample_rate <= 0.0 or (
                    self.sample_rate < 1.0
                    and self._rng.random() >= self.sample_rate
                ):
                    self._suppress = 1
                    return self._suppressed
                trace_id, parent_id = f"t{self._prefix}-{self._next_id + 1}", None
        else:
            top = self._stack[-1]
            trace_id, parent_id = top.trace_id, top.span_id
        span = Span(self, name, trace_id, self._new_id(), parent_id)
        self._stack.append(span)
        return span

    def start_span(
        self,
        name: str,
        parent: Union[Span, Tuple[str, str], None] = None,
    ) -> Span:
        """Open a *detached* span (not pushed on the implicit stack).

        Detached spans are for concurrent phases the ``with``-stack cannot
        model — one dispatch span per in-flight worker op — and must be
        closed explicitly with :meth:`end`.  ``parent`` is a live
        :class:`Span` or a ``(trace_id, span_id)`` context; sampling is the
        caller's job (gate on the truthiness of the would-be parent).
        """
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id, parent_id = f"t{self._prefix}-{self._next_id + 1}", None
        return Span(self, name, trace_id, self._new_id(), parent_id, detached=True)

    def end(self, span: Union[Span, _NullSpan, _SuppressedSpan], status: str = "ok") -> None:
        """Close a span, stamping duration / CPU time and recording it."""
        if not isinstance(span, Span):
            return
        span.duration_ms = (time.perf_counter() - span._t0) * 1000.0
        span.cpu_ms = (time.process_time() - span._c0) * 1000.0
        span.status = status
        if not span._detached:
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            else:  # pragma: no cover - unbalanced instrumentation
                self._stack = [s for s in self._stack if s is not span]
        self._seq += 1
        # Inlined span.record() — this is the per-span hot path.
        self._ring.append(
            {
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "ts": span.ts,
                "dur_ms": span.duration_ms,
                "cpu_ms": span.cpu_ms,
                "status": status,
                "attrs": span.attrs,
                "seq": self._seq,
            }
        )
        if self.sink_path is not None and not self._stack:
            self._buffer()

    # ------------------------------------------------------------------
    # cross-process propagation
    # ------------------------------------------------------------------
    def context(
        self, span: Union[Span, None, "_NullSpan", "_SuppressedSpan"] = None
    ) -> Optional[Tuple[str, str]]:
        """The ``(trace_id, span_id)`` pair to ship in a request frame.

        ``None`` when the given span (or, by default, the stack top) is not
        being recorded — an absent context is exactly how workers know not
        to record.
        """
        if span is None:
            span = self._stack[-1] if self._stack else None
        if not isinstance(span, Span):
            return None
        return (span.trace_id, span.span_id)

    def adopt(self, context: Optional[Tuple[str, str]]):
        """Parent subsequent root spans under a remote context.

        Returns an opaque token for :meth:`release`; adopting ``None``
        leaves the tracer untouched (and the token restores that too), so
        worker loops can bracket every message unconditionally.
        """
        token = self._adopted
        if context is not None:
            self._adopted = (str(context[0]), str(context[1]))
        return token

    def release(self, token) -> None:
        """Undo the matching :meth:`adopt`."""
        self._adopted = token

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return every finished span record (for piggybacking)."""
        records = list(self._ring)
        self._ring.clear()
        return records

    def ingest(self, records: Iterable[Dict[str, Any]]) -> None:
        """Fold remote span records (a worker's :meth:`drain`) into the ring."""
        for record in records:
            self._seq += 1
            record = dict(record)
            record["seq"] = self._seq
            self._ring.append(record)
        if self.sink_path is not None and not self._stack:
            self._buffer()

    # ------------------------------------------------------------------
    # aggregation and the sink
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """A position in the finished-span sequence (see :meth:`phase_totals`)."""
        return self._seq

    def phase_totals(self, mark: int) -> Dict[str, float]:
        """Total duration (ms) per span name finished since ``mark``.

        This is the per-request timing breakdown: the worker marks before a
        request, solves under spans, and ships the aggregate back on the
        result.
        """
        totals: Dict[str, float] = {}
        # Sequence numbers are monotonic, so everything after ``mark`` is a
        # suffix of the ring — walk backwards and stop at the mark instead
        # of scanning the whole buffer per request.
        for record in reversed(self._ring):
            if record["seq"] <= mark:
                break
            name = record["name"]
            totals[name] = totals.get(name, 0.0) + record["dur_ms"]
        return totals

    def _buffer(self) -> None:
        """Move finished spans out of the ring into the write-behind buffer.

        This runs whenever the span stack empties — the per-batch hot path —
        so it only does the cheap part (a list extend); the expensive part
        (JSON encoding and the write) is deferred to :meth:`flush`, which
        fires once per :data:`SINK_BATCH` buffered spans and on
        :meth:`close`.
        """
        self._pending.extend(self._ring)
        self._ring.clear()
        if len(self._pending) >= SINK_BATCH:
            self.flush()

    def flush(self) -> None:
        """Encode buffered spans and append them to the JSONL sink.

        A no-op without a sink.  The handle is opened lazily on first write
        and kept open — reopening the file per batch would dominate the
        cost of tracing cache-hit traffic — so the file is complete only
        after :meth:`close` (or interpreter exit).
        """
        if self.sink_path is None:
            return
        if not self._stack:
            self._pending.extend(self._ring)
            self._ring.clear()
        records, self._pending = self._pending, []
        if not records:
            return
        if self._sink is None:
            self._sink = open(self.sink_path, "a", encoding="utf-8")
        self._sink.write("".join(_ENCODE(record) + "\n" for record in records))

    def close(self) -> None:
        """Flush the sink; open spans (a bug) are abandoned, not fabricated."""
        self.flush()
        if self._sink is not None:
            self._sink.close()
            self._sink = None


class NullTracer:
    """The default, disabled tracer: every operation is a cheap no-op.

    It is falsy (``if current_tracer():`` gates optional work) and its
    :meth:`span` returns one shared falsy span, so fully instrumented code
    paths allocate nothing when telemetry is off.
    """

    __slots__ = ()
    sample_rate = 0.0
    sink_path = None

    def __bool__(self) -> bool:
        return False

    def span(self, name: str) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def start_span(self, name, parent=None) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def end(self, span, status: str = "ok") -> None:
        """Do nothing."""

    def context(self, span=None) -> None:
        """No context: remote ends see tracing as off."""
        return None

    def adopt(self, context) -> None:
        """Do nothing; the token is ``None``."""
        return None

    def release(self, token) -> None:
        """Do nothing."""

    def drain(self) -> List[Dict[str, Any]]:
        """No spans, ever."""
        return []

    def ingest(self, records) -> None:
        """Discard remote records."""

    def mark(self) -> int:
        """A constant mark."""
        return 0

    def phase_totals(self, mark: int) -> Dict[str, float]:
        """No totals."""
        return {}

    def flush(self) -> None:
        """Do nothing."""

    def close(self) -> None:
        """Do nothing."""


_NULL_SPAN = _NullSpan()

#: The singleton disabled tracer (the default for every process).
NULL_TRACER = NullTracer()

_TRACER: Union[Tracer, NullTracer] = NULL_TRACER


def current_tracer() -> Union[Tracer, NullTracer]:
    """The process-wide tracer instrumentation hooks report to."""
    return _TRACER


def set_tracer(tracer: Union[Tracer, NullTracer, None]) -> Union[Tracer, NullTracer]:
    """Install the process-wide tracer; returns the previous one.

    ``None`` restores the disabled :data:`NULL_TRACER`.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


# ----------------------------------------------------------------------
# trace files: validation and rendering
# ----------------------------------------------------------------------
def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load span records from a JSONL trace file."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_trace(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Check trace invariants; returns a list of violations (empty = valid).

    * every span record is closed with a known status (never ``"open"``);
    * span ids are unique across the whole trace file;
    * every non-root span's parent exists, in the same trace;
    * timestamps are monotonic: a child never starts before its parent
      (modulo :data:`CLOCK_SLACK_S` of cross-process clock slack) and no
      duration is negative.
    """
    errors: List[str] = []
    by_id: Dict[str, Dict[str, Any]] = {}
    for i, record in enumerate(records):
        missing = [
            key
            for key in ("trace", "span", "name", "ts", "dur_ms", "status")
            if key not in record
        ]
        if missing:
            errors.append(f"record {i}: missing field(s) {missing}")
            continue
        if record["status"] not in SPAN_STATUSES:
            errors.append(
                f"span {record['span']} ({record['name']}): not closed "
                f"(status {record['status']!r})"
            )
        if record["dur_ms"] < 0:
            errors.append(
                f"span {record['span']} ({record['name']}): negative duration"
            )
        if record["span"] in by_id:
            errors.append(f"duplicate span id {record['span']}")
            continue
        by_id[record["span"]] = record
    for record in by_id.values():
        parent_id = record.get("parent")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            errors.append(
                f"span {record['span']} ({record['name']}): parent "
                f"{parent_id} not in trace file (orphan)"
            )
            continue
        if parent["trace"] != record["trace"]:
            errors.append(
                f"span {record['span']}: parent {parent_id} belongs to "
                f"another trace"
            )
        if record["ts"] + CLOCK_SLACK_S < parent["ts"]:
            errors.append(
                f"span {record['span']} ({record['name']}): starts "
                f"{parent['ts'] - record['ts']:.4f}s before its parent"
            )
    return errors


def _format_attrs(attrs: Dict[str, Any], limit: int = 4) -> str:
    if not attrs:
        return ""
    parts = [f"{k}={attrs[k]}" for k in sorted(attrs)[:limit]]
    if len(attrs) > limit:
        parts.append("...")
    return "  {" + ", ".join(parts) + "}"


def render_trace(records: Sequence[Dict[str, Any]]) -> str:
    """Pretty-print a span forest with per-phase totals and coverage.

    Spans are grouped by trace and indented under their parents (orphans
    surface at top level, flagged); the footer aggregates total duration
    per span name and reports *coverage* — the summed duration of each
    root's direct children against the root's own wall time, the honesty
    check that the instrumented phases account for where the time went.
    """
    lines: List[str] = []
    by_trace: "Dict[str, List[Dict[str, Any]]]" = {}
    for record in records:
        by_trace.setdefault(record["trace"], []).append(record)
    totals: Dict[str, Tuple[int, float]] = {}
    root_wall = 0.0
    child_wall = 0.0
    for trace_id in sorted(by_trace):
        group = sorted(by_trace[trace_id], key=lambda r: (r["ts"], r.get("seq", 0)))
        children: "Dict[Optional[str], List[Dict[str, Any]]]" = {}
        ids = {record["span"] for record in group}
        for record in group:
            parent = record.get("parent")
            children.setdefault(parent if parent in ids else None, []).append(record)
        lines.append(f"trace {trace_id}")

        def walk(record: Dict[str, Any], depth: int) -> None:
            status = record["status"]
            marker = "" if status == "ok" else f" [{status}]"
            lines.append(
                f"  {'  ' * depth}{record['name']}  "
                f"{record['dur_ms']:.3f} ms{marker}"
                f"{_format_attrs(record.get('attrs', {}))}"
            )
            for child in children.get(record["span"], ()):
                walk(child, depth + 1)

        for root in children.get(None, ()):
            walk(root, 0)
            if root.get("parent") is None:
                root_wall += root["dur_ms"]
                child_wall += sum(
                    c["dur_ms"] for c in children.get(root["span"], ())
                )
    for record in records:
        count, total = totals.get(record["name"], (0, 0.0))
        totals[record["name"]] = (count + 1, total + record["dur_ms"])
    lines.append("")
    lines.append("phase totals:")
    for name in sorted(totals, key=lambda n: -totals[n][1]):
        count, total = totals[name]
        lines.append(f"  {name:<24} {count:>6} span(s)  {total:>10.3f} ms")
    if root_wall > 0:
        lines.append(
            f"coverage: {child_wall:.3f} ms of phases under "
            f"{root_wall:.3f} ms of root wall time "
            f"({child_wall / root_wall:.0%})"
        )
    return "\n".join(lines)
