"""Dependency-free telemetry registry: labeled counters, gauges, histograms.

The serving stack runs as one coordinator plus N worker *processes*, so the
registry is built around two constraints:

* **lock-free per process** — every metric family lives in exactly one
  process and is only ever touched from that process's serving loop, so
  increments are plain dictionary updates with no locks or atomics;
* **mergeable across processes** — :meth:`MetricsRegistry.snapshot` renders
  the whole registry as a plain JSON-able dictionary, and
  :func:`merge_snapshots` folds many such snapshots (one per worker, plus
  the coordinator's) into a pool-wide view: counters and histogram buckets
  sum, gauges keep the last value seen.

Histograms use **fixed log-scale buckets** (:data:`DEFAULT_BUCKETS_MS`, a
power-of-two ladder from one microsecond to ~134 seconds, in milliseconds):
fixed bounds are what makes worker snapshots mergeable bucket-by-bucket, and
a log scale spans the paper's dichotomy — the same query shape can cost
microseconds (exact DP) or seconds (a Karp–Luby sampling loop).

:func:`render_prometheus` turns any snapshot (merged or not) into the
Prometheus text exposition format, which is what ``repro metrics`` prints;
:func:`histogram_quantile` recovers approximate quantiles (p50/p99) from
bucket counts, which is what ``repro top`` displays.

>>> registry = MetricsRegistry()
>>> requests = registry.counter("requests_total", "Requests served.", ("route",))
>>> requests.labels("exact-dp").inc()
>>> requests.labels("exact-dp").inc()
>>> snap = registry.snapshot()
>>> dict(counter_samples(snap, "requests_total"))
{('exact-dp',): 2.0}
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Fixed log-scale histogram bounds in milliseconds: ``0.001 * 2**i`` for
#: ``i`` in ``range(28)`` — one microsecond up to ~134 seconds, plus the
#: implicit ``+inf`` overflow bucket every histogram carries.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = tuple(0.001 * 2**i for i in range(28))


class _CounterChild:
    """One labeled time series of a :class:`Counter` (monotone float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the series."""
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount


class _GaugeChild:
    """One labeled time series of a :class:`Gauge` (settable float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the series to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the series."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the series."""
        self.value -= amount


class _HistogramChild:
    """One labeled series of a :class:`Histogram`: bucket counts + sum."""

    __slots__ = ("counts", "sum", "count", "_bounds")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (bucketed by upper bound, inclusive)."""
        self.counts[bisect_left(self._bounds, value)] += 1
        self.sum += value
        self.count += 1


class _Family:
    """Common machinery of one named metric family (a set of label series)."""

    kind = ""
    _child_type: type = _CounterChild

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, *labelvalues: Any):
        """The child series for ``labelvalues`` (created on first use).

        Values are stringified, mirroring Prometheus label semantics; the
        child object is stable, so hot paths should bind it once
        (``child = family.labels("w0")``) and call methods on the child.
        """
        key = tuple(str(v) for v in labelvalues)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label(s) "
                f"{self.labelnames}, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):
        return self._child_type()

    def _snapshot(self) -> Dict[str, Any]:
        return {
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": [
                [list(key), child.value]
                for key, child in sorted(self._children.items())
            ],
        }


class Counter(_Family):
    """A monotonically increasing metric family (e.g. requests served).

    Unlabeled counters can be bumped directly with :meth:`inc`; labeled
    counters go through :meth:`~_Family.labels`.
    """

    kind = "counter"
    _child_type = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled series (requires ``labelnames=()``)."""
        self.labels().inc(amount)

    def value(self, *labelvalues: Any) -> float:
        """The current value of one series (0.0 if never incremented)."""
        key = tuple(str(v) for v in labelvalues)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class Gauge(_Family):
    """A settable metric family (e.g. current queue depth)."""

    kind = "gauge"
    _child_type = _GaugeChild

    def set(self, value: float) -> None:
        """Set the unlabeled series (requires ``labelnames=()``)."""
        self.labels().set(value)

    def value(self, *labelvalues: Any) -> float:
        """The current value of one series (0.0 if never set)."""
        key = tuple(str(v) for v in labelvalues)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class Histogram(_Family):
    """A bucketed distribution family with fixed log-scale bounds.

    All series of one family share the same bounds (and all histograms
    default to :data:`DEFAULT_BUCKETS_MS`), which is what keeps snapshots
    from different worker processes mergeable bucket-by-bucket.
    """

    kind = "histogram"
    _child_type = _HistogramChild

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the unlabeled series (requires ``labelnames=()``)."""
        self.labels().observe(value)

    def _snapshot(self) -> Dict[str, Any]:
        return {
            "help": self.help,
            "labelnames": list(self.labelnames),
            "buckets": list(self.buckets),
            "samples": [
                [
                    list(key),
                    {
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                    },
                ]
                for key, child in sorted(self._children.items())
            ],
        }


class MetricsRegistry:
    """A process-local collection of named metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for an
    existing name returns the existing family (and raises if the kind or
    label names disagree), so independent modules can share one family
    without coordination.
    """

    def __init__(self) -> None:
        self._families: "Dict[str, _Family]" = {}

    def _family(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != tuple(
                labelnames
            ):
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        family = cls(name, help, tuple(labelnames), **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create the :class:`Counter` family ``name``."""
        return self._family(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create the :class:`Gauge` family ``name``."""
        return self._family(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> Histogram:
        """Get or create the :class:`Histogram` family ``name``."""
        return self._family(Histogram, name, help, labelnames, buckets=buckets)

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as a plain JSON-able dictionary.

        The shape is stable across processes and releases::

            {"counters":   {name: {"help", "labelnames", "samples"}},
             "gauges":     {...},
             "histograms": {name: {..., "buckets", "samples"}}}

        where each counter/gauge sample is ``[labelvalues, value]`` and each
        histogram sample is ``[labelvalues, {"counts", "sum", "count"}]``.
        Snapshots are cheap (no locks — the registry is process-local by
        design) and are what crosses the worker reply pipes.
        """
        snap: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, family in self._families.items():
            snap[family.kind + "s"][name] = family._snapshot()
        return snap


def _merge_plain(target: Dict[str, Any], source: Dict[str, Any], summing: bool) -> None:
    for name, family in source.items():
        mine = target.get(name)
        if mine is None:
            target[name] = {
                "help": family["help"],
                "labelnames": list(family["labelnames"]),
                "samples": [[list(k), v] for k, v in family["samples"]],
            }
            continue
        merged = {tuple(k): v for k, v in mine["samples"]}
        for key, value in family["samples"]:
            key = tuple(key)
            if summing:
                merged[key] = merged.get(key, 0.0) + value
            else:
                merged[key] = value  # gauges: last snapshot wins
        mine["samples"] = [[list(k), merged[k]] for k in sorted(merged)]


def _merge_histograms(target: Dict[str, Any], source: Dict[str, Any]) -> None:
    for name, family in source.items():
        mine = target.get(name)
        if mine is None:
            target[name] = {
                "help": family["help"],
                "labelnames": list(family["labelnames"]),
                "buckets": list(family["buckets"]),
                "samples": [
                    [list(k), dict(v, counts=list(v["counts"]))]
                    for k, v in family["samples"]
                ],
            }
            continue
        if list(mine["buckets"]) != list(family["buckets"]):
            raise ValueError(
                f"histogram {name!r} has mismatched buckets across snapshots"
            )
        merged = {tuple(k): v for k, v in mine["samples"]}
        for key, sample in family["samples"]:
            key = tuple(key)
            ours = merged.get(key)
            if ours is None:
                merged[key] = dict(sample, counts=list(sample["counts"]))
            else:
                ours["counts"] = [
                    a + b for a, b in zip(ours["counts"], sample["counts"])
                ]
                ours["sum"] += sample["sum"]
                ours["count"] += sample["count"]
        mine["samples"] = [[list(k), merged[k]] for k in sorted(merged)]


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold many per-process snapshots into one pool-wide snapshot.

    Counters and histograms sum series-by-series (histograms additionally
    bucket-by-bucket, which the fixed shared bounds make well-defined);
    gauges keep the value from the last snapshot that carries the series —
    processes that must not collide on a gauge should label it (e.g. by
    worker index).  The inputs are left untouched.
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        _merge_plain(merged["counters"], snap.get("counters", {}), summing=True)
        _merge_plain(merged["gauges"], snap.get("gauges", {}), summing=False)
        _merge_histograms(merged["histograms"], snap.get("histograms", {}))
    return merged


def counter_samples(
    snapshot: Dict[str, Any], name: str
) -> List[Tuple[Tuple[str, ...], float]]:
    """The ``(labelvalues, value)`` series of one counter in a snapshot."""
    family = snapshot.get("counters", {}).get(name)
    if family is None:
        return []
    return [(tuple(k), v) for k, v in family["samples"]]


def counter_value(
    snapshot: Dict[str, Any], name: str, labelvalues: Sequence[str] = ()
) -> float:
    """One counter series' value in a snapshot (0.0 when absent)."""
    wanted = tuple(str(v) for v in labelvalues)
    for key, value in counter_samples(snapshot, name):
        if key == wanted:
            return value
    return 0.0


def counter_total(snapshot: Dict[str, Any], name: str) -> float:
    """The sum of every series of one counter in a snapshot."""
    return sum(value for _, value in counter_samples(snapshot, name))


def histogram_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Approximate the ``q``-quantile of a bucketed distribution.

    ``bounds`` are the finite bucket upper bounds and ``counts`` the
    per-bucket observation counts (one longer than ``bounds`` — the last
    slot is the ``+inf`` overflow).  The estimate interpolates linearly
    inside the winning bucket, the standard Prometheus rule; an empty
    histogram yields ``0.0`` and the overflow bucket yields its lower bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count:
            if i >= len(bounds):  # overflow bucket: clamp to its lower edge
                return float(bounds[-1]) if bounds else 0.0
            lower = float(bounds[i - 1]) if i > 0 else 0.0
            upper = float(bounds[i])
            fraction = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * fraction
    return float(bounds[-1]) if bounds else 0.0  # pragma: no cover


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{n}="{v}"' for n, v in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges become one line per series; histograms expand to
    cumulative ``_bucket{le=...}`` lines plus ``_sum`` and ``_count``, the
    standard encoding.  The output of :func:`merge_snapshots` renders the
    pool-wide view; this is what ``repro metrics`` prints.
    """
    lines: List[str] = []
    for kind in ("counters", "gauges", "histograms"):
        for name, family in sorted(snapshot.get(kind, {}).items()):
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {kind[:-1]}")
            labelnames = family["labelnames"]
            if kind != "histograms":
                for labelvalues, value in family["samples"]:
                    lines.append(
                        f"{name}{_format_labels(labelnames, labelvalues)} "
                        f"{_format_value(value)}"
                    )
                continue
            bounds = family["buckets"]
            for labelvalues, sample in family["samples"]:
                cumulative = 0
                for bound, count in zip(
                    list(bounds) + ["+Inf"], sample["counts"]
                ):
                    cumulative += count
                    le = bound if isinstance(bound, str) else f"{bound:g}"
                    pairs = list(zip(labelnames, labelvalues)) + [("le", le)]
                    rendered = ",".join(f'{n}="{v}"' for n, v in pairs)
                    lines.append(
                        f"{name}_bucket{{{rendered}}} {cumulative}"
                    )
                suffix = _format_labels(labelnames, labelvalues)
                lines.append(f"{name}_sum{suffix} {_format_value(sample['sum'])}")
                lines.append(f"{name}_count{suffix} {sample['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
