"""The longest-directed-path automaton of Proposition 5.4.

The unlabeled one-way-path query of length ``m`` holds in a possible world of
a polytree instance exactly when the world contains a directed path with at
least ``m`` edges.  Proposition 5.4 tests this with a bottom-up deterministic
tree automaton running on the binary encoding of the instance
(:mod:`repro.automata.binary_tree`): the state reached at a node of the
binary tree is a triple

``⟨up, down, best⟩``

describing the fragment of the original polytree represented by that binary
subtree — the original node ``n`` the fragment is attached to, plus a suffix
of ``n``'s children subtrees, with edges kept or dropped according to the
node annotations:

* ``up``   — length of the longest directed path *ending at* ``n`` inside the
  fragment;
* ``down`` — length of the longest directed path *starting at* ``n`` inside
  the fragment;
* ``best`` — length of the longest directed path anywhere inside the
  fragment.

All three quantities are capped at ``m`` (once the target length is reached
the exact value no longer matters), so the automaton has ``(m + 1)^3``
states and is of size polynomial in the query — the key to polynomial
*combined* complexity.  The accepting states are those with ``best = m``.

Transitions distinguish the annotated label of the attach node:

* ``(·, 0)`` — the original edge is absent: the child fragment contributes
  only its ``best`` value;
* ``(up, 1)`` — the edge ``c -> n`` is present: paths ending at ``c`` extend
  to ``n``, and may continue with a path starting at ``n`` in the rest of the
  fragment;
* ``(down, 1)`` — the edge ``n -> c`` is present: symmetric;
* ``ε`` leaves start with ``⟨0, 0, 0⟩``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import AutomatonError
from repro.automata.binary_tree import ALPHABET, LABEL_DOWN, LABEL_EPSILON, LABEL_UP
from repro.automata.tree_automaton import AnnotatedLabel, BottomUpTreeAutomaton


@dataclass(frozen=True, order=True)
class PathState:
    """An automaton state ``⟨up, down, best⟩`` (all values capped at the query length)."""

    up: int
    down: int
    best: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⟨↑:{self.up}, ↓:{self.down}, max:{self.best}⟩"


def build_longest_path_automaton(path_length: int) -> BottomUpTreeAutomaton:
    """The deterministic automaton accepting worlds with a directed path of ``path_length`` edges.

    Parameters
    ----------
    path_length:
        The length ``m`` (number of edges) of the one-way path query.  Must
        be non-negative; with ``m = 0`` every world is accepted, matching the
        fact that a single-vertex query always has a homomorphism.
    """
    if path_length < 0:
        raise AutomatonError("the query path length must be non-negative")
    m = path_length

    def cap(value: int) -> int:
        return min(m, value)

    def initial(letter: AnnotatedLabel) -> PathState:
        label, _bit = letter
        if label not in ALPHABET:
            raise AutomatonError(f"unexpected leaf label {label!r}")
        return PathState(0, 0, 0)

    def transition(letter: AnnotatedLabel, left: PathState, right: PathState) -> PathState:
        label, bit = letter
        # ``left`` is the state of the attached child's fragment (relative to
        # the child c); ``right`` is the state of the spine continuation
        # (relative to the current original node n).
        child, rest = left, right
        if label == LABEL_EPSILON or not bit:
            # Structural node or absent edge: the child fragment is
            # disconnected from n, only its internal best path survives.
            return PathState(rest.up, rest.down, cap(max(rest.best, child.best)))
        if label == LABEL_UP:
            up = cap(max(rest.up, child.up + 1))
            down = rest.down
            best = cap(max(rest.best, child.best, up, child.up + 1 + rest.down))
            return PathState(up, down, best)
        if label == LABEL_DOWN:
            down = cap(max(rest.down, child.down + 1))
            up = rest.up
            best = cap(max(rest.best, child.best, down, rest.up + 1 + child.down))
            return PathState(up, down, best)
        raise AutomatonError(f"unexpected internal label {label!r}")

    def accepting(state: PathState) -> bool:
        return state.best >= m

    return BottomUpTreeAutomaton(
        alphabet=frozenset(ALPHABET),
        accepting=accepting,
        initial=initial,
        transition=transition,
        description=f"longest directed path ≥ {m} automaton (states ⟨up, down, best⟩ capped at {m})",
    )


def number_of_states(path_length: int) -> int:
    """The number of states ``(m + 1)^3`` of the longest-path automaton."""
    if path_length < 0:
        raise AutomatonError("the query path length must be non-negative")
    return (path_length + 1) ** 3
